//! Quickstart: run one CleanML experiment end to end.
//!
//! Mirrors the paper's running example (Example 4.1): the EEG dataset,
//! outliers detected by IQR and repaired by mean imputation, a logistic
//! regression model, scenario BD (model development), 20 train/test splits,
//! and the three paired t-tests that produce the P/N/S flag.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cleanml::core::schema::{Detection, ErrorType, Repair, Scenario, Spec1};
use cleanml::core::{run_r1_experiment, ExperimentConfig};
use cleanml::datagen::{generate, spec_by_name};
use cleanml::ml::ModelKind;

fn main() {
    // 1. Generate the EEG stand-in dataset (outliers injected; ground truth
    //    retained — see DESIGN.md §4 for the substitution rationale).
    let spec = spec_by_name("EEG").expect("EEG is one of the 14 datasets");
    let data = generate(spec, 42);
    println!(
        "EEG stand-in: {} rows, {} columns, errors: {:?}",
        data.dirty.n_rows(),
        data.dirty.n_columns(),
        data.error_types
    );

    // 2. Specify the experiment (paper Table 6, s1).
    let experiment = Spec1 {
        dataset: "EEG".into(),
        error_type: ErrorType::Outliers,
        detection: Detection::Iqr,
        repair: Repair::ImputeMean,
        model: ModelKind::LogisticRegression,
        scenario: Scenario::BD,
    };

    // 3. Run the §IV-A protocol over 20 splits.
    let cfg = ExperimentConfig::standard();
    let outcome = run_r1_experiment(&data, &experiment, &cfg).expect("experiment");

    // 4. Inspect the metric pairs (paper Table 10) and the flag.
    println!("\nsplit  B (dirty-train)  D (clean-train)");
    for (s, (b, d)) in outcome.pairs.iter().enumerate() {
        println!("{s:>5}  {b:>15.3}  {d:>15.3}");
    }
    println!(
        "\nmean B = {:.4}, mean D = {:.4}",
        outcome.evidence.mean_before, outcome.evidence.mean_after
    );
    println!(
        "p-values: two-tailed {:.2e}, upper {:.2e}, lower {:.2e}",
        outcome.evidence.p_two, outcome.evidence.p_upper, outcome.evidence.p_lower
    );
    println!("flag = {} (P = cleaning helped, N = hurt, S = insignificant)", outcome.flag);
}
