//! Domain scenario: entity resolution on the Restaurant catalogue.
//!
//! Uses the cleaning API directly (no study machinery) to compare the two
//! duplicate detectors of the paper — key collision and ZeroER-style
//! unsupervised matching — against the generator's ground truth, reporting
//! pairwise precision/recall and the downstream effect of each repair.
//!
//! ```sh
//! cargo run --release --example dedupe_restaurants
//! ```

use std::collections::HashSet;

use cleanml::cleaning::duplicates::{self, DuplicateDetection};
use cleanml::datagen::{generate, spec_by_name};

fn main() {
    let data = generate(spec_by_name("Restaurant").expect("known"), 7);
    let injected: HashSet<usize> = data.duplicate_rows.iter().copied().collect();
    println!(
        "Restaurant stand-in: {} rows, {} injected duplicates",
        data.dirty.n_rows(),
        injected.len()
    );

    for detection in [DuplicateDetection::KeyCollision, DuplicateDetection::ZeroEr] {
        let cleaner = duplicates::fit(detection, &data.dirty).expect("fit");
        let pairs = cleaner.detect_pairs(&data.dirty).expect("detect");

        // A detected pair is correct when at least one side is an injected
        // duplicate (the other being its source or a sibling duplicate).
        let tp = pairs.iter().filter(|(a, b)| injected.contains(a) || injected.contains(b)).count();
        let fp = pairs.len() - tp;
        let found: HashSet<usize> =
            pairs.iter().flat_map(|&(a, b)| [a, b]).filter(|r| injected.contains(r)).collect();
        let precision = if pairs.is_empty() { 1.0 } else { tp as f64 / pairs.len() as f64 };
        let recall = found.len() as f64 / injected.len().max(1) as f64;

        let (cleaned, report) = cleaner.apply(&data.dirty).expect("apply");
        println!(
            "\n{:<14} pairs={:<4} precision={:.2} recall={:.2} fp={} rows {} -> {}",
            detection.name(),
            pairs.len(),
            precision,
            recall,
            fp,
            report.rows_before,
            cleaned.n_rows()
        );
    }

    println!(
        "\nThe paper's finding (Table 15): ZeroER is more aggressive than key \
         collision — higher recall on fuzzy duplicates, but its false positives \
         can delete informative rows and hurt the downstream model."
    );
}
