//! Walkthrough of the paper's §IV protocol examples (Tables 7–10):
//! generating metric pairs for the three specification levels s1 (R1),
//! s2 (R2, model selection) and s3 (R3, cleaning-method selection) on the
//! EEG dataset with outlier cleaning.
//!
//! ```sh
//! cargo run --release --example protocol_walkthrough
//! ```

use cleanml::cleaning::CleaningMethod;
use cleanml::core::schema::ErrorType;
use cleanml::core::{evaluate_grid, ExperimentConfig};
use cleanml::datagen::{generate, spec_by_name};

fn main() {
    let data = generate(spec_by_name("EEG").expect("known"), 42);
    let cfg = ExperimentConfig { n_splits: 8, ..ExperimentConfig::quick() };
    let grid = evaluate_grid(&data, ErrorType::Outliers, &cfg).expect("grid");

    // --- s1 (Table 7 / Table 10): fixed method + model -------------------
    // Method 3 = IQR/Mean in the Table 2 catalogue order; model 0 = LR.
    let methods = CleaningMethod::catalogue(ErrorType::Outliers);
    let (mi, _) = methods
        .iter()
        .enumerate()
        .find(|(_, m)| m.label() == "IQR/Mean")
        .expect("IQR/Mean in catalogue");
    println!("s1 = (EEG, Outliers, IQR, Mean, Logistic Regression, BD)");
    println!("split   val(dirty) val(clean)     B       D");
    for s in 0..cfg.n_splits {
        let c = grid.cell(s, mi, 0);
        println!(
            "{s:>5}   {:>10.3} {:>10.3} {:>7.3} {:>7.3}",
            c.val_dirty, c.val_clean, c.acc_b, c.acc_d
        );
    }

    // --- s2 (Table 8): model selection -----------------------------------
    println!("\ns2 = (EEG, Outliers, IQR, Mean, BD) with model selection");
    println!("split 0 leaderboard (validation on cleaned training set):");
    let mut board: Vec<(String, f64, f64)> = grid
        .models
        .iter()
        .enumerate()
        .map(|(ki, kind)| {
            let c = grid.cell(0, mi, ki);
            (kind.name().to_owned(), c.val_clean, c.acc_d)
        })
        .collect();
    board.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("{:<22} {:>10} {:>14}", "model", "val acc", "clean test acc");
    for (name, val, acc) in &board {
        println!("{name:<22} {val:>10.3} {acc:>14.3}");
    }

    // --- s3 (Table 9): cleaning-method selection --------------------------
    println!("\ns3 = (EEG, Outliers, BD) with model + cleaning-method selection");
    println!("split 0, best model's validation per cleaning method:");
    println!("{:<16} {:>10} {:>14}", "method", "best val", "clean test acc");
    for (mj, method) in grid.methods.iter().enumerate() {
        let best_ki = (0..grid.models.len())
            .max_by(|&a, &b| {
                grid.cell(0, mj, a)
                    .val_clean
                    .partial_cmp(&grid.cell(0, mj, b).val_clean)
                    .expect("finite")
            })
            .expect("models non-empty");
        let c = grid.cell(0, mj, best_ki);
        println!("{:<16} {:>10.3} {:>14.3}", method.label(), c.val_clean, c.acc_d);
    }

    // --- flags -------------------------------------------------------------
    let r3 = grid.r3_rows().expect("rows");
    for row in r3 {
        println!(
            "\nR3 row: (EEG, Outliers, {}) -> flag {} (B̄ = {:.3}, D̄ = {:.3})",
            row.scenario, row.flag, row.evidence.mean_before, row.evidence.mean_after
        );
    }
}
