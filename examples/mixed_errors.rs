//! Domain scenario: cleaning co-occurring error types on Credit (§VII-A).
//!
//! Credit carries both missing values and outliers. This example compares
//! three pipelines per split — clean only missing values, clean only
//! outliers, clean both — using the paper's R3-style selection (best
//! cleaning combination + best model by validation score).
//!
//! ```sh
//! cargo run --release --example mixed_errors
//! ```

use cleanml::cleaning::ErrorType;
use cleanml::core::mixed::{compare_mixed_vs_single, mixed_method_space};
use cleanml::core::ExperimentConfig;
use cleanml::datagen::{generate, spec_by_name};

fn main() {
    let data = generate(spec_by_name("Credit").expect("known"), 42);
    println!(
        "Credit stand-in: {} rows, {} missing cells, error types {:?}",
        data.dirty.n_rows(),
        data.dirty.n_missing_cells(),
        data.error_types
    );

    let cap = 3; // methods per error type inside the Cartesian product
    let space = mixed_method_space(&data.error_types, cap);
    println!(
        "combined cleaning space: {} method combinations (cap {cap} per error type)",
        space.len()
    );

    let cfg = ExperimentConfig { n_splits: 8, ..ExperimentConfig::quick() };
    for single in [ErrorType::MissingValues, ErrorType::Outliers] {
        let cmp = compare_mixed_vs_single(&data, single, cap, &cfg).expect("comparison");
        println!(
            "\nmixed vs {:<15} flag = {}  (single F1 = {:.3}, mixed F1 = {:.3}, p = {:.3})",
            single.name(),
            cmp.flag,
            cmp.evidence.mean_before,
            cmp.evidence.mean_after,
            cmp.evidence.p_two
        );
    }

    println!(
        "\nPaper Table 17's finding: on Credit, cleaning both error types beats \
         cleaning either one alone (P in both rows)."
    );
}
