//! Domain scenario: missing-value repair on the Titanic manifest.
//!
//! Compares the paper's eight missing-value repairs (deletion, the six
//! simple imputations, HoloClean-style inference) by the downstream
//! accuracy of a decision tree, plus imputation RMSE against the retained
//! ground truth — the measurement the original study could not make.
//!
//! ```sh
//! cargo run --release --example impute_titanic
//! ```

use cleanml::cleaning::missing::{self, MissingRepair};
use cleanml::datagen::{generate, spec_by_name};
use cleanml::dataset::Encoder;
use cleanml::ml::{accuracy, ModelKind, ModelSpec};

fn main() {
    let data = generate(spec_by_name("Titanic").expect("known"), 11);
    println!(
        "Titanic stand-in: {} rows, {} missing cells",
        data.dirty.n_rows(),
        data.dirty.n_missing_cells()
    );
    let (train, test) = data.dirty.split(0.3, 1).expect("split");
    let (_, truth_test) = data.clean_cells.split(0.3, 1).expect("aligned split");

    println!("\n{:<12} {:>10} {:>12} {:>14}", "repair", "test acc", "rows kept", "age RMSE");
    for repair in MissingRepair::all() {
        let cleaner = missing::fit(repair, &train).expect("fit");
        let (ctrain, _) = cleaner.apply(&train).expect("train");
        let (ctest, _) = cleaner.apply(&test).expect("test");

        // Downstream accuracy of a decision tree.
        let enc = Encoder::fit(&ctrain).expect("encode");
        let train_m = enc.transform(&ctrain).expect("transform");
        let test_m = enc.transform(&ctest).expect("transform");
        let model =
            ModelSpec::default_for(ModelKind::DecisionTree).fit(&train_m, 3).expect("fit model");
        let preds = model.predict(&test_m).expect("predict");
        let acc = accuracy(test_m.labels(), &preds);

        // Imputation quality vs ground truth on the "age" column
        // (deletion drops rows, so RMSE only applies to imputing repairs).
        let rmse = if repair == MissingRepair::Deletion {
            f64::NAN
        } else {
            let age = test.schema().index_of("age").expect("age column");
            let rows = test.missing_rows(age).expect("rows");
            if rows.is_empty() {
                0.0
            } else {
                let mse: f64 = rows
                    .iter()
                    .map(|&r| {
                        let imputed = ctest.get(r, age).unwrap().as_num().unwrap();
                        let truth = truth_test.get(r, age).unwrap().as_num().unwrap();
                        (imputed - truth) * (imputed - truth)
                    })
                    .sum::<f64>()
                    / rows.len() as f64;
                mse.sqrt()
            }
        };

        println!("{:<12} {:>10.3} {:>12} {:>14.2}", repair.name(), acc, ctest.n_rows(), rmse);
    }

    println!(
        "\nPaper Table 11's finding: imputation mostly beats deletion, and \
         HoloClean-style inference is not noticeably better than the simple \
         statistics for the downstream model."
    );
}
