//! # CleanML-rs
//!
//! A from-scratch Rust reproduction of *CleanML: A Study for Evaluating the
//! Impact of Data Cleaning on ML Classification Tasks* (ICDE 2021).
//!
//! This facade crate re-exports the entire workspace so examples, tests and
//! downstream users need a single dependency:
//!
//! * [`dataset`] — columnar tabular substrate (tables, schemas, splits,
//!   encoding, CSV).
//! * [`stats`] — paired t-tests, Student-t distribution, FDR control.
//! * [`ml`] — seven from-scratch classifiers plus MLP/NaCL, CV and model
//!   selection.
//! * [`cleaning`] — detection & repair for the five CleanML error types.
//! * [`datagen`] — synthetic stand-ins for the study's 14 datasets, with
//!   ground truth.
//! * [`core`] — the study framework: R1/R2/R3 relations, the 20-split
//!   experiment runner, the results database and its Q1–Q5 analyses.
//! * [`engine`] — the parallel study-execution engine: a work-stealing
//!   scheduler over typed task DAGs with a content-addressed artifact
//!   cache for resumable, deduplicated runs.
//!
//! ## Quickstart
//!
//! ```
//! use cleanml::datagen::{spec_by_name, generate};
//! use cleanml::core::{ExperimentConfig, run_r1_experiment, Spec1};
//! use cleanml::core::schema::{ErrorType, Scenario, Detection, Repair, Model};
//!
//! // Generate the EEG stand-in dataset (outliers + mislabels).
//! let spec = spec_by_name("EEG").unwrap();
//! let data = generate(&spec, 42);
//!
//! // One R1 experiment: IQR-detected outliers repaired by mean imputation,
//! // logistic regression, model-development scenario.
//! let exp = Spec1 {
//!     dataset: "EEG".into(),
//!     error_type: ErrorType::Outliers,
//!     detection: Detection::Iqr,
//!     repair: Repair::ImputeMean,
//!     model: Model::LogisticRegression,
//!     scenario: Scenario::BD,
//! };
//! let cfg = ExperimentConfig::quick();
//! let outcome = run_r1_experiment(&data, &exp, &cfg).unwrap();
//! println!("flag = {:?}", outcome.flag);
//! ```

pub use cleanml_cleaning as cleaning;
pub use cleanml_core as core;
pub use cleanml_datagen as datagen;
pub use cleanml_dataset as dataset;
pub use cleanml_engine as engine;
pub use cleanml_ml as ml;
pub use cleanml_stats as stats;
