//! Cross-crate integration: every dataset × every applicable cleaning method
//! survives the fit-on-train/apply-to-both protocol with coherent reports.

use cleanml::cleaning::{clean_pair, CleaningMethod, ErrorType};
use cleanml::datagen::{generate, specs};
use cleanml::dataset::Encoder;

#[test]
fn full_catalogue_runs_on_all_datasets() {
    for spec in specs() {
        let data = generate(spec, 99);
        let (train, test) = data.dirty.split(0.3, 5).expect("split");
        for &et in spec.error_types {
            for method in CleaningMethod::catalogue(et) {
                let out = clean_pair(&method, &train, &test, 3)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", spec.name, method.label()));
                // reports are internally consistent
                assert_eq!(out.report.train.rows_before, train.n_rows(), "{}", spec.name);
                assert_eq!(out.report.train.rows_after, out.train.n_rows());
                assert_eq!(out.report.test.rows_after, out.test.n_rows());
                assert!(out.train.n_rows() > 0, "{} {} emptied train", spec.name, method.label());
                // cleaned tables still encode + keep both classes comparable
                let enc = Encoder::fit(&out.train)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", spec.name, method.label()));
                let m = enc.transform(&out.train).expect("transform");
                assert_eq!(m.n_rows(), out.train.n_rows());
                // imputation-style missing-value repairs leave nothing missing
                if et == ErrorType::MissingValues {
                    assert_eq!(out.train.n_missing_cells(), 0, "{}", method.label());
                    assert_eq!(out.test.n_missing_cells(), 0, "{}", method.label());
                }
            }
        }
    }
}

#[test]
fn outlier_cleaning_shrinks_extremes() {
    let spec = cleanml::datagen::spec_by_name("EEG").expect("known");
    let data = generate(spec, 7);
    let (train, test) = data.dirty.split(0.3, 1).expect("split");
    let method = CleaningMethod::catalogue(ErrorType::Outliers)
        .into_iter()
        .find(|m| m.label() == "SD/Mean")
        .expect("SD/Mean in catalogue");
    let out = clean_pair(&method, &train, &test, 0).expect("clean");

    // Measured in the *original* training frame (mean/std before cleaning),
    // the most extreme deviation in every numeric column must shrink:
    // SD-detected cells are replaced by the inlier mean, which lies inside
    // the 3σ band. (Recomputing the std after cleaning would be the wrong
    // frame — removing outliers tightens it, inflating the z of inliers.)
    for c in train.schema().numeric_feature_indices() {
        let col = train.column(c).expect("col");
        let mean = cleanml::dataset::stats::mean(col).expect("values");
        let std = cleanml::dataset::stats::std_dev(col).expect("values").max(1e-12);
        let frame_max = |t: &cleanml::dataset::Table| {
            t.column(c)
                .expect("col")
                .numeric_values()
                .iter()
                .map(|v| ((v - mean) / std).abs())
                .fold(0.0, f64::max)
        };
        let before = frame_max(&train);
        let after = frame_max(&out.train);
        assert!(
            after <= before + 1e-9,
            "column {c}: extreme deviation grew from {before} to {after}"
        );
    }
}

#[test]
fn mislabel_cleaning_moves_labels_toward_truth() {
    use cleanml::datagen::{inject_mislabel_variant, spec_by_name, MislabelStrategy};
    let base = generate(spec_by_name("Titanic").expect("known"), 21);
    let variant = inject_mislabel_variant(&base, MislabelStrategy::Uniform, 5);
    let method = CleaningMethod::catalogue(ErrorType::Mislabels)[0];
    let (train, test) = variant.dirty.split(0.3, 2).expect("split");
    let out = clean_pair(&method, &train, &test, 0).expect("clean");
    // same shape, labels possibly fixed
    assert_eq!(out.train.n_rows(), train.n_rows());
    assert_eq!(out.test.n_rows(), test.n_rows());
    let label = train.label_index().expect("label");
    let changed = (0..train.n_rows())
        .filter(|&r| out.train.get(r, label).unwrap() != train.get(r, label).unwrap())
        .count();
    assert!(changed > 0, "confident learning changed nothing");
}
