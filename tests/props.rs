//! Cross-crate property-based tests on the study's core invariants.

use proptest::prelude::*;

use cleanml::cleaning::inconsistency::fingerprint;
use cleanml::cleaning::similarity::{levenshtein, levenshtein_similarity, token_jaccard};
use cleanml::dataset::split::{kfold_indices, split_indices};
use cleanml::stats::{
    benjamini_hochberg, benjamini_yekutieli, bonferroni, flag_from_pvalues, paired_t_test, Flag,
};

proptest! {
    /// A split is always a partition of 0..n, deterministic in its seed.
    #[test]
    fn split_partitions(n in 1usize..300, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let (train, test) = split_indices(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let again = split_indices(n, frac, seed);
        prop_assert_eq!(&again.0, &train);
        if n >= 2 {
            prop_assert!(!train.is_empty(), "train emptied at frac={frac}");
        }
    }

    /// k-fold validation sets partition the rows exactly once.
    #[test]
    fn kfold_partitions(n in 4usize..200, k in 2usize..8, seed in any::<u64>()) {
        let folds = kfold_indices(n, k, seed);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), n);
        }
    }

    /// Swapping the two samples of a paired t-test mirrors the flag.
    #[test]
    fn ttest_antisymmetry(
        diffs in prop::collection::vec(-0.2f64..0.2, 5..30),
        base in 0.3f64..0.7,
    ) {
        let before: Vec<f64> = diffs.iter().map(|_| base).collect();
        let after: Vec<f64> = diffs.iter().map(|d| base + d).collect();
        let fwd = paired_t_test(&after, &before).expect("t-test");
        let rev = paired_t_test(&before, &after).expect("t-test");
        prop_assert!((fwd.p_two - rev.p_two).abs() < 1e-9);
        let f_fwd = flag_from_pvalues(fwd.p_two, fwd.p_upper, fwd.p_lower, 0.05);
        let f_rev = flag_from_pvalues(rev.p_two, rev.p_upper, rev.p_lower, 0.05);
        let mirrored = match f_fwd {
            Flag::Positive => Flag::Negative,
            Flag::Negative => Flag::Positive,
            Flag::Insignificant => Flag::Insignificant,
        };
        prop_assert_eq!(f_rev, mirrored);
    }

    /// Guaranteed FDR strictness orderings: BY ⊆ BH ⊆ uncorrected and
    /// Bonferroni ⊆ BH. (Bonferroni and BY are *incomparable*: BY's rank-1
    /// threshold α/(m·c(m)) is stricter than Bonferroni's α/m, while its
    /// high-rank thresholds are looser.)
    #[test]
    fn fdr_strictness(ps in prop::collection::vec(1e-8f64..1.0, 1..100)) {
        let raw: usize = ps.iter().filter(|&&p| p < 0.05).count();
        let bh: usize = benjamini_hochberg(&ps, 0.05).iter().filter(|&&b| b).count();
        let by: usize = benjamini_yekutieli(&ps, 0.05).iter().filter(|&&b| b).count();
        let bf: usize = bonferroni(&ps, 0.05).iter().filter(|&&b| b).count();
        prop_assert!(bh <= raw, "BH {bh} > raw {raw}");
        prop_assert!(by <= bh, "BY {by} > BH {bh}");
        prop_assert!(bf <= bh, "Bonferroni {bf} > BH {bh}");
    }

    /// Levenshtein is a metric on the tested domain.
    #[test]
    fn levenshtein_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        let s = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    /// Similarities live in [0, 1] and are reflexive.
    #[test]
    fn jaccard_bounds(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        let s = token_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(token_jaccard(&a, &a), 1.0);
    }

    /// The OpenRefine fingerprint is invariant to case, punctuation runs and
    /// token order — the clustering property the repair relies on.
    #[test]
    fn fingerprint_invariances(words in prop::collection::vec("[a-z]{1,8}", 1..5)) {
        let canonical = words.join(" ");
        let shouty = canonical.to_uppercase();
        let mut reversed_words = words.clone();
        reversed_words.reverse();
        let reversed = reversed_words.join(" ");
        let punct = words.join("--");
        prop_assert_eq!(fingerprint(&canonical), fingerprint(&shouty));
        prop_assert_eq!(fingerprint(&canonical), fingerprint(&reversed));
        prop_assert_eq!(fingerprint(&canonical), fingerprint(&punct));
    }
}
