//! Cross-crate integration: the full study pipeline on a reduced budget.

use cleanml::core::database::Relation;
use cleanml::core::schema::{ErrorType, Scenario};
use cleanml::core::{run_study, ExperimentConfig, Flag};
use cleanml::stats::Correction;

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { n_splits: 4, ..ExperimentConfig::quick() }
}

#[test]
fn inconsistencies_study_matches_paper_cardinalities() {
    let db = run_study(&[ErrorType::Inconsistencies], &tiny_cfg()).expect("study");
    // 4 datasets × 1 method × 7 models × 2 scenarios
    assert_eq!(db.r1.len(), 56);
    assert_eq!(db.r2.len(), 8);
    assert_eq!(db.r3.len(), 8);
    assert_eq!(db.n_hypotheses(Relation::R1), 168);
    // Q1 totals equal relation sizes
    assert_eq!(db.q1(Relation::R1, ErrorType::Inconsistencies).total(), 56);
    // the paper's headline for inconsistencies: no negative impact
    let q1 = db.q1(Relation::R1, ErrorType::Inconsistencies);
    assert_eq!(q1.n, 0, "cleaning inconsistencies must not hurt");
}

#[test]
fn duplicates_study_runs_both_scenarios() {
    let db = run_study(&[ErrorType::Duplicates], &tiny_cfg()).expect("study");
    // 4 datasets × 2 methods × 7 models × 2 scenarios
    assert_eq!(db.r1.len(), 112);
    let by_scenario = db.q2(Relation::R1, ErrorType::Duplicates);
    assert_eq!(by_scenario[&Scenario::BD].total(), 56);
    assert_eq!(by_scenario[&Scenario::CD].total(), 56);
    // Q4.1 splits evenly between the two detectors
    let by_det = db.q4_detection(Relation::R1, ErrorType::Duplicates);
    assert!(by_det.values().all(|d| d.total() == 56));
}

#[test]
fn by_correction_only_weakens_discoveries() {
    let mut db = run_study(&[ErrorType::Inconsistencies], &tiny_cfg()).expect("study");
    // Recompute with no correction, then compare against BY.
    let mut raw = db.clone();
    raw.apply_correction(Correction::None, 0.05);
    db.apply_correction(Correction::BenjaminiYekutieli, 0.05);
    let raw_sig: usize = raw.r1.iter().filter(|r| r.flag != Flag::Insignificant).count();
    let by_sig: usize = db.r1.iter().filter(|r| r.flag != Flag::Insignificant).count();
    assert!(by_sig <= raw_sig, "BY created discoveries: {by_sig} > {raw_sig}");
    // And BY never flips a P to an N or vice versa.
    for (r, b) in raw.r1.iter().zip(&db.r1) {
        if b.flag != Flag::Insignificant {
            assert_eq!(r.flag, b.flag, "correction changed a flag's direction");
        }
    }
}

#[test]
fn evidence_is_well_formed() {
    let db = run_study(&[ErrorType::Duplicates], &tiny_cfg()).expect("study");
    for r in &db.r1 {
        let e = &r.evidence;
        assert!((0.0..=1.0).contains(&e.p_two), "p0 = {}", e.p_two);
        assert!((0.0..=1.0).contains(&e.p_upper));
        assert!((0.0..=1.0).contains(&e.p_lower));
        assert!((0.0..=1.0).contains(&e.mean_before));
        assert!((0.0..=1.0).contains(&e.mean_after));
        assert_eq!(e.n_splits, 4);
        // one-tailed p-values partition around the two-tailed one
        assert!((e.p_upper + e.p_lower - 1.0).abs() < 1e-9 || e.p_two <= 1.0);
    }
}
