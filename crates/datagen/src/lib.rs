//! # cleanml-datagen
//!
//! Synthetic stand-ins for the 14 real-world datasets of the CleanML study
//! (paper Table 3), with realistic injected errors and — unlike the paper's
//! data — retained ground truth.
//!
//! The study's object of measurement is the relationship between an *error
//! mechanism*, a *cleaning algorithm*, and a *downstream model*, not any one
//! dataset's idiosyncrasies (see `DESIGN.md` §4 for the substitution
//! rationale). Each generator therefore reproduces:
//!
//! * a learnable base task — numeric and categorical features driving a
//!   binary label through a noisy latent score ([`model`]);
//! * the dataset's error types from Table 3, injected with mechanisms
//!   matching the real data's character ([`inject`]): MCAR/MAR missing
//!   cells, heavy-tailed outliers, typo'd and exact duplicate records,
//!   alternative-spelling inconsistencies, and boundary-concentrated label
//!   noise for the Clothing dataset's "real" mislabels;
//! * per-dataset error rates and class (im)balance ([`registry`]).
//!
//! ```
//! use cleanml_datagen::{spec_by_name, generate};
//!
//! let spec = spec_by_name("Titanic").unwrap();
//! let data = generate(spec, 42);
//! assert!(data.dirty.n_missing_cells() > 0);
//! assert_eq!(data.clean_cells.n_missing_cells(), 0); // ground truth retained
//! ```

pub mod inject;
pub mod model;
pub mod registry;

pub use registry::{generate, spec_by_name, specs, DatasetSpec};

use cleanml_cleaning::ErrorType;
use cleanml_dataset::Table;

/// A generated dataset: the dirty table handed to experiments plus the
/// ground truth the paper lacked.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Dataset name (paper Table 3), possibly suffixed with a mislabel
    /// injection strategy (e.g. `EEGuniform`).
    pub name: String,
    /// The dirty table experiments run on.
    pub dirty: Table,
    /// Cell-level ground truth, row-aligned with `dirty`: missing cells
    /// filled, outlier cells restored, inconsistent spellings canonical,
    /// labels correct. Injected duplicate rows appear here too (aligned),
    /// flagged in [`GeneratedDataset::duplicate_rows`].
    pub clean_cells: Table,
    /// `dirty` row indices that are injected duplicates of an earlier row.
    pub duplicate_rows: Vec<usize>,
    /// `dirty` row indices whose label is wrong.
    pub mislabeled_rows: Vec<usize>,
    /// Error types present (paper Table 3 row).
    pub error_types: Vec<ErrorType>,
    /// Whether the study scores this dataset with F1 instead of accuracy.
    pub imbalanced: bool,
}

impl GeneratedDataset {
    /// `true` if the dataset carries errors of `et`.
    pub fn has_error(&self, et: ErrorType) -> bool {
        self.error_types.contains(&et)
    }
}

/// Mislabel injection strategies (paper §III-B5, following García et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MislabelStrategy {
    /// Flip 5% of the labels in each class.
    Uniform,
    /// Flip 5% of the labels in the majority class.
    Majority,
    /// Flip 5% of the labels in the minority class.
    Minority,
}

impl MislabelStrategy {
    /// All three strategies.
    pub fn all() -> [MislabelStrategy; 3] {
        [MislabelStrategy::Uniform, MislabelStrategy::Majority, MislabelStrategy::Minority]
    }

    /// Suffix used in dataset-variant names (paper Table 13: `EEGuniform`).
    pub fn suffix(&self) -> &'static str {
        match self {
            MislabelStrategy::Uniform => "uniform",
            MislabelStrategy::Majority => "major",
            MislabelStrategy::Minority => "minor",
        }
    }
}

/// The four datasets that receive synthetic mislabel injection
/// (paper §III-B5; Clothing has real mislabels).
pub const MISLABEL_INJECTION_DATASETS: [&str; 4] = ["EEG", "Marketing", "Titanic", "USCensus"];

/// Fraction of labels flipped per strategy (paper: 5%).
pub const MISLABEL_RATE: f64 = 0.05;

/// Produces the mislabel variant of a generated dataset (e.g. `EEGuniform`)
/// by flipping labels per `strategy`. The input must be mislabel-free.
pub fn inject_mislabel_variant(
    base: &GeneratedDataset,
    strategy: MislabelStrategy,
    seed: u64,
) -> GeneratedDataset {
    inject::mislabel_variant(base, strategy, MISLABEL_RATE, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names() {
        assert_eq!(MislabelStrategy::Uniform.suffix(), "uniform");
        assert_eq!(MislabelStrategy::all().len(), 3);
    }
}
