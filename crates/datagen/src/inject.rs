//! Error injectors: turn a clean generated table into a realistic dirty one
//! while keeping the ground truth row-aligned.
//!
//! Injection order in the registry is: outliers → missing values →
//! inconsistencies → duplicates → shuffle. Duplicates copy the *dirty*
//! source row (a real-world duplicate carries its errors along), and the
//! final shuffle prevents injected rows from clustering at the table end.

use cleanml_cleaning::ErrorType;
use cleanml_dataset::{ColumnKind, ColumnRole, Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::model::randn;
use crate::{GeneratedDataset, MislabelStrategy};

/// Mutable injection state: the dirty table, its aligned ground truth, and
/// error bookkeeping.
#[derive(Debug, Clone)]
pub struct ErrorState {
    pub dirty: Table,
    pub clean: Table,
    pub duplicate_rows: Vec<usize>,
    pub mislabeled_rows: Vec<usize>,
}

impl ErrorState {
    /// Starts from a clean table (dirty = clean).
    pub fn new(clean: Table) -> ErrorState {
        ErrorState {
            dirty: clean.clone(),
            clean,
            duplicate_rows: Vec::new(),
            mislabeled_rows: Vec::new(),
        }
    }

    /// Finalizes into a [`GeneratedDataset`].
    pub fn into_dataset(
        self,
        name: impl Into<String>,
        error_types: Vec<ErrorType>,
        imbalanced: bool,
    ) -> GeneratedDataset {
        GeneratedDataset {
            name: name.into(),
            dirty: self.dirty,
            clean_cells: self.clean,
            duplicate_rows: self.duplicate_rows,
            mislabeled_rows: self.mislabeled_rows,
            error_types,
            imbalanced,
        }
    }
}

/// Injects MCAR/MAR missing cells into the feature columns.
///
/// Each feature cell goes missing with probability `rate`; when
/// `mar_driver` names a numeric column, rows whose driver value exceeds the
/// column mean miss at double the rate (missing-at-random conditioned on an
/// observed attribute — the Titanic/Credit pattern).
pub fn inject_missing(state: &mut ErrorState, rate: f64, mar_driver: Option<&str>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let feature_cols = state.dirty.schema().feature_indices();
    let driver = mar_driver.and_then(|name| {
        let idx = state.dirty.schema().index_of(name).ok()?;
        let col = state.dirty.column(idx).ok()?;
        let mean = cleanml_dataset::stats::mean(col)?;
        Some((idx, mean))
    });

    for r in 0..state.dirty.n_rows() {
        let row_rate = match driver {
            Some((idx, mean)) => {
                let above = state
                    .dirty
                    .column(idx)
                    .ok()
                    .and_then(|c| c.num(r))
                    .map(|v| v > mean)
                    .unwrap_or(false);
                if above {
                    (rate * 2.0).min(0.9)
                } else {
                    rate
                }
            }
            None => rate,
        };
        for &c in &feature_cols {
            if rng.random::<f64>() < row_rate {
                state.dirty.set(r, c, Value::Null).expect("row in range");
            }
        }
    }
}

/// Injects heavy-tailed outliers into numeric feature cells: with
/// probability `rate` a cell is replaced by `mean ± u·std` with
/// `u ~ Uniform(5, 12) × magnitude` — far outside the 3σ band, as sensor
/// glitches and fat-finger entries are.
pub fn inject_outliers(state: &mut ErrorState, rate: f64, magnitude: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols = state.dirty.schema().numeric_feature_indices();
    for &c in &cols {
        let col = state.dirty.column(c).expect("column exists");
        let Some(mean) = cleanml_dataset::stats::mean(col) else { continue };
        let std = cleanml_dataset::stats::std_dev(col).unwrap_or(0.0).max(1e-9);
        for r in 0..state.dirty.n_rows() {
            if state.dirty.column(c).unwrap().num(r).is_some() && rng.random::<f64>() < rate {
                let u = rng.random_range(5.0..12.0) * magnitude;
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                state.dirty.set(r, c, Value::Num(mean + sign * u * std)).expect("row in range");
            }
        }
    }
}

/// Alternative-representation generators for inconsistency injection.
fn inconsistent_variant(rng: &mut StdRng, v: &str) -> String {
    match rng.random_range(0..5) {
        0 => v.to_uppercase(),
        1 => v.to_lowercase(),
        2 => v.split_whitespace().collect::<Vec<_>>().join("-"),
        3 => {
            // token reorder (fingerprint-clusterable)
            let mut toks: Vec<&str> = v.split_whitespace().collect();
            toks.reverse();
            toks.join(" ")
        }
        _ => {
            // typo: duplicate one character (fingerprint-resistant, like
            // the real misspellings OpenRefine misses)
            let chars: Vec<char> = v.chars().collect();
            if chars.is_empty() {
                return v.to_owned();
            }
            let at = rng.random_range(0..chars.len());
            let mut s: String = chars[..=at].iter().collect();
            s.push(chars[at]);
            s.extend(&chars[at + 1..]);
            s
        }
    }
}

/// Injects inconsistent spellings into the named categorical columns: each
/// cell is replaced by an alternative representation with probability
/// `rate`. The ground truth keeps the canonical spelling.
pub fn inject_inconsistencies(state: &mut ErrorState, columns: &[&str], rate: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for name in columns {
        let Ok(c) = state.dirty.schema().index_of(name) else { continue };
        for r in 0..state.dirty.n_rows() {
            let Some(v) = state.dirty.column(c).unwrap().cat_str(r).map(str::to_owned) else {
                continue;
            };
            if rng.random::<f64>() < rate {
                let variant = inconsistent_variant(&mut rng, &v);
                state.dirty.set(r, c, Value::Str(variant)).expect("row in range");
            }
        }
    }
}

/// Introduces a typo into a string (substitute / delete / duplicate a char).
fn typo(rng: &mut StdRng, v: &str) -> String {
    let chars: Vec<char> = v.chars().collect();
    if chars.is_empty() {
        return v.to_owned();
    }
    let at = rng.random_range(0..chars.len());
    let mut out = String::with_capacity(v.len() + 1);
    match rng.random_range(0..3) {
        0 => {
            // substitute
            for (i, &ch) in chars.iter().enumerate() {
                out.push(if i == at { 'x' } else { ch });
            }
        }
        1 => {
            // delete
            for (i, &ch) in chars.iter().enumerate() {
                if i != at {
                    out.push(ch);
                }
            }
            if out.is_empty() {
                out.push('x');
            }
        }
        _ => {
            // duplicate
            for (i, &ch) in chars.iter().enumerate() {
                out.push(ch);
                if i == at {
                    out.push(ch);
                }
            }
        }
    }
    out
}

/// Appends duplicate records: `rate × n` source rows are copied; a fraction
/// `exact_frac` are exact copies (key-collision-detectable), the rest get
/// typos in their text attributes and ±2% numeric perturbations
/// (ZeroER-detectable only). Duplicates carry the source row's *dirty*
/// cells, like re-submitted records in the wild.
pub fn inject_duplicates(state: &mut ErrorState, rate: f64, exact_frac: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = state.dirty.n_rows();
    let n_dups = ((n as f64 * rate).round() as usize).max(1);
    let text_cols: Vec<usize> = state
        .dirty
        .schema()
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.kind == ColumnKind::Categorical
                && matches!(f.role, ColumnRole::Key | ColumnRole::Ignore)
        })
        .map(|(i, _)| i)
        .collect();
    let num_cols = state.dirty.schema().numeric_feature_indices();

    for _ in 0..n_dups {
        let src = rng.random_range(0..n);
        let mut dirty_row = state.dirty.row(src).expect("src in range");
        let clean_row = state.clean.row(src).expect("src in range");
        if rng.random::<f64>() >= exact_frac {
            // fuzzy duplicate
            for &c in &text_cols {
                if let Value::Str(s) = &dirty_row[c] {
                    dirty_row[c] = Value::Str(typo(&mut rng, s));
                }
            }
            for &c in &num_cols {
                if let Value::Num(x) = dirty_row[c] {
                    dirty_row[c] = Value::Num(x * (1.0 + 0.02 * randn(&mut rng)));
                }
            }
        }
        let new_index = state.dirty.n_rows();
        state.dirty.push_row(dirty_row).expect("arity matches");
        state.clean.push_row(clean_row).expect("arity matches");
        state.duplicate_rows.push(new_index);
    }
}

/// Makes `rate × n` rows *near-duplicate decoys*: genuinely distinct
/// entities whose identifying text mimics another row's (chain branches,
/// common venue names, homonymous papers). The decoy keeps its own features,
/// label and unique key suffix — it is **not** a duplicate — but a fuzzy
/// matcher will be tempted. This is what makes ZeroER produce the false
/// positives the paper observes (Table 15 Q4.1) while key collision stays
/// conservative.
pub fn inject_duplicate_decoys(state: &mut ErrorState, rate: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = state.dirty.n_rows();
    if n < 4 {
        return;
    }
    let n_decoys = ((n as f64 * rate).round() as usize).max(1);
    let text_cols: Vec<usize> = state
        .dirty
        .schema()
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.kind == ColumnKind::Categorical
                && matches!(f.role, ColumnRole::Key | ColumnRole::Ignore)
        })
        .map(|(i, _)| i)
        .collect();
    if text_cols.is_empty() {
        return;
    }

    for _ in 0..n_decoys {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n);
        if a == b {
            b = (b + 1) % n;
        }
        for &c in &text_cols {
            let Some(src) = state.dirty.column(c).unwrap().cat_str(a).map(str::to_owned) else {
                continue;
            };
            // Copy the source's words but keep the decoy's own trailing
            // unique suffix token, so keys never collide exactly.
            let own_suffix = state
                .dirty
                .column(c)
                .unwrap()
                .cat_str(b)
                .and_then(|s| s.split_whitespace().last().map(str::to_owned));
            let mut words: Vec<&str> = src.split_whitespace().collect();
            if let Some(suffix) = own_suffix.as_deref() {
                if !words.is_empty() {
                    words.pop();
                }
                let mut mimic = words.join(" ");
                mimic.push(' ');
                mimic.push_str(suffix);
                state.dirty.set(b, c, Value::Str(mimic.clone())).expect("row in range");
                state.clean.set(b, c, Value::Str(mimic)).expect("row in range");
            }
        }
    }
}

/// Flips labels of randomly chosen rows ("real" mislabels à la Clothing).
pub fn inject_random_mislabels(state: &mut ErrorState, rate: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let label_col = state.dirty.label_index().expect("label exists");
    let classes = observed_classes(&state.dirty, label_col);
    if classes.len() < 2 {
        return;
    }
    for r in 0..state.dirty.n_rows() {
        if rng.random::<f64>() < rate {
            flip_label(&mut state.dirty, r, label_col, &classes);
            state.mislabeled_rows.push(r);
        }
    }
}

/// Shuffles all rows (dirty + clean + flags in lockstep).
pub fn shuffle_rows(state: &mut ErrorState, seed: u64) {
    let n = state.dirty.n_rows();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    state.dirty = state.dirty.gather(&perm);
    state.clean = state.clean.gather(&perm);
    // old index -> new index
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    for r in &mut state.duplicate_rows {
        *r = inv[*r];
    }
    for r in &mut state.mislabeled_rows {
        *r = inv[*r];
    }
    state.duplicate_rows.sort_unstable();
    state.mislabeled_rows.sort_unstable();
}

fn observed_classes(table: &Table, label_col: usize) -> Vec<String> {
    let col = table.column(label_col).expect("label column");
    let counts = col.category_counts();
    let mut classes: Vec<(String, usize)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(id, &n)| (col.dict_str(id as u32).expect("seen id").to_owned(), n))
        .collect();
    classes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0))); // majority first
    classes.into_iter().map(|(s, _)| s).collect()
}

fn flip_label(table: &mut Table, row: usize, label_col: usize, classes: &[String]) {
    let current = table.column(label_col).unwrap().cat_str(row).expect("label present").to_owned();
    let other = classes.iter().find(|c| **c != current).expect("two classes").clone();
    table.set(row, label_col, Value::Str(other)).expect("row in range");
}

/// Builds the `<name><suffix>` mislabel variant (paper §III-B5): flips
/// `rate` of the labels in each / the majority / the minority class.
pub fn mislabel_variant(
    base: &GeneratedDataset,
    strategy: MislabelStrategy,
    rate: f64,
    seed: u64,
) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = base.dirty.clone();
    let label_col = dirty.label_index().expect("label exists");
    let classes = observed_classes(&dirty, label_col); // majority first
    assert!(classes.len() >= 2, "mislabel injection needs two classes");

    let target_classes: Vec<&String> = match strategy {
        MislabelStrategy::Uniform => classes.iter().collect(),
        MislabelStrategy::Majority => vec![&classes[0]],
        MislabelStrategy::Minority => vec![classes.last().expect("non-empty")],
    };

    let mut mislabeled = base.mislabeled_rows.clone();
    for target in target_classes {
        let rows: Vec<usize> = (0..dirty.n_rows())
            .filter(|&r| dirty.column(label_col).unwrap().cat_str(r) == Some(target.as_str()))
            .collect();
        let n_flip = ((rows.len() as f64 * rate).round() as usize).max(1);
        let mut pool = rows;
        pool.shuffle(&mut rng);
        for &r in pool.iter().take(n_flip) {
            flip_label(&mut dirty, r, label_col, &classes);
            mislabeled.push(r);
        }
    }
    mislabeled.sort_unstable();
    mislabeled.dedup();

    let mut error_types = base.error_types.clone();
    if !error_types.contains(&ErrorType::Mislabels) {
        error_types.push(ErrorType::Mislabels);
    }

    GeneratedDataset {
        name: format!("{}{}", base.name, strategy.suffix()),
        dirty,
        clean_cells: base.clean_cells.clone(),
        duplicate_rows: base.duplicate_rows.clone(),
        mislabeled_rows: mislabeled,
        error_types,
        imbalanced: base.imbalanced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BaseModel, CatFeat, NumFeat, TextCol};

    fn base() -> ErrorState {
        let m = BaseModel {
            n_rows: 300,
            numeric: vec![
                NumFeat { name: "a", mean: 0.0, std: 1.0, effect: 1.0, factor_loading: 0.5 },
                NumFeat { name: "b", mean: 50.0, std: 10.0, effect: -1.0, factor_loading: 0.5 },
            ],
            categorical: vec![CatFeat {
                name: "city",
                categories: vec![("New York", 2.0, 0.5), ("San Francisco", 1.0, -0.5)],
            }],
            text: vec![TextCol {
                name: "entity",
                role: ColumnRole::Key,
                word_pools: vec![
                    vec!["Golden", "Silver", "Iron", "Copper"],
                    vec!["Dragon", "Lotus", "Falcon", "Willow"],
                    vec!["Cafe", "Diner", "House", "Bar"],
                ],
            }],
            label_names: ("no", "yes"),
            label_noise: 0.5,
            label_shift: 0.0,
        };
        ErrorState::new(m.generate(11))
    }

    #[test]
    fn missing_injection_rates() {
        let mut s = base();
        inject_missing(&mut s, 0.1, None, 1);
        let missing = s.dirty.n_missing_cells();
        // 3 feature columns × 300 rows × 10% ≈ 90
        assert!((40..160).contains(&missing), "missing = {missing}");
        assert_eq!(s.clean.n_missing_cells(), 0);
    }

    #[test]
    fn mar_doubles_rate_for_high_driver() {
        let mut s = base();
        inject_missing(&mut s, 0.1, Some("b"), 2);
        // rows with b above its mean should have roughly twice the missing rate
        let b_col = s.clean.schema().index_of("b").unwrap();
        let mean_b = cleanml_dataset::stats::mean(s.clean.column(b_col).unwrap()).unwrap();
        let mut high = (0usize, 0usize); // (missing cells, rows)
        let mut low = (0usize, 0usize);
        let feature_cols = s.dirty.schema().feature_indices();
        for r in 0..s.dirty.n_rows() {
            let driver = s.clean.column(b_col).unwrap().num(r).unwrap();
            let miss = feature_cols
                .iter()
                .filter(|&&c| s.dirty.column(c).unwrap().get(r).unwrap().is_null())
                .count();
            if driver > mean_b {
                high.0 += miss;
                high.1 += 1;
            } else {
                low.0 += miss;
                low.1 += 1;
            }
        }
        let rate_high = high.0 as f64 / high.1 as f64;
        let rate_low = low.0 as f64 / low.1 as f64;
        assert!(rate_high > rate_low, "MAR not visible: {rate_high} vs {rate_low}");
    }

    #[test]
    fn outlier_injection_extreme() {
        let mut s = base();
        inject_outliers(&mut s, 0.03, 1.0, 3);
        // count cells beyond 4 sigma of the clean column stats
        let mut extremes = 0;
        for name in ["a", "b"] {
            let c = s.clean.schema().index_of(name).unwrap();
            let col_clean = s.clean.column(c).unwrap();
            let mean = cleanml_dataset::stats::mean(col_clean).unwrap();
            let std = cleanml_dataset::stats::std_dev(col_clean).unwrap();
            let col_dirty = s.dirty.column(c).unwrap();
            for r in 0..s.dirty.n_rows() {
                if let Some(v) = col_dirty.num(r) {
                    if (v - mean).abs() > 4.0 * std {
                        extremes += 1;
                    }
                }
            }
        }
        assert!(extremes >= 5, "too few injected outliers: {extremes}");
    }

    #[test]
    fn inconsistency_injection_clusterable() {
        let mut s = base();
        inject_inconsistencies(&mut s, &["city"], 0.3, 4);
        let c = s.dirty.schema().index_of("city").unwrap();
        let distinct = s.dirty.column(c).unwrap().dict_len();
        assert!(distinct > 2, "variants should appear, got {distinct} distinct");
        // ground truth still canonical
        assert_eq!(s.clean.column(c).unwrap().dict_len(), 2);
    }

    #[test]
    fn duplicate_injection_tracks_indices() {
        let mut s = base();
        let before = s.dirty.n_rows();
        inject_duplicates(&mut s, 0.08, 0.5, 5);
        let added = s.dirty.n_rows() - before;
        assert_eq!(added, s.duplicate_rows.len());
        assert_eq!(s.dirty.n_rows(), s.clean.n_rows());
        assert!((15..35).contains(&added), "added {added}");
        // every tracked row index is a real row
        for &r in &s.duplicate_rows {
            assert!(r >= before && r < s.dirty.n_rows());
        }
    }

    #[test]
    fn shuffle_preserves_alignment() {
        let mut s = base();
        inject_duplicates(&mut s, 0.05, 1.0, 6);
        let n_dups = s.duplicate_rows.len();
        shuffle_rows(&mut s, 7);
        assert_eq!(s.duplicate_rows.len(), n_dups);
        assert_eq!(s.dirty.n_rows(), s.clean.n_rows());
        // exact duplicates still equal their clean counterpart rows somewhere:
        // alignment means row r of dirty matches row r of clean's entity (same
        // schema), just spot-check labels align.
        let label = s.dirty.label_index().unwrap();
        for r in (0..s.dirty.n_rows()).step_by(37) {
            let d = s.dirty.get(r, label).unwrap();
            let c = s.clean.get(r, label).unwrap();
            assert_eq!(d, c, "labels must stay aligned (no mislabels injected)");
        }
    }

    #[test]
    fn random_mislabels_flagged() {
        let mut s = base();
        inject_random_mislabels(&mut s, 0.08, 8);
        let label = s.dirty.label_index().unwrap();
        assert!(!s.mislabeled_rows.is_empty());
        for &r in &s.mislabeled_rows {
            assert_ne!(s.dirty.get(r, label).unwrap(), s.clean.get(r, label).unwrap());
        }
    }

    #[test]
    fn mislabel_variant_strategies() {
        let s = base();
        let ds = s.into_dataset("Demo", vec![], false);
        for strategy in MislabelStrategy::all() {
            let v = mislabel_variant(&ds, strategy, 0.05, 9);
            assert!(v.name.starts_with("Demo"));
            assert!(!v.mislabeled_rows.is_empty());
            assert!(v.error_types.contains(&ErrorType::Mislabels));
            // flipped rows disagree with ground truth
            let label = v.dirty.label_index().unwrap();
            for &r in &v.mislabeled_rows {
                assert_ne!(v.dirty.get(r, label).unwrap(), v.clean_cells.get(r, label).unwrap());
            }
        }
    }

    #[test]
    fn minority_strategy_targets_minority() {
        let s = base();
        let ds = s.into_dataset("Demo", vec![], false);
        let label = ds.dirty.label_index().unwrap();
        let v = mislabel_variant(&ds, MislabelStrategy::Minority, 0.05, 10);
        // count class sizes in the ground truth
        let counts = ds.dirty.class_counts().unwrap();
        let (minority_id, _) = counts.iter().min_by_key(|&&(_, n)| n).copied().unwrap();
        let minority_name =
            ds.dirty.column(label).unwrap().dict_str(minority_id).unwrap().to_owned();
        for &r in &v.mislabeled_rows {
            // the *original* label of each flipped row was the minority class
            assert_eq!(
                ds.dirty.get(r, label).unwrap(),
                cleanml_dataset::Value::Str(minority_name.clone())
            );
        }
    }
}
