//! The 14 dataset stand-ins (paper Table 3) and their error personalities.
//!
//! Each entry pairs a [`BaseModel`] configuration (the learnable clean core)
//! with injection parameters matching the real dataset's character: which
//! error types it carries (Table 3), roughly how dirty it is, and whether
//! the study scores it with F1 (class-imbalanced).

use cleanml_cleaning::ErrorType;
use cleanml_dataset::ColumnRole;

use crate::inject::{
    inject_duplicate_decoys, inject_duplicates, inject_inconsistencies, inject_missing,
    inject_outliers, inject_random_mislabels, shuffle_rows, ErrorState,
};
use crate::model::{BaseModel, CatFeat, NumFeat, TextCol};
use crate::GeneratedDataset;

/// Static description of one dataset stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Name from paper Table 3.
    pub name: &'static str,
    /// Error types carried (Table 3 row). Mislabel-injection variants are
    /// produced separately via [`crate::inject_mislabel_variant`].
    pub error_types: &'static [ErrorType],
    /// Scored with F1 instead of accuracy.
    pub imbalanced: bool,
    /// One-line description of the real dataset being stood in for.
    pub description: &'static str,
}

use ErrorType::{Duplicates, Inconsistencies, Mislabels, MissingValues, Outliers};

/// All 14 dataset specs, in paper Table 3 order.
pub const SPECS: [DatasetSpec; 14] = [
    DatasetSpec {
        name: "Citation",
        error_types: &[Duplicates],
        imbalanced: false,
        description: "bibliographic records with duplicated entries; task: highly-cited paper",
    },
    DatasetSpec {
        name: "EEG",
        error_types: &[Outliers],
        imbalanced: false,
        description: "correlated EEG channel readings with sensor glitches; task: eye state",
    },
    DatasetSpec {
        name: "Marketing",
        error_types: &[MissingValues],
        imbalanced: false,
        description: "household survey with skipped answers; task: income bracket",
    },
    DatasetSpec {
        name: "Movie",
        error_types: &[Inconsistencies, Duplicates],
        imbalanced: false,
        description: "movie catalogue with free-text genre/language variants and re-listed titles; task: high rating",
    },
    DatasetSpec {
        name: "Company",
        error_types: &[Inconsistencies],
        imbalanced: false,
        description: "company registry with inconsistent state/sector spellings; task: profitability",
    },
    DatasetSpec {
        name: "Restaurant",
        error_types: &[Inconsistencies, Duplicates],
        imbalanced: false,
        description: "restaurant directory with city-name variants and double entries; task: popularity",
    },
    DatasetSpec {
        name: "Sensor",
        error_types: &[Outliers],
        imbalanced: true,
        description: "industrial sensor array with rare fault class and glitch spikes; task: fault",
    },
    DatasetSpec {
        name: "Titanic",
        error_types: &[MissingValues],
        imbalanced: false,
        description: "passenger manifest with missing ages; task: survival",
    },
    DatasetSpec {
        name: "Credit",
        error_types: &[MissingValues, Outliers],
        imbalanced: true,
        description: "credit applications with missing fields and fat-finger amounts; rare default class; task: default",
    },
    DatasetSpec {
        name: "University",
        error_types: &[Inconsistencies],
        imbalanced: false,
        description: "university listing with inconsistent state/type spellings; task: high ranking",
    },
    DatasetSpec {
        name: "USCensus",
        error_types: &[MissingValues],
        imbalanced: false,
        description: "census microdata with unreported attributes; task: income > 50K",
    },
    DatasetSpec {
        name: "Airbnb",
        error_types: &[MissingValues, Outliers, Duplicates],
        imbalanced: false,
        description: "listings with sparse fields, price spikes and re-posted rooms; task: high occupancy",
    },
    DatasetSpec {
        name: "BabyProduct",
        error_types: &[MissingValues],
        imbalanced: false,
        description: "product catalogue with sparse specs; task: premium price band",
    },
    DatasetSpec {
        name: "Clothing",
        error_types: &[Mislabels],
        imbalanced: true,
        description: "clothing reviews with real (unplanted) label noise; task: recommended",
    },
];

/// All dataset specs in Table 3 order.
pub fn specs() -> &'static [DatasetSpec] {
    &SPECS
}

/// Looks up a spec by (exact) name.
pub fn spec_by_name(name: &str) -> Option<&'static DatasetSpec> {
    SPECS.iter().find(|s| s.name == name)
}

/// Generates a dataset stand-in deterministically from `seed`.
pub fn generate(spec: &DatasetSpec, seed: u64) -> GeneratedDataset {
    let mut state = match spec.name {
        "Citation" => citation(seed),
        "EEG" => eeg(seed),
        "Marketing" => marketing(seed),
        "Movie" => movie(seed),
        "Company" => company(seed),
        "Restaurant" => restaurant(seed),
        "Sensor" => sensor(seed),
        "Titanic" => titanic(seed),
        "Credit" => credit(seed),
        "University" => university(seed),
        "USCensus" => uscensus(seed),
        "Airbnb" => airbnb(seed),
        "BabyProduct" => babyproduct(seed),
        "Clothing" => clothing(seed),
        other => panic!("unknown dataset `{other}`"),
    };
    shuffle_rows(&mut state, seed ^ 0x5117_F00D);
    state.into_dataset(spec.name, spec.error_types.to_vec(), spec.imbalanced)
}

// ---------------------------------------------------------------------------
// Per-dataset personalities.
// ---------------------------------------------------------------------------

fn citation(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 360,
        numeric: vec![
            NumFeat { name: "year", mean: 2005.0, std: 8.0, effect: 0.6, factor_loading: 0.2 },
            NumFeat { name: "n_pages", mean: 12.0, std: 4.0, effect: 0.4, factor_loading: 0.2 },
            NumFeat { name: "n_authors", mean: 3.5, std: 1.5, effect: 0.5, factor_loading: 0.1 },
        ],
        categorical: vec![CatFeat {
            name: "venue",
            categories: vec![
                ("SIGMOD", 1.0, 0.8),
                ("VLDB", 1.0, 0.7),
                ("ICDE", 1.0, 0.4),
                ("Workshop", 2.0, -0.9),
            ],
        }],
        text: vec![
            TextCol {
                name: "title",
                role: ColumnRole::Key,
                word_pools: vec![
                    vec![
                        "Scalable",
                        "Adaptive",
                        "Robust",
                        "Efficient",
                        "Learned",
                        "Holistic",
                        "Incremental",
                        "Distributed",
                        "Approximate",
                        "Secure",
                    ],
                    vec![
                        "Query",
                        "Index",
                        "Cleaning",
                        "Stream",
                        "Graph",
                        "Join",
                        "Transaction",
                        "Schema",
                        "Cache",
                        "Sketch",
                    ],
                    vec![
                        "Processing",
                        "Optimization",
                        "Detection",
                        "Analytics",
                        "Systems",
                        "Maintenance",
                        "Estimation",
                        "Discovery",
                    ],
                ],
            },
            TextCol {
                name: "first_author",
                role: ColumnRole::Ignore,
                word_pools: vec![
                    vec!["Chen", "Garcia", "Kim", "Novak", "Okafor", "Patel", "Sato", "Weber"],
                    vec!["A.", "B.", "C.", "D.", "E.", "F."],
                ],
            },
        ],
        label_names: ("low_impact", "high_impact"),
        label_noise: 0.7,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_duplicate_decoys(&mut s, 0.05, seed ^ 7);
    inject_duplicates(&mut s, 0.10, 0.35, seed ^ 1);
    s
}

fn eeg(seed: u64) -> ErrorState {
    let chan =
        |name, effect| NumFeat { name, mean: 4300.0, std: 35.0, effect, factor_loading: 0.8 };
    let m = BaseModel {
        n_rows: 600,
        numeric: vec![
            chan("af3", 1.2),
            chan("f7", -0.8),
            chan("f3", 0.9),
            chan("fc5", -0.6),
            chan("t7", 0.7),
            chan("o1", -1.0),
        ],
        categorical: vec![],
        text: vec![],
        label_names: ("open", "closed"),
        label_noise: 0.8,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_outliers(&mut s, 0.05, 1.5, seed ^ 1);
    s
}

fn marketing(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 520,
        numeric: vec![
            NumFeat { name: "age", mean: 42.0, std: 13.0, effect: 0.5, factor_loading: 0.4 },
            NumFeat { name: "household", mean: 2.8, std: 1.3, effect: -0.3, factor_loading: 0.2 },
            NumFeat {
                name: "years_resident",
                mean: 9.0,
                std: 6.0,
                effect: 0.4,
                factor_loading: 0.4,
            },
        ],
        categorical: vec![
            CatFeat {
                name: "education",
                categories: vec![
                    ("grade_school", 1.0, -1.0),
                    ("high_school", 3.0, -0.3),
                    ("college", 3.0, 0.5),
                    ("graduate", 1.5, 1.1),
                ],
            },
            CatFeat {
                name: "occupation",
                categories: vec![
                    ("professional", 2.0, 0.9),
                    ("sales", 2.0, 0.2),
                    ("laborer", 2.0, -0.6),
                    ("retired", 1.0, -0.4),
                    ("student", 1.0, -0.8),
                ],
            },
        ],
        text: vec![],
        label_names: ("low_income", "high_income"),
        label_noise: 0.8,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_missing(&mut s, 0.12, Some("age"), seed ^ 1);
    s
}

fn movie(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 380,
        numeric: vec![
            NumFeat { name: "duration", mean: 108.0, std: 20.0, effect: 0.5, factor_loading: 0.3 },
            NumFeat { name: "year", mean: 2002.0, std: 12.0, effect: -0.2, factor_loading: 0.1 },
            NumFeat { name: "budget_m", mean: 40.0, std: 25.0, effect: 0.7, factor_loading: 0.4 },
        ],
        categorical: vec![
            CatFeat {
                name: "genre",
                categories: vec![
                    ("Drama", 3.0, 0.6),
                    ("Comedy", 2.5, -0.2),
                    ("Action", 2.0, 0.1),
                    ("Horror", 1.0, -0.8),
                ],
            },
            CatFeat {
                name: "language",
                categories: vec![
                    ("English", 5.0, 0.1),
                    ("French", 1.0, 0.4),
                    ("Spanish", 1.0, -0.1),
                ],
            },
        ],
        text: vec![
            TextCol {
                name: "title",
                role: ColumnRole::Key,
                word_pools: vec![
                    vec![
                        "Midnight", "Crimson", "Silent", "Golden", "Broken", "Electric", "Hollow",
                        "Paper", "Winter", "Neon", "Savage", "Gentle",
                    ],
                    vec![
                        "Horizon",
                        "Mirror",
                        "Garden",
                        "Empire",
                        "River",
                        "Signal",
                        "Harvest",
                        "Letters",
                        "Protocol",
                        "Reckoning",
                        "Orchard",
                        "Static",
                    ],
                    vec![
                        "Rising", "Falling", "Returns", "Awakens", "Divided", "Unbound", "Part II",
                        "Redux", "Forever", "Zero",
                    ],
                ],
            },
            TextCol {
                name: "director",
                role: ColumnRole::Ignore,
                word_pools: vec![
                    vec!["Almodovar", "Bigelow", "Curtis", "Denis", "Eastwood", "Fincher"],
                    vec!["J.", "K.", "L.", "M.", "N."],
                ],
            },
        ],
        label_names: ("low_rated", "high_rated"),
        label_noise: 0.75,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_inconsistencies(&mut s, &["genre", "language"], 0.22, seed ^ 1);
    inject_duplicate_decoys(&mut s, 0.05, seed ^ 7);
    inject_duplicates(&mut s, 0.08, 0.3, seed ^ 2);
    s
}

fn company(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 460,
        numeric: vec![
            NumFeat { name: "revenue_m", mean: 120.0, std: 60.0, effect: 1.0, factor_loading: 0.6 },
            NumFeat {
                name: "employees",
                mean: 800.0,
                std: 400.0,
                effect: 0.4,
                factor_loading: 0.6,
            },
            NumFeat { name: "age_years", mean: 25.0, std: 15.0, effect: 0.3, factor_loading: 0.2 },
        ],
        categorical: vec![
            CatFeat {
                name: "state",
                categories: vec![
                    ("California", 3.0, 0.4),
                    ("New York", 2.5, 0.3),
                    ("Texas", 2.0, 0.0),
                    ("Ohio", 1.0, -0.3),
                ],
            },
            CatFeat {
                name: "sector",
                categories: vec![
                    ("Software Services", 2.0, 0.8),
                    ("Retail Trade", 2.0, -0.5),
                    ("Health Care", 1.5, 0.2),
                    ("Manufacturing", 1.5, -0.2),
                ],
            },
        ],
        text: vec![TextCol {
            name: "company",
            role: ColumnRole::Ignore,
            word_pools: vec![
                vec!["Apex", "Summit", "Pioneer", "Vertex", "Atlas", "Nova"],
                vec!["Data", "Energy", "Logistics", "Capital", "Dynamics", "Retail"],
                vec!["Inc", "LLC", "Group", "Corp"],
            ],
        }],
        label_names: ("unprofitable", "profitable"),
        label_noise: 0.8,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    // Company/Movie have "much greater number of inconsistencies" (paper Q5).
    inject_inconsistencies(&mut s, &["state", "sector"], 0.30, seed ^ 1);
    s
}

fn restaurant(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 360,
        numeric: vec![
            NumFeat { name: "price", mean: 28.0, std: 12.0, effect: 0.6, factor_loading: 0.4 },
            NumFeat {
                name: "review_count",
                mean: 180.0,
                std: 90.0,
                effect: 0.9,
                factor_loading: 0.5,
            },
        ],
        categorical: vec![
            CatFeat {
                name: "city",
                categories: vec![
                    ("New York", 3.0, 0.3),
                    ("San Francisco", 2.0, 0.4),
                    ("Los Angeles", 2.0, 0.0),
                    ("Chicago", 1.5, -0.2),
                ],
            },
            CatFeat {
                name: "cuisine",
                categories: vec![
                    ("Italian", 2.0, 0.3),
                    ("Japanese", 1.5, 0.5),
                    ("Mexican", 1.5, -0.1),
                    ("American", 2.5, -0.3),
                ],
            },
        ],
        text: vec![
            TextCol {
                name: "name",
                role: ColumnRole::Key,
                word_pools: vec![
                    vec![
                        "Golden", "Blue", "Rustic", "Urban", "Little", "Grand", "Silver", "Velvet",
                        "Wild", "Humble", "Brick", "Salty",
                    ],
                    vec![
                        "Dragon", "Olive", "Harbor", "Maple", "Lantern", "Garden", "Fig",
                        "Juniper", "Saffron", "Clove", "Anchor", "Thistle",
                    ],
                    vec![
                        "Kitchen", "Bistro", "Table", "House", "Cantina", "Grill", "Tavern",
                        "Eatery", "Counter", "Parlor",
                    ],
                ],
            },
            TextCol {
                name: "address",
                role: ColumnRole::Ignore,
                word_pools: vec![
                    vec!["Oak", "Pine", "Main", "Market", "Mission", "Broadway", "Sunset", "Lake"],
                    vec!["St", "Ave", "Blvd", "Rd"],
                ],
            },
        ],
        label_names: ("quiet", "popular"),
        label_noise: 0.75,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_inconsistencies(&mut s, &["city", "cuisine"], 0.15, seed ^ 1);
    inject_duplicate_decoys(&mut s, 0.05, seed ^ 7);
    inject_duplicates(&mut s, 0.10, 0.25, seed ^ 2);
    s
}

fn sensor(seed: u64) -> ErrorState {
    let chan = |name, effect| NumFeat { name, mean: 20.0, std: 4.0, effect, factor_loading: 0.7 };
    let m = BaseModel {
        n_rows: 640,
        numeric: vec![
            chan("temp", 1.1),
            chan("voltage", -0.9),
            chan("humidity", 0.6),
            chan("vibration", 1.3),
            chan("pressure", -0.5),
        ],
        categorical: vec![],
        text: vec![],
        label_names: ("normal", "fault"),
        label_noise: 0.7,
        label_shift: 1.4, // rare fault class -> F1 scoring
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_outliers(&mut s, 0.06, 1.5, seed ^ 1);
    s
}

fn titanic(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 520,
        numeric: vec![
            NumFeat { name: "age", mean: 30.0, std: 13.0, effect: -0.5, factor_loading: 0.3 },
            NumFeat { name: "fare", mean: 33.0, std: 20.0, effect: 0.9, factor_loading: 0.5 },
            NumFeat { name: "siblings", mean: 0.9, std: 1.0, effect: -0.3, factor_loading: 0.1 },
        ],
        categorical: vec![
            CatFeat { name: "sex", categories: vec![("female", 1.0, 1.2), ("male", 1.7, -0.8)] },
            CatFeat {
                name: "pclass",
                categories: vec![("first", 1.0, 0.9), ("second", 1.2, 0.2), ("third", 2.5, -0.7)],
            },
            CatFeat {
                name: "embarked",
                categories: vec![("S", 3.0, 0.0), ("C", 1.0, 0.3), ("Q", 0.6, -0.2)],
            },
        ],
        text: vec![],
        label_names: ("died", "survived"),
        label_noise: 0.8,
        label_shift: 0.3,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_missing(&mut s, 0.14, Some("fare"), seed ^ 1);
    s
}

fn credit(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 600,
        numeric: vec![
            NumFeat {
                name: "income",
                mean: 5200.0,
                std: 2200.0,
                effect: -0.8,
                factor_loading: 0.5,
            },
            NumFeat { name: "debt_ratio", mean: 0.35, std: 0.2, effect: 1.1, factor_loading: 0.5 },
            NumFeat { name: "utilization", mean: 0.5, std: 0.3, effect: 1.0, factor_loading: 0.6 },
            NumFeat { name: "age", mean: 45.0, std: 14.0, effect: -0.4, factor_loading: 0.2 },
            NumFeat { name: "open_lines", mean: 8.0, std: 4.0, effect: 0.3, factor_loading: 0.3 },
        ],
        categorical: vec![],
        text: vec![],
        label_names: ("paid", "default"),
        label_noise: 0.8,
        label_shift: 1.6, // rare default class -> F1 scoring
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_outliers(&mut s, 0.04, 1.8, seed ^ 1);
    inject_missing(&mut s, 0.10, Some("income"), seed ^ 2);
    s
}

fn university(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 420,
        numeric: vec![
            NumFeat { name: "tuition_k", mean: 28.0, std: 12.0, effect: 0.8, factor_loading: 0.5 },
            NumFeat {
                name: "enrollment_k",
                mean: 18.0,
                std: 9.0,
                effect: 0.3,
                factor_loading: 0.3,
            },
            NumFeat {
                name: "student_faculty",
                mean: 16.0,
                std: 5.0,
                effect: -0.6,
                factor_loading: 0.4,
            },
        ],
        categorical: vec![
            CatFeat {
                name: "state",
                categories: vec![
                    ("Massachusetts", 1.5, 0.7),
                    ("California", 2.5, 0.4),
                    ("Texas", 2.0, -0.1),
                    ("Florida", 1.5, -0.3),
                ],
            },
            CatFeat {
                name: "control",
                categories: vec![("private nonprofit", 2.0, 0.5), ("public", 3.0, -0.3)],
            },
        ],
        text: vec![TextCol {
            name: "university",
            role: ColumnRole::Ignore,
            word_pools: vec![
                vec!["Northern", "Eastern", "Central", "Pacific", "Lakeside", "Highland"],
                vec!["State", "Valley", "Ridge", "Harbor", "Summit", "Grove"],
                vec!["University", "College", "Institute"],
            ],
        }],
        label_names: ("unranked", "ranked"),
        label_noise: 0.8,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_inconsistencies(&mut s, &["state", "control"], 0.18, seed ^ 1);
    s
}

fn uscensus(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 560,
        numeric: vec![
            NumFeat { name: "age", mean: 39.0, std: 13.0, effect: 0.5, factor_loading: 0.3 },
            NumFeat { name: "hours_week", mean: 40.0, std: 11.0, effect: 0.6, factor_loading: 0.4 },
            NumFeat {
                name: "education_num",
                mean: 10.0,
                std: 2.5,
                effect: 0.9,
                factor_loading: 0.4,
            },
        ],
        categorical: vec![
            CatFeat {
                name: "workclass",
                categories: vec![
                    ("private", 4.0, 0.0),
                    ("self_employed", 1.0, 0.4),
                    ("government", 1.5, 0.2),
                    ("unemployed", 0.5, -1.2),
                ],
            },
            CatFeat {
                name: "marital",
                categories: vec![
                    ("married", 3.0, 0.6),
                    ("never_married", 2.5, -0.6),
                    ("divorced", 1.2, -0.2),
                ],
            },
            CatFeat {
                name: "occupation",
                categories: vec![
                    ("exec_managerial", 1.5, 0.9),
                    ("prof_specialty", 1.5, 0.8),
                    ("craft_repair", 1.5, -0.1),
                    ("other_service", 1.5, -0.7),
                    ("adm_clerical", 1.3, -0.2),
                ],
            },
        ],
        text: vec![],
        label_names: ("lte_50k", "gt_50k"),
        label_noise: 0.8,
        label_shift: 0.4,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_missing(&mut s, 0.10, None, seed ^ 1);
    s
}

fn airbnb(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 420,
        numeric: vec![
            NumFeat { name: "price", mean: 150.0, std: 70.0, effect: -0.5, factor_loading: 0.5 },
            NumFeat { name: "reviews", mean: 45.0, std: 30.0, effect: 0.9, factor_loading: 0.4 },
            NumFeat {
                name: "availability",
                mean: 180.0,
                std: 90.0,
                effect: -0.3,
                factor_loading: 0.2,
            },
            NumFeat { name: "min_nights", mean: 4.0, std: 3.0, effect: -0.4, factor_loading: 0.2 },
        ],
        categorical: vec![
            CatFeat {
                name: "room_type",
                categories: vec![
                    ("entire_home", 3.0, 0.4),
                    ("private_room", 2.5, -0.1),
                    ("shared_room", 0.6, -0.8),
                ],
            },
            CatFeat {
                name: "borough",
                categories: vec![
                    ("Manhattan", 2.5, 0.4),
                    ("Brooklyn", 2.5, 0.2),
                    ("Queens", 1.5, -0.2),
                    ("Bronx", 0.8, -0.4),
                ],
            },
        ],
        text: vec![
            TextCol {
                name: "listing",
                role: ColumnRole::Key,
                word_pools: vec![
                    vec![
                        "Sunny", "Cozy", "Spacious", "Charming", "Modern", "Quiet", "Bright",
                        "Rustic", "Artsy", "Serene",
                    ],
                    vec![
                        "Loft",
                        "Studio",
                        "Apartment",
                        "Room",
                        "Suite",
                        "Flat",
                        "Duplex",
                        "Penthouse",
                        "Hideaway",
                        "Nook",
                    ],
                    vec![
                        "Near Park",
                        "Downtown",
                        "By Subway",
                        "With View",
                        "Garden Level",
                        "Steps To Beach",
                        "Old Town",
                        "Riverside",
                    ],
                ],
            },
            TextCol {
                name: "host",
                role: ColumnRole::Ignore,
                word_pools: vec![
                    vec!["Alex", "Bianca", "Carlos", "Dara", "Elena", "Farid", "Grace", "Hiro"],
                    vec!["R.", "S.", "T.", "V.", "W."],
                ],
            },
        ],
        label_names: ("low_occupancy", "high_occupancy"),
        label_noise: 0.85,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    inject_outliers(&mut s, 0.04, 1.8, seed ^ 1);
    inject_missing(&mut s, 0.08, Some("price"), seed ^ 2);
    inject_duplicate_decoys(&mut s, 0.05, seed ^ 7);
    inject_duplicates(&mut s, 0.06, 0.4, seed ^ 3);
    s
}

fn babyproduct(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 480,
        numeric: vec![
            NumFeat { name: "weight_lb", mean: 6.0, std: 3.0, effect: 0.5, factor_loading: 0.5 },
            NumFeat { name: "rating", mean: 4.1, std: 0.6, effect: 0.7, factor_loading: 0.3 },
            NumFeat {
                name: "review_count",
                mean: 120.0,
                std: 80.0,
                effect: 0.4,
                factor_loading: 0.4,
            },
        ],
        categorical: vec![
            CatFeat {
                name: "category",
                categories: vec![
                    ("stroller", 1.5, 0.9),
                    ("car_seat", 1.5, 0.7),
                    ("feeding", 2.5, -0.5),
                    ("toys", 2.5, -0.6),
                    ("bedding", 1.5, 0.1),
                ],
            },
            CatFeat {
                name: "brand_tier",
                categories: vec![
                    ("premium", 1.2, 1.0),
                    ("midrange", 2.5, 0.0),
                    ("value", 2.0, -0.8),
                ],
            },
        ],
        text: vec![TextCol {
            name: "product",
            role: ColumnRole::Ignore,
            word_pools: vec![
                vec!["Comfy", "Happy", "Tiny", "Snuggle", "Bright", "Gentle"],
                vec!["Bear", "Star", "Cloud", "Duck", "Bunny", "Moon"],
                vec!["Deluxe", "Classic", "Travel", "Mini", "Plus"],
            ],
        }],
        label_names: ("budget", "premium"),
        label_noise: 0.7,
        label_shift: 0.0,
    };
    let mut s = ErrorState::new(m.generate(seed));
    // BabyProduct is the paper's sparsest dataset (human-filled missing values).
    inject_missing(&mut s, 0.15, None, seed ^ 1);
    s
}

fn clothing(seed: u64) -> ErrorState {
    let m = BaseModel {
        n_rows: 540,
        numeric: vec![
            NumFeat { name: "age", mean: 41.0, std: 12.0, effect: 0.3, factor_loading: 0.2 },
            NumFeat { name: "review_len", mean: 60.0, std: 28.0, effect: 0.6, factor_loading: 0.3 },
            NumFeat { name: "rating", mean: 4.0, std: 1.0, effect: 1.4, factor_loading: 0.4 },
        ],
        categorical: vec![
            CatFeat {
                name: "department",
                categories: vec![
                    ("dresses", 2.5, 0.2),
                    ("tops", 3.0, 0.0),
                    ("bottoms", 1.5, -0.1),
                    ("intimate", 1.0, 0.1),
                ],
            },
            CatFeat {
                name: "size_band",
                categories: vec![("petite", 1.0, -0.1), ("regular", 3.0, 0.1), ("plus", 1.0, -0.2)],
            },
        ],
        text: vec![],
        label_names: ("not_recommended", "recommended"),
        label_noise: 0.6,
        label_shift: -1.2, // most reviews recommend -> imbalanced
    };
    let mut s = ErrorState::new(m.generate(seed));
    // Real, unplanted label noise: ~8% random flips.
    inject_random_mislabels(&mut s, 0.08, seed ^ 1);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_specs_unique_names() {
        assert_eq!(SPECS.len(), 14);
        let mut names: Vec<&str> = SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn table3_error_matrix() {
        let errors = |name: &str| spec_by_name(name).unwrap().error_types;
        assert_eq!(errors("Citation"), &[Duplicates]);
        assert_eq!(errors("EEG"), &[Outliers]);
        assert_eq!(errors("Marketing"), &[MissingValues]);
        assert_eq!(errors("Movie"), &[Inconsistencies, Duplicates]);
        assert_eq!(errors("Company"), &[Inconsistencies]);
        assert_eq!(errors("Restaurant"), &[Inconsistencies, Duplicates]);
        assert_eq!(errors("Sensor"), &[Outliers]);
        assert_eq!(errors("Titanic"), &[MissingValues]);
        assert_eq!(errors("Credit"), &[MissingValues, Outliers]);
        assert_eq!(errors("University"), &[Inconsistencies]);
        assert_eq!(errors("USCensus"), &[MissingValues]);
        assert_eq!(errors("Airbnb"), &[MissingValues, Outliers, Duplicates]);
        assert_eq!(errors("BabyProduct"), &[MissingValues]);
        assert_eq!(errors("Clothing"), &[Mislabels]);
    }

    #[test]
    fn all_datasets_generate() {
        for spec in specs() {
            let ds = generate(spec, 42);
            assert_eq!(ds.name, spec.name);
            assert!(ds.dirty.n_rows() >= 300, "{} too small", spec.name);
            assert_eq!(ds.dirty.n_rows(), ds.clean_cells.n_rows(), "{}", spec.name);
            assert_eq!(ds.clean_cells.n_missing_cells(), 0, "{}", spec.name);
            // two classes in both versions
            assert_eq!(ds.dirty.class_counts().unwrap().len(), 2, "{}", spec.name);
            // error presence matches the spec
            if ds.has_error(MissingValues) {
                assert!(ds.dirty.n_missing_cells() > 0, "{} missing", spec.name);
            } else {
                assert_eq!(ds.dirty.n_missing_cells(), 0, "{}", spec.name);
            }
            if ds.has_error(Duplicates) {
                assert!(!ds.duplicate_rows.is_empty(), "{} dups", spec.name);
            } else {
                assert!(ds.duplicate_rows.is_empty(), "{}", spec.name);
            }
            if ds.has_error(Mislabels) {
                assert!(!ds.mislabeled_rows.is_empty(), "{} mislabels", spec.name);
            } else {
                assert!(ds.mislabeled_rows.is_empty(), "{}", spec.name);
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        for spec in specs().iter().take(3) {
            let a = generate(spec, 7);
            let b = generate(spec, 7);
            assert_eq!(a.dirty, b.dirty);
            assert_eq!(a.clean_cells, b.clean_cells);
            assert_eq!(a.duplicate_rows, b.duplicate_rows);
        }
    }

    #[test]
    fn imbalanced_flags() {
        for name in ["Credit", "Sensor", "Clothing"] {
            assert!(spec_by_name(name).unwrap().imbalanced, "{name}");
            let ds = generate(spec_by_name(name).unwrap(), 3);
            let counts = ds.dirty.class_counts().unwrap();
            let max = counts.iter().map(|&(_, n)| n).max().unwrap();
            let total: usize = counts.iter().map(|&(_, n)| n).sum();
            assert!(max as f64 > 0.65 * total as f64, "{name} not actually imbalanced: {counts:?}");
        }
        assert!(!spec_by_name("Titanic").unwrap().imbalanced);
    }

    #[test]
    fn outlier_datasets_have_extreme_cells() {
        for name in ["EEG", "Sensor", "Credit", "Airbnb"] {
            let ds = generate(spec_by_name(name).unwrap(), 5);
            let mut extremes = 0usize;
            for c in ds.clean_cells.schema().numeric_feature_indices() {
                let clean_col = ds.clean_cells.column(c).unwrap();
                let mean = cleanml_dataset::stats::mean(clean_col).unwrap();
                let std = cleanml_dataset::stats::std_dev(clean_col).unwrap();
                let dirty_col = ds.dirty.column(c).unwrap();
                for r in 0..ds.dirty.n_rows() {
                    if let Some(v) = dirty_col.num(r) {
                        if (v - mean).abs() > 4.0 * std {
                            extremes += 1;
                        }
                    }
                }
            }
            assert!(extremes > 3, "{name}: {extremes} extremes");
        }
    }

    #[test]
    fn inconsistency_datasets_have_variant_spellings() {
        for name in ["Movie", "Company", "Restaurant", "University"] {
            let ds = generate(spec_by_name(name).unwrap(), 6);
            // dirty has strictly more distinct spellings than truth in at
            // least one categorical feature column
            let mut found = false;
            for c in ds.dirty.schema().categorical_feature_indices() {
                let dirty_distinct = ds
                    .dirty
                    .column(c)
                    .unwrap()
                    .category_counts()
                    .iter()
                    .filter(|&&n| n > 0)
                    .count();
                let clean_distinct = ds
                    .clean_cells
                    .column(c)
                    .unwrap()
                    .category_counts()
                    .iter()
                    .filter(|&&n| n > 0)
                    .count();
                if dirty_distinct > clean_distinct {
                    found = true;
                }
            }
            assert!(found, "{name} has no injected inconsistencies");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(spec_by_name("NotADataset").is_none());
    }
}
