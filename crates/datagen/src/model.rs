//! The parameterized generative base model behind every dataset stand-in.
//!
//! Each dataset is an instance of the same family: numeric features drawn
//! from per-feature Gaussians (optionally correlated with a latent factor),
//! categorical features drawn from skewed distributions, and a binary label
//! produced by thresholding a noisy linear latent score. The per-dataset
//! *personality* — feature names, effect sizes, noise level, class balance,
//! entity-text columns — lives in [`crate::registry`].

use cleanml_dataset::{ColumnKind, ColumnRole, FieldMeta, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A numeric feature's generator parameters.
#[derive(Debug, Clone)]
pub struct NumFeat {
    pub name: &'static str,
    pub mean: f64,
    pub std: f64,
    /// Contribution of the standardized value to the label's latent score.
    pub effect: f64,
    /// Weight of the shared latent factor (induces inter-feature
    /// correlation, which HoloClean-style imputation exploits).
    pub factor_loading: f64,
}

/// A categorical feature's generator parameters.
#[derive(Debug, Clone)]
pub struct CatFeat {
    pub name: &'static str,
    /// Category labels with sampling weights and latent-score effects.
    pub categories: Vec<(&'static str, f64, f64)>,
}

/// An entity-text column (used by duplicate / inconsistency injection).
///
/// Key and carried (`Ignore`) text columns get a row-unique numeric suffix
/// ("Golden Dragon Diner 137"): real-world identifying attributes — names,
/// addresses, phone numbers — are *supposed* to be unique per entity (paper
/// §III-B3), so two distinct entities must not collide by construction —
/// only injected duplicates share or nearly share them.
#[derive(Debug, Clone)]
pub struct TextCol {
    pub name: &'static str,
    /// Role in the schema — `Key` makes it the key-collision attribute.
    pub role: ColumnRole,
    /// Word pools combined into names like "Golden Dragon Diner".
    pub word_pools: Vec<Vec<&'static str>>,
}

/// Complete generator configuration for one dataset's clean core.
#[derive(Debug, Clone)]
pub struct BaseModel {
    pub n_rows: usize,
    pub numeric: Vec<NumFeat>,
    pub categorical: Vec<CatFeat>,
    pub text: Vec<TextCol>,
    /// Label column values `(negative, positive)`.
    pub label_names: (&'static str, &'static str),
    /// Gaussian noise added to the latent score (task difficulty).
    pub label_noise: f64,
    /// Latent-score shift: positive values shrink the positive class
    /// (class imbalance).
    pub label_shift: f64,
}

/// Standard normal sample via Box–Muller.
pub fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Weighted choice over `(value, weight, effect)` triples; returns the index.
fn weighted_choice(rng: &mut StdRng, cats: &[(&'static str, f64, f64)]) -> usize {
    let total: f64 = cats.iter().map(|c| c.1).sum();
    let mut x = rng.random::<f64>() * total;
    for (i, c) in cats.iter().enumerate() {
        x -= c.1;
        if x <= 0.0 {
            return i;
        }
    }
    cats.len() - 1
}

impl BaseModel {
    /// The schema this model generates (features + text + label).
    pub fn schema(&self) -> Schema {
        let mut fields = Vec::new();
        for t in &self.text {
            fields.push(FieldMeta::new(t.name, ColumnKind::Categorical, t.role));
        }
        for f in &self.numeric {
            fields.push(FieldMeta::num_feature(f.name));
        }
        for c in &self.categorical {
            fields.push(FieldMeta::cat_feature(c.name));
        }
        fields.push(FieldMeta::label("label"));
        Schema::new(fields)
    }

    /// Generates the clean table.
    pub fn generate(&self, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = self.schema();
        let mut table = Table::with_capacity(schema, self.n_rows);

        for row_idx in 0..self.n_rows {
            let mut row: Vec<Value> = Vec::with_capacity(table.n_columns());
            let mut score = 0.0;

            // Entity text: composed from the word pools; key columns carry a
            // row-unique suffix so distinct entities never collide.
            for t in &self.text {
                let mut name = String::new();
                for pool in &t.word_pools {
                    if !name.is_empty() {
                        name.push(' ');
                    }
                    name.push_str(pool[rng.random_range(0..pool.len())]);
                }
                if matches!(t.role, ColumnRole::Key | ColumnRole::Ignore) {
                    name.push_str(&format!(" {}", 100 + row_idx));
                }
                row.push(Value::Str(name));
            }

            // Numerics: shared latent factor + independent noise.
            let factor = randn(&mut rng);
            for f in &self.numeric {
                let z = f.factor_loading * factor
                    + (1.0 - f.factor_loading.abs()).max(0.0).sqrt() * randn(&mut rng);
                let x = f.mean + f.std * z;
                score += f.effect * z;
                row.push(Value::Num(x));
            }

            // Categoricals.
            for c in &self.categorical {
                let i = weighted_choice(&mut rng, &c.categories);
                score += c.categories[i].2;
                row.push(Value::Str(c.categories[i].0.to_owned()));
            }

            score += self.label_noise * randn(&mut rng) - self.label_shift;
            let label = if score > 0.0 { self.label_names.1 } else { self.label_names.0 };
            row.push(Value::Str(label.to_owned()));

            table.push_row(row).expect("generated row matches schema");
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> BaseModel {
        BaseModel {
            n_rows: 200,
            numeric: vec![
                NumFeat { name: "x1", mean: 10.0, std: 2.0, effect: 1.5, factor_loading: 0.7 },
                NumFeat { name: "x2", mean: -5.0, std: 1.0, effect: -1.0, factor_loading: 0.7 },
            ],
            categorical: vec![CatFeat {
                name: "grp",
                categories: vec![("a", 3.0, 0.8), ("b", 1.0, -0.8)],
            }],
            text: vec![TextCol {
                name: "name",
                role: ColumnRole::Key,
                word_pools: vec![vec!["Golden", "Red"], vec!["Dragon", "Lotus"]],
            }],
            label_names: ("no", "yes"),
            label_noise: 0.5,
            label_shift: 0.0,
        }
    }

    #[test]
    fn schema_layout() {
        let m = tiny_model();
        let s = m.schema();
        assert_eq!(s.len(), 5);
        assert_eq!(s.key_indices(), vec![0]);
        assert_eq!(s.label_index().unwrap(), 4);
        assert_eq!(s.numeric_feature_indices(), vec![1, 2]);
    }

    #[test]
    fn generates_requested_rows_without_missing() {
        let m = tiny_model();
        let t = m.generate(1);
        assert_eq!(t.n_rows(), 200);
        assert_eq!(t.n_missing_cells(), 0);
    }

    #[test]
    fn deterministic_by_seed() {
        let m = tiny_model();
        assert_eq!(m.generate(5), m.generate(5));
        assert_ne!(m.generate(5), m.generate(6));
    }

    #[test]
    fn both_classes_present_and_learnable_signal() {
        let m = tiny_model();
        let t = m.generate(2);
        let counts = t.class_counts().unwrap();
        assert_eq!(counts.len(), 2);
        for (_, n) in counts {
            assert!(n > 20, "severely degenerate class balance");
        }
    }

    #[test]
    fn label_shift_skews_classes() {
        let mut m = tiny_model();
        m.label_shift = 2.0;
        let t = m.generate(3);
        let counts = t.class_counts().unwrap();
        let max = counts.iter().map(|&(_, n)| n).max().unwrap();
        assert!(max as f64 > 0.75 * t.n_rows() as f64, "shift should imbalance");
    }

    #[test]
    fn numeric_moments_roughly_match() {
        let m = tiny_model();
        let t = m.generate(4);
        let col = t.column_by_name("x1").unwrap();
        let mean = cleanml_dataset::stats::mean(col).unwrap();
        let std = cleanml_dataset::stats::std_dev(col).unwrap();
        assert!((mean - 10.0).abs() < 0.6, "mean {mean}");
        assert!((std - 2.0).abs() < 0.5, "std {std}");
    }

    #[test]
    fn correlated_features() {
        // factor_loading 0.7 on both features -> correlation ~0.49
        let m = tiny_model();
        let t = m.generate(7);
        let a = t.column_by_name("x1").unwrap().numeric_values();
        let b = t.column_by_name("x2").unwrap().numeric_values();
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(&b).map(|(x, y)| (x - ma) * (y - mb)).sum::<f64>() / n;
        let sa = (a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n).sqrt();
        let sb = (b.iter().map(|x| (x - mb) * (x - mb)).sum::<f64>() / n).sqrt();
        let r = cov / (sa * sb);
        assert!(r > 0.25, "expected correlated features, r={r}");
    }
}
