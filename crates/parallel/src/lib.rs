//! # cleanml-parallel
//!
//! The nested data-parallelism *bridge* between compute kernels and
//! whatever thread pool hosts them.
//!
//! Kernels (random-forest tree fitting, GBDT split search, the O(n²)
//! duplicate/outlier sweeps) are pure functions over an index range. They
//! call [`run_indexed`] — "run `f(i)` for `i in 0..n` and give me the
//! results in order" — and stay completely ignorant of threads. The
//! *host* decides what that means:
//!
//! * No bridge installed (unit tests, the serial reference path, remote
//!   workers, a 1-worker pool): `run_indexed` is a plain serial loop with
//!   zero overhead beyond the closure calls.
//! * A [`SubworkBridge`] installed on the thread (the engine's resident
//!   pool installs one on every worker): the bridge fans the indices out
//!   to idle helper threads while the *calling* thread keeps claiming
//!   indices itself, so the call always makes progress even with zero
//!   helpers and never parks a claimed task lease.
//!
//! ## Determinism contract
//!
//! Results are collected into slot `i` regardless of which thread ran
//! `f(i)`, so the returned `Vec` is byte-identical to the serial loop for
//! any worker count — the engine's core invariant (R1–R3 CSVs never
//! depend on parallelism) extends through nested subwork. Kernels must
//! keep `f(i)` a pure function of `i` (derive per-index RNG streams from
//! a base seed, never share a mutable RNG across indices).
//!
//! Nested calls (an `f(i)` that itself calls [`run_indexed`]) run serially
//! inline: one level of fan-out is where the parallelism profit is, and
//! inlining the rest makes re-entrant deadlocks unrepresentable.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A host-provided executor for indexed subwork. `run` must invoke
/// `work(i)` exactly once for every `i in 0..n` (on any threads it likes)
/// and must not return before all `n` invocations have completed.
pub trait SubworkBridge: Send + Sync {
    fn run(&self, n: usize, work: &(dyn Fn(usize) + Sync));
}

thread_local! {
    static BRIDGE: Cell<Option<&'static dyn SubworkBridge>> = const { Cell::new(None) };
    /// Set while this thread is inside a `run_indexed` item or drive loop;
    /// nested calls see it and stay serial.
    static IN_SUBWORK: Cell<bool> = const { Cell::new(false) };
}

/// Installs `bridge` as this thread's subwork executor for the thread's
/// lifetime. The bridge is leaked into `'static` — hosts install one
/// long-lived bridge per worker thread at spawn, not one per task.
pub fn install_bridge(bridge: Arc<dyn SubworkBridge>) {
    let leaked: &'static Arc<dyn SubworkBridge> = Box::leak(Box::new(bridge));
    BRIDGE.with(|b| b.set(Some(&**leaked)));
}

/// Removes this thread's bridge (tests; worker threads normally keep
/// theirs until exit).
pub fn clear_bridge() {
    BRIDGE.with(|b| b.set(None));
}

/// Marks this thread as executing subwork for the duration of `f`:
/// `run_indexed` calls made inside run serially inline.
pub fn enter_subwork<R>(f: impl FnOnce() -> R) -> R {
    IN_SUBWORK.with(|flag| {
        let was = flag.replace(true);
        let out = f();
        flag.set(was);
        out
    })
}

/// Runs `f(i)` for every `i in 0..n` and returns the results in index
/// order. Fans out through the thread's installed [`SubworkBridge`] when
/// one exists and the call is not already nested subwork; otherwise a
/// serial loop. Panics in `f` propagate to the caller in both modes.
pub fn run_indexed<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let bridge = BRIDGE.with(|b| b.get());
    let nested = IN_SUBWORK.with(|flag| flag.get());
    match bridge {
        Some(bridge) if !nested && n > 1 => {
            let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let work = |i: usize| {
                let out = enter_subwork(|| f(i));
                *slots[i].lock().expect("subwork slot") = Some(out);
            };
            bridge.run(n, &work);
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("subwork slot").expect("bridge ran every index"))
                .collect()
        }
        _ => (0..n).map(f).collect(),
    }
}

/// Splits `0..n` into at most `max_chunks` contiguous ranges of
/// near-equal length (the leading `n % k` ranges are one longer). Empty
/// input yields no ranges. The canonical way to batch a long sweep before
/// [`run_indexed`]: per-chunk closures amortize the per-index dispatch.
pub fn chunk_ranges(n: usize, max_chunks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || max_chunks == 0 {
        return Vec::new();
    }
    let k = max_chunks.min(n);
    let (base, extra) = (n / k, n % k);
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A self-contained bridge that runs subwork on `helpers` freshly spawned
/// threads per call (the caller drives too). Not for production hot paths
/// — the engine's pool bridges onto its resident workers — but exactly
/// what byte-identity tests need: a real multi-thread execution of the
/// kernels without standing infrastructure.
pub struct ThreadBridge {
    pub helpers: usize,
}

impl SubworkBridge for ThreadBridge {
    fn run(&self, n: usize, work: &(dyn Fn(usize) + Sync)) {
        let next = AtomicUsize::new(0);
        let drive = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            work(i);
        };
        std::thread::scope(|scope| {
            for _ in 0..self.helpers {
                scope.spawn(drive);
            }
            drive();
        });
    }
}

/// Shared claim/completion counters for one batch of indexed subwork —
/// the building block pool-hosted bridges coordinate on. `claim` hands
/// out indices; `complete` tallies finished ones; `is_done` flips once
/// every index has completed.
pub struct BatchCounters {
    n: usize,
    next: AtomicUsize,
    done: AtomicUsize,
}

impl BatchCounters {
    pub fn new(n: usize) -> Self {
        BatchCounters { n, next: AtomicUsize::new(0), done: AtomicUsize::new(0) }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Claims the next unclaimed index, or `None` when all are claimed.
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.n).then_some(i)
    }

    /// Whether every index has been claimed (not necessarily completed).
    pub fn fully_claimed(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }

    /// Records one completed index; returns true if it was the last.
    pub fn complete(&self) -> bool {
        self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n
    }

    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.n
    }
}

/// A tiny parker: waiters sleep until `notify_all` after a state change.
/// Pool bridges pair it with [`BatchCounters`] so a caller can sleep out
/// the tail of a batch its helpers are still finishing.
#[derive(Default)]
pub struct Parker {
    lock: Mutex<u64>,
    cv: Condvar,
}

impl Parker {
    /// Blocks until `cond` holds, re-checking after every notification
    /// (and a timeout heartbeat, so a missed wakeup degrades to latency,
    /// never deadlock).
    pub fn wait_until(&self, cond: impl Fn() -> bool) {
        let mut epoch = self.lock.lock().expect("parker lock");
        while !cond() {
            let (e, _) = self
                .cv
                .wait_timeout(epoch, std::time::Duration::from_millis(10))
                .expect("parker wait");
            epoch = e;
        }
    }

    pub fn notify_all(&self) {
        let mut epoch = self.lock.lock().expect("parker lock");
        *epoch = epoch.wrapping_add(1);
        drop(epoch);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_without_bridge() {
        let out = run_indexed(5, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
        assert_eq!(run_indexed(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn thread_bridge_matches_serial_order() {
        let serial: Vec<u64> = run_indexed(97, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        install_bridge(Arc::new(ThreadBridge { helpers: 3 }));
        let parallel: Vec<u64> = run_indexed(97, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        clear_bridge();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_calls_run_inline() {
        install_bridge(Arc::new(ThreadBridge { helpers: 2 }));
        let out = run_indexed(4, |i| run_indexed(3, move |j| i * 10 + j));
        clear_bridge();
        assert_eq!(out[2], vec![20, 21, 22]);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (n, k) in [(10, 3), (3, 10), (1, 1), (0, 4), (16, 4), (7, 1)] {
            let ranges = chunk_ranges(n, k);
            let mut covered = 0;
            for (i, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "contiguous at {i}");
                covered = r.end;
            }
            assert_eq!(covered, n, "n={n} k={k}");
            if n > 0 {
                assert!(ranges.len() <= k.min(n));
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
            }
        }
    }

    #[test]
    fn batch_counters_protocol() {
        let b = BatchCounters::new(3);
        assert_eq!(b.claim(), Some(0));
        assert_eq!(b.claim(), Some(1));
        assert!(!b.fully_claimed());
        assert_eq!(b.claim(), Some(2));
        assert!(b.fully_claimed());
        assert_eq!(b.claim(), None);
        assert!(!b.complete());
        assert!(!b.complete());
        assert!(!b.is_done());
        assert!(b.complete(), "last completion reports done");
        assert!(b.is_done());
    }

    #[test]
    fn parker_wakes_waiter() {
        let parker = Arc::new(Parker::default());
        let flag = Arc::new(AtomicUsize::new(0));
        let (p2, f2) = (Arc::clone(&parker), Arc::clone(&flag));
        let t = std::thread::spawn(move || {
            p2.wait_until(|| f2.load(Ordering::Acquire) == 1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        flag.store(1, Ordering::Release);
        parker.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn panics_propagate_through_bridge() {
        install_bridge(Arc::new(ThreadBridge { helpers: 1 }));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_indexed(4, |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        }));
        clear_bridge();
        assert!(caught.is_err());
    }
}
