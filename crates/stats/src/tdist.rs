//! Student-t distribution built on the incomplete beta function.

use crate::special::betainc;

/// CDF of the Student-t distribution with `df` degrees of freedom,
/// `P(T <= t)`.
///
/// Uses the identity `P(T <= t) = 1 - I_{ν/(ν+t²)}(ν/2, 1/2) / 2` for
/// `t >= 0` and symmetry for `t < 0`.
///
/// # Panics
/// Panics if `df <= 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    if t.is_nan() {
        return f64::NAN;
    }
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * betainc(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Survival function `P(T >= t)`.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    1.0 - student_t_cdf(t, df)
}

/// Two-sided p-value `P(|T| >= |t|)`.
pub fn student_t_two_sided(t: f64, df: f64) -> f64 {
    if t.is_nan() {
        return f64::NAN;
    }
    (2.0 * student_t_sf(t.abs(), df)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from scipy.stats.t.cdf.
    #[test]
    fn cdf_reference_values() {
        let cases = [
            // (t, df, expected cdf)
            (0.0, 5.0, 0.5),
            (1.0, 1.0, 0.75),
            (2.0, 10.0, 0.963_305_680_8),
            (-2.0, 10.0, 0.036_694_319_2),
            (1.812_461, 10.0, 0.95), // t_{0.95,10}
            (2.570_582, 5.0, 0.975), // t_{0.975,5}
            (1.644_854, 1e6, 0.95),  // approaches normal for large df
        ];
        for (t, df, want) in cases {
            let got = student_t_cdf(t, df);
            assert!((got - want).abs() < 1e-6, "cdf({t},{df}) = {got}, want {want}");
        }
    }

    #[test]
    fn symmetry() {
        for &t in &[0.5, 1.3, 2.7, 4.4] {
            for &df in &[1.0, 4.0, 19.0, 120.0] {
                let a = student_t_cdf(t, df);
                let b = student_t_cdf(-t, df);
                assert!((a + b - 1.0).abs() < 1e-12, "t={t} df={df}");
            }
        }
    }

    #[test]
    fn two_sided_matches_tails() {
        let t = 2.2;
        let df = 19.0;
        let p = student_t_two_sided(t, df);
        let manual = student_t_sf(t, df) + student_t_cdf(-t, df);
        assert!((p - manual).abs() < 1e-12);
        // one-tailed p is exactly half of two-tailed (symmetric distribution,
        // the property the paper's three-test procedure relies on, §IV-B)
        assert!((student_t_sf(t, df) - p / 2.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_t_saturates() {
        assert!(student_t_cdf(60.0, 19.0) > 1.0 - 1e-12);
        assert!(student_t_cdf(-60.0, 19.0) < 1e-12);
        assert!(student_t_two_sided(1e3, 19.0) >= 0.0);
    }

    #[test]
    fn monotone_in_t() {
        let df = 7.0;
        let mut prev = 0.0;
        for i in -50..=50 {
            let t = i as f64 / 5.0;
            let c = student_t_cdf(t, df);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn rejects_bad_df() {
        student_t_cdf(1.0, 0.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(student_t_cdf(f64::NAN, 5.0).is_nan());
        assert!(student_t_two_sided(f64::NAN, 5.0).is_nan());
    }
}
