//! The paired-sample t-test, run three ways.
//!
//! CleanML compares a metric measured *after* cleaning with the same metric
//! *before* cleaning on the same 20 train/test splits (paper §IV-B).
//! Because the observations are paired, the test statistic is computed on
//! the per-split differences `d_i = after_i - before_i`:
//!
//! ```text
//! t = mean(d) / (std(d) / sqrt(n))          with df = n - 1
//! ```
//!
//! Three hypotheses are tested simultaneously:
//!
//! | test        | null            | alternative       | p-value  |
//! |-------------|-----------------|-------------------|----------|
//! | two-tailed  | `µ_d = 0`       | `µ_d ≠ 0`         | `p0`     |
//! | upper-tailed| `µ_d ≤ 0`       | `µ_d > 0`         | `p1`     |
//! | lower-tailed| `µ_d ≥ 0`       | `µ_d < 0`         | `p2`     |
//!
//! The paper's flag rule consumes all three (see [`crate::flag`]).

use crate::descriptive;
use crate::tdist::{student_t_cdf, student_t_sf, student_t_two_sided};
use std::fmt;

/// Result of a paired-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedTTest {
    /// Number of pairs.
    pub n: usize,
    /// Mean of the differences (`after - before`).
    pub mean_diff: f64,
    /// t statistic; `±∞` when the differences have zero variance but a
    /// nonzero mean (an exactly-constant improvement/regression).
    pub t_stat: f64,
    /// Degrees of freedom (`n - 1`).
    pub df: f64,
    /// Two-tailed p-value (`H0: µ_d = 0`).
    pub p_two: f64,
    /// Upper-tailed p-value (`H0: µ_d ≤ 0`).
    pub p_upper: f64,
    /// Lower-tailed p-value (`H0: µ_d ≥ 0`).
    pub p_lower: f64,
}

/// Errors from [`paired_t_test`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TTestError {
    /// Fewer than two pairs — the t statistic is undefined.
    TooFewPairs(usize),
    /// The two samples have different lengths and cannot be paired.
    LengthMismatch { after: usize, before: usize },
    /// A non-finite metric value was supplied.
    NonFinite,
}

impl fmt::Display for TTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TTestError::TooFewPairs(n) => write!(f, "paired t-test needs >= 2 pairs, got {n}"),
            TTestError::LengthMismatch { after, before } => {
                write!(f, "cannot pair samples of length {after} and {before}")
            }
            TTestError::NonFinite => write!(f, "samples contain non-finite values"),
        }
    }
}

impl std::error::Error for TTestError {}

/// Runs the paired-sample t-test on `(after, before)` pairs.
///
/// Degenerate zero-variance cases are resolved deterministically rather than
/// erroring, because they do occur in practice (e.g. a cleaning method that
/// changes nothing, so every difference is exactly 0.0):
///
/// * all differences zero → `t = 0`, `p0 = 1`, `p1 = p2 = 1` (clearly
///   insignificant);
/// * constant nonzero difference → `t = ±∞`, the p-values saturate at 0/1 in
///   the direction of the difference (an exactly reproducible effect).
pub fn paired_t_test(after: &[f64], before: &[f64]) -> Result<PairedTTest, TTestError> {
    if after.len() != before.len() {
        return Err(TTestError::LengthMismatch { after: after.len(), before: before.len() });
    }
    if after.len() < 2 {
        return Err(TTestError::TooFewPairs(after.len()));
    }
    if after.iter().chain(before.iter()).any(|x| !x.is_finite()) {
        return Err(TTestError::NonFinite);
    }

    let diffs: Vec<f64> = after.iter().zip(before).map(|(a, b)| a - b).collect();
    let n = diffs.len();
    let df = (n - 1) as f64;
    let mean_diff = descriptive::mean(&diffs).expect("n >= 2");
    let sd = descriptive::sample_std(&diffs).expect("n >= 2");

    if sd == 0.0 {
        return Ok(if mean_diff == 0.0 {
            PairedTTest { n, mean_diff, t_stat: 0.0, df, p_two: 1.0, p_upper: 1.0, p_lower: 1.0 }
        } else if mean_diff > 0.0 {
            PairedTTest {
                n,
                mean_diff,
                t_stat: f64::INFINITY,
                df,
                p_two: 0.0,
                p_upper: 0.0,
                p_lower: 1.0,
            }
        } else {
            PairedTTest {
                n,
                mean_diff,
                t_stat: f64::NEG_INFINITY,
                df,
                p_two: 0.0,
                p_upper: 1.0,
                p_lower: 0.0,
            }
        });
    }

    let t = mean_diff / (sd / (n as f64).sqrt());
    Ok(PairedTTest {
        n,
        mean_diff,
        t_stat: t,
        df,
        p_two: student_t_two_sided(t, df),
        p_upper: student_t_sf(t, df),
        p_lower: student_t_cdf(t, df),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_improvement_detected() {
        // Paper Table 10 style: D clearly above B.
        let before = [0.632, 0.631, 0.634, 0.638, 0.629, 0.632, 0.630, 0.635];
        let after = [0.657, 0.674, 0.668, 0.676, 0.669, 0.668, 0.671, 0.660];
        let t = paired_t_test(&after, &before).unwrap();
        assert!(t.mean_diff > 0.0);
        assert!(t.p_two < 1e-4);
        assert!(t.p_upper < 1e-4);
        assert!(t.p_lower > 0.999);
        // symmetric distribution: one-tailed = half of two-tailed
        assert!((t.p_upper - t.p_two / 2.0).abs() < 1e-12);
    }

    #[test]
    fn swapping_sides_negates() {
        let a = [1.0, 2.0, 3.5, 2.2, 1.9];
        let b = [0.5, 2.5, 3.0, 1.0, 1.5];
        let ab = paired_t_test(&a, &b).unwrap();
        let ba = paired_t_test(&b, &a).unwrap();
        assert!((ab.t_stat + ba.t_stat).abs() < 1e-12);
        assert!((ab.p_two - ba.p_two).abs() < 1e-12);
        assert!((ab.p_upper - ba.p_lower).abs() < 1e-12);
        assert!((ab.p_lower - ba.p_upper).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_statistic() {
        // diffs = [0.2, 0.1, 0.5, -0.5, 0.3]; mean = 0.12;
        // sample sd = sqrt(0.568/4); t = 0.12 / (sd/sqrt(5)).
        let after = [1.2, 2.1, 3.0, 2.4, 1.8];
        let before = [1.0, 2.0, 2.5, 2.9, 1.5];
        let t = paired_t_test(&after, &before).unwrap();
        let sd = (0.568f64 / 4.0).sqrt();
        let expect = 0.12 / (sd / 5f64.sqrt());
        assert!((t.t_stat - expect).abs() < 1e-10, "t={}", t.t_stat);
        assert_eq!(t.df, 4.0);
        assert!(t.p_two > 0.4 && t.p_two < 0.6, "p={}", t.p_two);
    }

    #[test]
    fn cauchy_case_df1() {
        // With n = 2, df = 1, the t distribution is Cauchy:
        // p_two = 1 - (2/pi) atan(|t|). diffs = [1, 2] -> t = 3 exactly.
        let after = [1.0, 2.0];
        let before = [0.0, 0.0];
        let t = paired_t_test(&after, &before).unwrap();
        assert!((t.t_stat - 3.0).abs() < 1e-12);
        let expect = 1.0 - 2.0 / std::f64::consts::PI * 3f64.atan();
        assert!((t.p_two - expect).abs() < 1e-10, "p={} want {expect}", t.p_two);
    }

    #[test]
    fn zero_variance_zero_mean() {
        let xs = [0.5, 0.6, 0.7];
        let t = paired_t_test(&xs, &xs).unwrap();
        assert_eq!(t.t_stat, 0.0);
        assert_eq!(t.p_two, 1.0);
    }

    #[test]
    fn zero_variance_constant_shift() {
        // Values chosen to be exact in binary so the differences are exactly
        // constant (0.5 each).
        let before = [1.0, 2.0, 3.0];
        let after = [1.5, 2.5, 3.5];
        let t = paired_t_test(&after, &before).unwrap();
        assert!(t.t_stat.is_infinite() && t.t_stat > 0.0);
        assert_eq!(t.p_two, 0.0);
        assert_eq!(t.p_upper, 0.0);
        assert_eq!(t.p_lower, 1.0);

        let t = paired_t_test(&before, &after).unwrap();
        assert!(t.t_stat.is_infinite() && t.t_stat < 0.0);
        assert_eq!(t.p_lower, 0.0);
    }

    #[test]
    fn errors() {
        assert_eq!(paired_t_test(&[1.0], &[1.0]), Err(TTestError::TooFewPairs(1)));
        assert_eq!(
            paired_t_test(&[1.0, 2.0], &[1.0]),
            Err(TTestError::LengthMismatch { after: 2, before: 1 })
        );
        assert_eq!(paired_t_test(&[1.0, f64::NAN], &[1.0, 2.0]), Err(TTestError::NonFinite));
    }
}
