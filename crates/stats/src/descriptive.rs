//! Small slice statistics used by the t-test and analyses.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased (n-1) sample variance; `None` with fewer than two values.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Unbiased sample standard deviation; `None` with fewer than two values.
pub fn sample_std(xs: &[f64]) -> Option<f64> {
    sample_variance(xs).map(f64::sqrt)
}

/// Standard error of the mean; `None` with fewer than two values.
pub fn standard_error(xs: &[f64]) -> Option<f64> {
    sample_std(xs).map(|s| s / (xs.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_unbiased() {
        // sample variance of [2,4,4,4,5,5,7,9] is 32/7
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(sample_variance(&[1.0]), None);
    }

    #[test]
    fn std_and_sem() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let sd = sample_std(&xs).unwrap();
        assert!((sd * sd - sample_variance(&xs).unwrap()).abs() < 1e-12);
        assert!((standard_error(&xs).unwrap() - sd / 2.0).abs() < 1e-12);
    }
}
