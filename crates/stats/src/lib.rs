//! # cleanml-stats
//!
//! Statistical machinery for the CleanML study (paper §IV-B and §IV-C):
//!
//! * [`special`] — log-gamma and the regularized incomplete beta function,
//!   implemented from scratch (Lanczos approximation + Lentz continued
//!   fraction).
//! * [`tdist`] — Student-t distribution CDF/survival/two-sided p-values
//!   built on [`special`].
//! * [`ttest`] — the paired-sample t-test run three ways (two-tailed,
//!   upper-tailed, lower-tailed), exactly as the paper uses it to compare 20
//!   before/after-cleaning metric pairs.
//! * [`flag`] — the paper's three-valued outcome: **P**ositive,
//!   **N**egative, or in**S**ignificant, derived from the three p-values at a
//!   significance level α.
//! * [`fdr`] — multiple-hypothesis-testing corrections: Bonferroni,
//!   Benjamini–Hochberg, and the Benjamini–Yekutieli procedure the paper
//!   applies per relation (valid under arbitrary dependence).
//! * [`descriptive`] — small slice statistics helpers.
//!
//! ```
//! use cleanml_stats::{paired_t_test, Flag, flag_from_tests, ALPHA};
//!
//! let before = [0.632, 0.631, 0.634, 0.638, 0.629, 0.632];
//! let after  = [0.657, 0.674, 0.668, 0.676, 0.669, 0.668];
//! let t = paired_t_test(&after, &before).unwrap();
//! assert_eq!(flag_from_tests(&t, ALPHA), Flag::Positive);
//! ```

pub mod descriptive;
pub mod fdr;
pub mod flag;
pub mod special;
pub mod tdist;
pub mod ttest;

pub use fdr::{benjamini_hochberg, benjamini_yekutieli, bonferroni, Correction};
pub use flag::{flag_from_pvalues, flag_from_tests, Flag};
pub use ttest::{paired_t_test, PairedTTest, TTestError};

/// The significance level used throughout the paper.
pub const ALPHA: f64 = 0.05;
