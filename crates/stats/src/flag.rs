//! The paper's three-valued experiment outcome.
//!
//! CleanML summarizes every experiment with a flag (paper §III-A):
//! **P** — cleaning had a statistically significant positive impact,
//! **N** — significant negative impact, **S** — insignificant. The flag is
//! derived from the three paired t-tests (§IV-B):
//!
//! 1. `p0 >= α` → **S**
//! 2. `p0 < α && p1 < α` → **P**
//! 3. `p0 < α && p2 < α` → **N**
//!
//! Because the t distribution is symmetric, a significant two-tailed test
//! guarantees that exactly one of the one-tailed tests is significant, so the
//! three rules are exhaustive.

use crate::ttest::PairedTTest;
use std::fmt;

/// Impact of cleaning on model performance for one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Flag {
    /// Cleaning significantly improved the metric.
    Positive,
    /// No significant difference.
    Insignificant,
    /// Cleaning significantly degraded the metric.
    Negative,
}

impl Flag {
    /// Single-letter form used in the paper's tables.
    pub fn letter(self) -> char {
        match self {
            Flag::Positive => 'P',
            Flag::Insignificant => 'S',
            Flag::Negative => 'N',
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Derives the flag from the three p-values at significance level `alpha`.
pub fn flag_from_pvalues(p_two: f64, p_upper: f64, p_lower: f64, alpha: f64) -> Flag {
    if p_two >= alpha {
        Flag::Insignificant
    } else if p_upper < alpha {
        Flag::Positive
    } else if p_lower < alpha {
        Flag::Negative
    } else {
        // Unreachable for a symmetric test statistic; kept as a safe default
        // so numerical edge cases degrade to "insignificant".
        Flag::Insignificant
    }
}

/// Derives the flag directly from a [`PairedTTest`].
pub fn flag_from_tests(t: &PairedTTest, alpha: f64) -> Flag {
    flag_from_pvalues(t.p_two, t.p_upper, t.p_lower, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ttest::paired_t_test;
    use crate::ALPHA;

    #[test]
    fn rule_table() {
        assert_eq!(flag_from_pvalues(0.20, 0.10, 0.90, ALPHA), Flag::Insignificant);
        assert_eq!(flag_from_pvalues(0.01, 0.005, 0.995, ALPHA), Flag::Positive);
        assert_eq!(flag_from_pvalues(0.01, 0.995, 0.005, ALPHA), Flag::Negative);
        // boundary: p0 == alpha is insignificant (paper uses strict <)
        assert_eq!(flag_from_pvalues(0.05, 0.01, 0.99, ALPHA), Flag::Insignificant);
    }

    #[test]
    fn example_4_2_from_paper() {
        // p0 = 3.82e-17, p1 = 1.91e-17, p2 = 1 -> "P"
        assert_eq!(flag_from_pvalues(3.82e-17, 1.91e-17, 1.0, ALPHA), Flag::Positive);
    }

    #[test]
    fn end_to_end_with_ttest() {
        let before = [0.60, 0.61, 0.62, 0.59, 0.61, 0.60];
        let after = [0.70, 0.72, 0.69, 0.71, 0.73, 0.70];
        let t = paired_t_test(&after, &before).unwrap();
        assert_eq!(flag_from_tests(&t, ALPHA), Flag::Positive);
        let t = paired_t_test(&before, &after).unwrap();
        assert_eq!(flag_from_tests(&t, ALPHA), Flag::Negative);
        let noisy_a = [0.60, 0.72, 0.58, 0.71, 0.61];
        let noisy_b = [0.62, 0.69, 0.60, 0.70, 0.63];
        let t = paired_t_test(&noisy_a, &noisy_b).unwrap();
        assert_eq!(flag_from_tests(&t, ALPHA), Flag::Insignificant);
    }

    #[test]
    fn letters() {
        assert_eq!(Flag::Positive.letter(), 'P');
        assert_eq!(Flag::Insignificant.letter(), 'S');
        assert_eq!(Flag::Negative.letter(), 'N');
        assert_eq!(Flag::Positive.to_string(), "P");
    }
}
