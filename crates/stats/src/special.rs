//! Special functions needed for the Student-t distribution.
//!
//! Implemented from scratch (no external math crates): the Lanczos
//! approximation for `ln Γ(x)` and the regularized incomplete beta function
//! `I_x(a, b)` via the continued-fraction expansion with modified Lentz
//! evaluation — the standard numerical-recipes approach, accurate to well
//! below `1e-10` over the parameter ranges used by t-tests.

/// Lanczos coefficients (g = 7, n = 9), double precision.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (reflection is not needed for t-test parameters).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// Uses the continued fraction of the incomplete beta with the symmetry
/// relation `I_x(a,b) = 1 - I_{1-x}(b,a)` to stay in the rapidly-converging
/// region.
pub fn betainc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc requires a,b > 0 (a={a}, b={b})");
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-14;
    const TINY: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 4.2, 9.9, 25.0] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn betainc_boundaries() {
        assert_eq!(betainc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betainc_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (10.0, 2.5, 0.2)] {
            let lhs = betainc(a, b, x);
            let rhs = 1.0 - betainc(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "({a},{b},{x}): {lhs} vs {rhs}");
        }
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.35, 0.62, 0.99] {
            assert!((betainc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn betainc_half_half() {
        // I_x(1/2,1/2) = (2/pi) asin(sqrt(x))
        for &x in &[0.1f64, 0.5, 0.9] {
            let expected = 2.0 / std::f64::consts::PI * x.sqrt().asin();
            assert!((betainc(0.5, 0.5, x) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn betainc_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = betainc(3.0, 7.0, x);
            assert!(v >= prev, "not monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "a,b > 0")]
    fn betainc_rejects_bad_params() {
        betainc(0.0, 1.0, 0.5);
    }
}
