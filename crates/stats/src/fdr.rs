//! Multiple-hypothesis-testing corrections.
//!
//! CleanML runs thousands of hypothesis tests (3612 in R1 alone) and controls
//! the false discovery rate with the **Benjamini–Yekutieli** procedure
//! (paper §IV-C), which is valid under arbitrary dependence between tests —
//! appropriate because experiments sharing a dataset or cleaning method are
//! correlated. Bonferroni and Benjamini–Hochberg are provided for the
//! ablation benchmarks comparing correction strategies.
//!
//! All procedures take raw p-values and return, per hypothesis, whether it
//! remains significant after correction.

/// Which correction to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Correction {
    /// No correction: reject iff `p < alpha`.
    None,
    /// Bonferroni: reject iff `p < alpha / m`.
    Bonferroni,
    /// Benjamini–Hochberg step-up procedure (independence / PRDS).
    BenjaminiHochberg,
    /// Benjamini–Yekutieli step-up procedure (arbitrary dependence) — the
    /// paper's choice.
    BenjaminiYekutieli,
}

impl Correction {
    /// Applies the correction; see [`apply`].
    pub fn apply(self, p_values: &[f64], alpha: f64) -> Vec<bool> {
        apply(self, p_values, alpha)
    }
}

/// Applies `correction` to `p_values` at level `alpha`, returning a rejection
/// (significance) mask aligned with the input.
pub fn apply(correction: Correction, p_values: &[f64], alpha: f64) -> Vec<bool> {
    match correction {
        Correction::None => p_values.iter().map(|&p| p < alpha).collect(),
        Correction::Bonferroni => bonferroni(p_values, alpha),
        Correction::BenjaminiHochberg => benjamini_hochberg(p_values, alpha),
        Correction::BenjaminiYekutieli => benjamini_yekutieli(p_values, alpha),
    }
}

/// Bonferroni correction: reject iff `p < alpha / m`.
pub fn bonferroni(p_values: &[f64], alpha: f64) -> Vec<bool> {
    let m = p_values.len().max(1) as f64;
    p_values.iter().map(|&p| p < alpha / m).collect()
}

/// Step-up procedure shared by BH and BY.
///
/// Ranks the p-values ascending, finds the largest k with
/// `p_(k) <= k * alpha / (m * c)`, and rejects hypotheses ranked `1..=k`.
/// `c = 1` gives Benjamini–Hochberg; `c = Σ_{i=1}^{m} 1/i` gives
/// Benjamini–Yekutieli.
fn step_up(p_values: &[f64], alpha: f64, c: f64) -> Vec<bool> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order
        .sort_by(|&a, &b| p_values[a].partial_cmp(&p_values[b]).expect("p-values must not be NaN"));

    let mut k_max: Option<usize> = None;
    for (rank0, &idx) in order.iter().enumerate() {
        let k = rank0 + 1;
        let threshold = k as f64 * alpha / (m as f64 * c);
        if p_values[idx] <= threshold {
            k_max = Some(k);
        }
    }

    let mut reject = vec![false; m];
    if let Some(k) = k_max {
        for &idx in &order[..k] {
            reject[idx] = true;
        }
    }
    reject
}

/// Benjamini–Hochberg FDR control (valid under independence / PRDS).
pub fn benjamini_hochberg(p_values: &[f64], alpha: f64) -> Vec<bool> {
    step_up(p_values, alpha, 1.0)
}

/// Benjamini–Yekutieli FDR control (valid under arbitrary dependence).
pub fn benjamini_yekutieli(p_values: &[f64], alpha: f64) -> Vec<bool> {
    let m = p_values.len();
    let c: f64 = (1..=m).map(|i| 1.0 / i as f64).sum();
    step_up(p_values, alpha, c.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = 0.05;

    #[test]
    fn empty_input() {
        for c in [
            Correction::None,
            Correction::Bonferroni,
            Correction::BenjaminiHochberg,
            Correction::BenjaminiYekutieli,
        ] {
            assert!(apply(c, &[], ALPHA).is_empty());
        }
    }

    #[test]
    fn bonferroni_strictness() {
        let ps = [0.004, 0.02, 0.9];
        // alpha/m = 0.05/3 = 0.0167
        assert_eq!(bonferroni(&ps, ALPHA), vec![true, false, false]);
    }

    #[test]
    fn bh_classic_example() {
        // Known worked example: m = 10.
        let ps = [0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205, 0.212, 0.216];
        let r = benjamini_hochberg(&ps, ALPHA);
        // thresholds k*0.005: 0.005,0.010,0.015,0.020,0.025,0.030,...
        // largest k with p_(k) <= threshold is k=2 (0.008 <= 0.010);
        // k=5: 0.042 > 0.025, k=4: 0.041 > 0.020, k=3: 0.039 > 0.015.
        assert_eq!(r, vec![true, true, false, false, false, false, false, false, false, false]);
    }

    #[test]
    fn by_is_more_conservative_than_bh() {
        let ps = [0.001, 0.008, 0.012, 0.039, 0.041];
        let bh: usize = benjamini_hochberg(&ps, ALPHA).iter().filter(|&&b| b).count();
        let by: usize = benjamini_yekutieli(&ps, ALPHA).iter().filter(|&&b| b).count();
        assert!(by <= bh, "BY rejected {by} > BH {bh}");
    }

    #[test]
    fn by_harmonic_factor() {
        // With m=4, c = 1 + 1/2 + 1/3 + 1/4 = 25/12. BY threshold for k=1 is
        // alpha/(4 * 25/12) = 0.05 * 12/100 = 0.006.
        let ps = [0.0059, 0.5, 0.6, 0.7];
        assert_eq!(benjamini_yekutieli(&ps, ALPHA), vec![true, false, false, false]);
        let ps = [0.0061, 0.5, 0.6, 0.7];
        assert_eq!(benjamini_yekutieli(&ps, ALPHA), vec![false, false, false, false]);
    }

    #[test]
    fn step_up_rejects_all_below_kmax_even_out_of_order() {
        // A p-value above its own threshold still gets rejected when a later
        // rank passes (step-up property).
        let ps = [0.04, 0.049, 0.0001, 0.9];
        let r = benjamini_hochberg(&ps, ALPHA);
        // sorted: 0.0001(k1, thr .0125 ok), 0.04(k2, .025 no), 0.049(k3,.0375 no), .9 no
        assert_eq!(r, vec![false, false, true, false]);
    }

    #[test]
    fn all_significant_survive() {
        let ps = [1e-10, 1e-9, 1e-8];
        assert!(benjamini_yekutieli(&ps, ALPHA).iter().all(|&b| b));
        assert!(bonferroni(&ps, ALPHA).iter().all(|&b| b));
    }

    #[test]
    fn none_correction_is_raw_threshold() {
        let ps = [0.04, 0.06];
        assert_eq!(apply(Correction::None, &ps, ALPHA), vec![true, false]);
    }

    #[test]
    fn rejection_counts_ordered_by_strictness() {
        // none >= BH >= BY >= Bonferroni (typical; always true for none>=BH and BH>=BY)
        let ps: Vec<f64> = (1..=40).map(|i| i as f64 * 0.003).collect();
        let count = |c: Correction| apply(c, &ps, ALPHA).iter().filter(|&&b| b).count();
        assert!(count(Correction::None) >= count(Correction::BenjaminiHochberg));
        assert!(count(Correction::BenjaminiHochberg) >= count(Correction::BenjaminiYekutieli));
    }
}
