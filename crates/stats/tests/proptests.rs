//! Property-based tests for the statistical machinery.

use proptest::prelude::*;

use cleanml_stats::special::{betainc, ln_gamma};
use cleanml_stats::tdist::{student_t_cdf, student_t_two_sided};
use cleanml_stats::{benjamini_hochberg, benjamini_yekutieli, paired_t_test};

proptest! {
    /// ln Γ satisfies the recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn lgamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={x}: {lhs} vs {rhs}");
    }

    /// The regularized incomplete beta is a CDF in x: bounded & monotone,
    /// and satisfies the reflection identity.
    #[test]
    fn betainc_cdf_properties(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..1.0) {
        let v = betainc(a, b, x);
        prop_assert!((0.0..=1.0).contains(&v));
        let reflected = 1.0 - betainc(b, a, 1.0 - x);
        prop_assert!((v - reflected).abs() < 1e-9);
        // monotonicity against a slightly larger x
        let x2 = (x + 0.01).min(1.0);
        prop_assert!(betainc(a, b, x2) + 1e-12 >= v);
    }

    /// The t CDF is monotone, symmetric and bounded.
    #[test]
    fn t_cdf_properties(t in -50.0f64..50.0, df in 1.0f64..200.0) {
        let c = student_t_cdf(t, df);
        prop_assert!((0.0..=1.0).contains(&c));
        let sym = student_t_cdf(-t, df);
        prop_assert!((c + sym - 1.0).abs() < 1e-9);
        let c2 = student_t_cdf(t + 0.1, df);
        prop_assert!(c2 + 1e-12 >= c);
        let p = student_t_two_sided(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Shifting `after` strictly up can only push the upper-tail p down.
    #[test]
    fn ttest_monotone_in_shift(
        base in prop::collection::vec(0.3f64..0.7, 4..25),
        shift in 0.001f64..0.2,
    ) {
        let noise: Vec<f64> = base.iter().enumerate().map(|(i, b)| b + (i as f64 * 0.618).sin() * 0.01).collect();
        let t_small = paired_t_test(&noise, &base).expect("t");
        let shifted: Vec<f64> = noise.iter().map(|x| x + shift).collect();
        let t_big = paired_t_test(&shifted, &base).expect("t");
        prop_assert!(t_big.p_upper <= t_small.p_upper + 1e-12);
    }

    /// The step-up procedures reject a prefix of the sorted p-values.
    #[test]
    fn step_up_prefix_property(ps in prop::collection::vec(1e-9f64..1.0, 2..80)) {
        for reject in [benjamini_hochberg(&ps, 0.05), benjamini_yekutieli(&ps, 0.05)] {
            let mut rejected_ps: Vec<f64> =
                ps.iter().zip(&reject).filter(|(_, &r)| r).map(|(p, _)| *p).collect();
            let accepted_min = ps
                .iter()
                .zip(&reject)
                .filter(|(_, &r)| !r)
                .map(|(p, _)| *p)
                .fold(f64::INFINITY, f64::min);
            rejected_ps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            if let Some(&max_rejected) = rejected_ps.last() {
                prop_assert!(max_rejected <= accepted_min,
                    "rejected {max_rejected} above accepted {accepted_min}");
            }
        }
    }
}
