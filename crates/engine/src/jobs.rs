//! Coarse-grained parallelism for the §VII comparison studies.
//!
//! Tables 17–19 and the ablations are not grid-shaped — each row is one
//! self-contained comparison (its own cleaning-method search and model
//! selection) — so instead of decomposing them into the typed DAG they run
//! as independent jobs on a claim-the-next-index worker pool.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `workers` threads, preserving input order
/// in the output.
///
/// A panic in `f` propagates to the caller with its *original* payload:
/// workers catch their own unwind, record the first payload, and the
/// remaining items are abandoned. (A naive scoped-thread version would
/// instead surface the scope's generic "a scoped thread panicked" — or a
/// poisoned-mutex `expect` — and lose the payload entirely.)
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let results: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(out) => {
                        *results[i].lock().expect("result slot") = Some(out);
                    }
                    Err(payload) => {
                        let mut first = panicked.lock().expect("panic slot");
                        if first.is_none() {
                            *first = Some(payload);
                        }
                        // abandon the remaining items so every worker
                        // winds down promptly
                        next.store(items.len(), Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if let Some(payload) = panicked.into_inner().expect("panic slot") {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("every index claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        for workers in [1, 3, 8] {
            let out = parallel_map(&items, workers, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(&[] as &[usize], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_computed_concurrently_but_deterministic() {
        let items: Vec<u64> = (0..32).collect();
        let a = parallel_map(&items, 8, |&x| x.wrapping_mul(0x9E3779B97F4A7C15));
        let b = parallel_map(&items, 2, |&x| x.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(a, b);
    }

    /// The original panic payload must reach the caller — not a poisoned
    /// mutex message, not the scope's generic "a scoped thread panicked".
    #[test]
    fn worker_panic_surfaces_its_original_payload() {
        for workers in [2, 8] {
            let items: Vec<usize> = (0..64).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                parallel_map(&items, workers, |&x| {
                    if x == 7 {
                        panic!("boom at item {x}");
                    }
                    x
                })
            }))
            .expect_err("panicking f must propagate");
            let msg = caught
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("payload must stay downcastable");
            assert_eq!(msg, "boom at item 7");
            assert!(!msg.contains("poisoned"), "poison error leaked: {msg}");
        }
        // &'static str payloads survive too
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&[1, 2, 3], 2, |_| -> usize { std::panic::panic_any("static-str") })
        }))
        .expect_err("panic_any must propagate");
        assert_eq!(caught.downcast_ref::<&str>().copied(), Some("static-str"));
    }
}
