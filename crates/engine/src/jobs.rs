//! Coarse-grained parallelism for the §VII comparison studies.
//!
//! Tables 17–19 and the ablations are not grid-shaped — each row is one
//! self-contained comparison (its own cleaning-method search and model
//! selection) — so instead of decomposing them into the typed DAG they run
//! as independent jobs on a claim-the-next-index worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `workers` threads, preserving input order
/// in the output.
///
/// Panics in `f` propagate after all workers wind down.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                let out = f(&items[i]);
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("every index claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        for workers in [1, 3, 8] {
            let out = parallel_map(&items, workers, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(&[] as &[usize], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_computed_concurrently_but_deterministic() {
        let items: Vec<u64> = (0..32).collect();
        let a = parallel_map(&items, 8, |&x| x.wrapping_mul(0x9E3779B97F4A7C15));
        let b = parallel_map(&items, 2, |&x| x.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(a, b);
    }
}
