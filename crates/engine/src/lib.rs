//! # cleanml-engine
//!
//! The parallel study-execution engine: the layer between the `study`
//! orchestration of `cleanml-core` and the substrates.
//!
//! The serial runner walks datasets and error types in a nested loop and
//! recomputes everything on every invocation. This crate instead
//!
//! 1. **decomposes** a study into a DAG of typed tasks —
//!    `GenerateDataset`, `Context`, `Split`, `Clean(method)`,
//!    `Train(model, variant)`, `Evaluate(cell)`, `Reduce(grid)` — built
//!    from the pure task units of [`cleanml_core::tasks`] ([`graph`]);
//! 2. **schedules** independent tasks across all datasets and error types
//!    on a work-stealing worker pool ([`pool`]);
//! 3. **remembers** finished work in a content-addressed artifact cache —
//!    an in-memory layer that deduplicates shared work inside a run, and an
//!    optional on-disk layer under a run directory that lets repeated or
//!    resumed studies skip every finished training task ([`cache`]);
//! 4. **reports** progress (tasks queued / running / done, cache hits) on
//!    an event channel the `study` binary renders ([`event`]);
//! 5. **distributes** — with `--listen`, remote `cleanml-worker` processes
//!    join over TCP, lease ready tasks and ship artifacts back as CMAF
//!    frames; a worker killed mid-lease costs only its in-flight task
//!    ([`remote`]);
//! 6. **serves** — the [`Engine`] is a resident core: the pool, the warm
//!    memo and the store live as long as the engine, concurrent
//!    submissions ([`Engine::submit_study`], [`Engine::submit_query`])
//!    dedupe into the same in-flight tasks, and the same listener answers
//!    `cleanml-query` clients with rendered CSVs ([`serve`]) *and* plain
//!    HTTP clients through a bounded results gateway — `POST /studies`
//!    to submit, `GET /studies/:id/r1|r2|r3` to filter/order/page rows
//!    ([`remote::http`]);
//! 7. **measures** — every plane feeds a zero-dependency telemetry
//!    registry (counters, gauges, fixed-bucket latency histograms) that
//!    the hub listener exposes as Prometheus text on `GET /metrics`, and
//!    an optional Chrome trace-event span buffer written by
//!    `--trace-out` ([`telemetry`]).
//!
//! Task bodies are deterministic in their explicit seeds, and the relations
//! are assembled in plan order, so a run with any worker count — including
//! the degenerate 1-worker case — produces byte-identical R1/R2/R3
//! relations to [`cleanml_core::run_study`].
//!
//! ```no_run
//! use cleanml_engine::{Engine, EngineConfig};
//! use cleanml_core::{schema::ErrorType, ExperimentConfig};
//!
//! let mut engine = Engine::new(EngineConfig { workers: 8, ..Default::default() });
//! let db = engine
//!     .run_study(&[ErrorType::Outliers], &ExperimentConfig::quick())
//!     .expect("study");
//! println!("{} R1 rows", db.r1.len());
//! ```

pub mod cache;
pub mod event;
pub mod graph;
pub mod jobs;
pub mod pool;
pub mod remote;
pub mod serve;
pub mod study;
pub(crate) mod subwork;
pub mod telemetry;

pub use cache::{ArtifactCache, CacheKey, CacheStats, DiskStore, Retention};
pub use event::{EngineEvent, EventSink, TaskKind};
pub use graph::{TaskGraph, TaskId};
pub use jobs::parallel_map;
pub use pool::{ClassCosts, CostModel, ExecStats, PersistSink, Pool, RunReport, SubmissionHandle};
pub use remote::{
    parse_query, percent_decode, FaultPlan, GatewayBackend, GatewayError, Profile, RemoteHub,
    Request, Select, ServeReport, StudySpec, StudyState, StudyStatus, SubmitSpec, WorkerSummary,
    DEFAULT_LEASE_TIMEOUT,
};
pub use study::{
    build_query_graph, build_study_graph, Artifact, CellQuery, Engine, EngineConfig,
    StudySubmission,
};
pub use telemetry::{HistogramSummary, SlowTask, StatsSnapshot, Telemetry};
