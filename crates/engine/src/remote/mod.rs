//! The remote plane: lease-based workers *and* serving clients over the
//! CMAF wire format, on one listener.
//!
//! The study DAG and the content-addressed artifact plane were built
//! network-shape from the start — a task is a pure function of explicitly
//! seeded inputs, and every artifact with a serial form travels as the
//! same framed, checksummed bytes whether it lands on disk or on a socket.
//! This module cashes that in:
//!
//! * [`proto`] — the binary message codec. The worker conversation
//!   (`Hello`/`Lease`/`Fetch`/`Artifact`/`Done`/`Heartbeat`/`Bye`) and the
//!   serving conversation (`Submit`/`Status`/`ResultCsv`/`Cancel`) are
//!   both CMAF frames over the same primitives;
//! * [`coordinator`] — the [`RemoteHub`] listener plus the resident hub
//!   service that classifies each connection by its first bytes: CMAF
//!   frames open the worker plane (remote workers claim tasks from the
//!   engine's merged ready frontier) or the serving plane (clients create
//!   submissions on the resident core), while an HTTP `GET ` preamble is
//!   routed to [`http`]'s bounded `/metrics` responder — telemetry rides
//!   the same listener;
//! * [`worker`] — the stateless worker session: rebuild the identical
//!   graph from the wire spec, fetch inputs by content address, compute,
//!   ship the artifact back.
//!
//! The correctness contract is the repository's usual one, extended across
//! machines: a study executed by any mix of local threads and remote
//! workers — including workers that die mid-lease — produces relations
//! byte-identical to the serial path. Leases are how faults stay cheap: a
//! worker that goes silent past its deadline forfeits exactly its
//! in-flight task, which re-enters the frontier (heaviest first) for
//! whoever claims it next.

pub mod coordinator;
pub mod http;
pub mod proto;
pub mod worker;

pub use coordinator::{ClientHandler, HttpGateway, RemoteHub, DEFAULT_LEASE_TIMEOUT};
pub use http::{
    parse_query, percent_decode, GatewayBackend, GatewayError, Profile, Select, StudyState,
    StudyStatus, SubmitSpec,
};
pub use proto::{
    leasable, poll_recv, Message, Polled, Request, ServeReport, StudySpec, MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
};
pub use worker::{run_worker, FaultPlan, WorkerSummary};
