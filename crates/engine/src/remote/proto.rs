//! The coordinator⇆worker wire protocol, built on the CMAF frame.
//!
//! Every message on the socket is one artifact frame
//! ([`cleanml_dataset::codec::seal_frame`]): magic, format version, payload
//! length, FNV-1a checksum, payload. The payload is a tag byte plus fields
//! encoded with the same varint/bit-pattern/length-prefix primitives the
//! artifact codecs use — there is exactly one serialization plane in the
//! system, and a message survives the same adversarial conditions an
//! artifact file does: truncation, bit flips and oversized length tokens
//! all fail closed as decode errors before any payload byte reaches a
//! handler ([`recv`] additionally caps the declared length at
//! [`MAX_MESSAGE_BYTES`], so a corrupt header can never provoke a huge
//! allocation).
//!
//! Two conversations share the listener; the first message classifies the
//! peer. The worker plane:
//!
//! ```text
//! worker                         coordinator
//!   Hello {version, name}  ──►
//!                          ◄──  Welcome {spec}      (or Reject {reason})
//!                          ◄──  Lease {id, key, kind, deadline_ms}
//!   Fetch {key}            ──►                      (per missing input)
//!                          ◄──  Artifact {key, payload} | NoArtifact {key}
//!   Heartbeat              ──►                      (extends the lease)
//!   Done {id, payload}     ──►                      (or Failed {id, error})
//!                          ◄──  Bye                 (run complete)
//! ```
//!
//! and the serving plane (a `cleanml-query` client against the resident
//! engine):
//!
//! ```text
//! client                         coordinator
//!   Submit {request}       ──►                      (study or single cell)
//!                          ◄──  Status {done, to_run, cache_hits, pruned}*
//!   Cancel                 ──►                      (optional, withdraws)
//!                          ◄──  ResultCsv {csv, report} | ServeError {error}
//!                          ◄──  Bye
//! ```
//!
//! Artifact payloads inside [`Message::Artifact`] and [`Message::Done`] are
//! raw artifact-codec bytes — the same bytes the [`crate::cache::DiskStore`]
//! frames on disk — so a finished artifact travels from a worker's encoder
//! to the coordinator's store without re-serialization.

use std::io::{self, Read, Write};

use cleanml_cleaning::ErrorType;
use cleanml_core::ExperimentConfig;
use cleanml_dataset::codec::{
    open_frame, push_bytes, push_f64, push_str, push_tag, push_u64, push_usize, seal_frame,
    take_bytes, take_f64, take_str, take_tag, take_u64, take_usize, Reader, FORMAT_VERSION,
    FRAME_HEADER_LEN, FRAME_MAGIC,
};
use cleanml_ml::cv::SearchBudget;

use crate::cache::CacheKey;
use crate::event::TaskKind;

/// Remote-protocol version, negotiated in `Hello`. Independent of the
/// artifact [`FORMAT_VERSION`]: the frame wrapper already pins that.
/// Version history: 1 — initial worker + serving planes; 2 — `Status`
/// and [`ServeReport`] grew a trailing `dropped_events` count.
pub const PROTOCOL_VERSION: u16 = 2;

/// Upper bound on a single message payload. The largest legitimate payload
/// is one artifact (a split's tables for the biggest dataset — a few MiB);
/// anything claiming more is corruption or an attack and is rejected
/// *before* allocation.
pub const MAX_MESSAGE_BYTES: u64 = 256 << 20;

/// Which task kinds a coordinator may lease to a remote worker: exactly
/// those whose [`crate::study::Artifact`] has a wire form. `GenerateDataset`
/// outputs stay in memory (cheap, deterministic — workers regenerate them
/// locally) and `Reduce` assembles grids that only the coordinator needs,
/// so both always execute locally.
pub fn leasable(kind: TaskKind) -> bool {
    matches!(
        kind,
        TaskKind::Context
            | TaskKind::Split
            | TaskKind::Clean
            | TaskKind::Train
            | TaskKind::Evaluate
    )
}

/// Everything a worker needs to rebuild the coordinator's task graph
/// bit-for-bit: the error types (in study order) and the full experiment
/// configuration. Floats travel as IEEE-754 bit patterns, so both sides
/// derive identical content addresses and identical task ids.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    pub error_types: Vec<ErrorType>,
    pub cfg: ExperimentConfig,
}

fn error_type_tag(et: ErrorType) -> u8 {
    match et {
        ErrorType::MissingValues => 0,
        ErrorType::Outliers => 1,
        ErrorType::Duplicates => 2,
        ErrorType::Inconsistencies => 3,
        ErrorType::Mislabels => 4,
    }
}

fn error_type_of(tag: u8) -> Option<ErrorType> {
    Some(match tag {
        0 => ErrorType::MissingValues,
        1 => ErrorType::Outliers,
        2 => ErrorType::Duplicates,
        3 => ErrorType::Inconsistencies,
        4 => ErrorType::Mislabels,
        _ => return None,
    })
}

impl StudySpec {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_tag(&mut out, b'S');
        push_usize(&mut out, self.error_types.len());
        for &et in &self.error_types {
            push_tag(&mut out, error_type_tag(et));
        }
        push_usize(&mut out, self.cfg.n_splits);
        push_f64(&mut out, self.cfg.test_fraction);
        push_usize(&mut out, self.cfg.search.n_candidates);
        push_usize(&mut out, self.cfg.search.cv_folds);
        push_f64(&mut out, self.cfg.alpha);
        push_u64(&mut out, self.cfg.base_seed);
        push_tag(&mut out, self.cfg.parallel as u8);
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<StudySpec> {
        let mut r = Reader::new(bytes);
        if take_tag(&mut r)? != b'S' {
            return None;
        }
        let n = take_usize(&mut r)?;
        let mut error_types = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            error_types.push(error_type_of(take_tag(&mut r)?)?);
        }
        let n_splits = take_usize(&mut r)?;
        let test_fraction = take_f64(&mut r)?;
        let n_candidates = take_usize(&mut r)?;
        let cv_folds = take_usize(&mut r)?;
        let alpha = take_f64(&mut r)?;
        let base_seed = take_u64(&mut r)?;
        let parallel = match take_tag(&mut r)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let spec = StudySpec {
            error_types,
            cfg: ExperimentConfig {
                n_splits,
                test_fraction,
                search: SearchBudget { n_candidates, cv_folds },
                alpha,
                base_seed,
                parallel,
            },
        };
        r.is_empty().then_some(spec)
    }
}

/// One serving request: a whole study, or a single
/// `(dataset, error type, cleaning method, model)` cell.
///
/// A cell request reuses the *full-study* method/model indices in its
/// content addresses, so its `Split`/`Clean`/`Train`/`Evaluate` tasks
/// dedupe against (and warm-hit) any study of the same configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run the complete grid for the spec's error types.
    Study(StudySpec),
    /// Run one cell: `spec.error_types` must contain exactly the cell's
    /// error type; names match the catalogue (`Detection::name`,
    /// `Repair::name`, `ModelKind::name`) and the dataset plan.
    Cell { spec: StudySpec, dataset: String, detection: String, repair: String, model: String },
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Study(spec) => {
                push_tag(&mut out, b'W');
                push_bytes(&mut out, &spec.encode());
            }
            Request::Cell { spec, dataset, detection, repair, model } => {
                push_tag(&mut out, b'C');
                push_bytes(&mut out, &spec.encode());
                push_str(&mut out, dataset);
                push_str(&mut out, detection);
                push_str(&mut out, repair);
                push_str(&mut out, model);
            }
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<Request> {
        let mut r = Reader::new(bytes);
        let req = match take_tag(&mut r)? {
            b'W' => Request::Study(StudySpec::decode(take_bytes(&mut r)?)?),
            b'C' => Request::Cell {
                spec: StudySpec::decode(take_bytes(&mut r)?)?,
                dataset: take_str(&mut r)?,
                detection: take_str(&mut r)?,
                repair: take_str(&mut r)?,
                model: take_str(&mut r)?,
            },
            _ => return None,
        };
        r.is_empty().then_some(req)
    }
}

/// The run summary shipped with a [`Message::ResultCsv`]: enough to
/// reconstruct the client-side `--cache-stats` line — the submission's
/// resolve-time cache counters, the store footprint, and the execution
/// report split by provenance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    pub memory_hits: u64,
    pub disk_hits: u64,
    pub misses: u64,
    pub disk_writes: u64,
    pub disk_evictions: u64,
    pub store_entries: u64,
    pub store_bytes: u64,
    pub executed: Vec<(TaskKind, u64)>,
    pub remote_executed: Vec<(TaskKind, u64)>,
    pub remote_workers: u64,
    pub releases: u64,
    pub cache_hits: u64,
    pub pruned: u64,
    pub total: u64,
    /// Progress events the engine failed to deliver to any sink during
    /// the server's lifetime (cumulative): a nonzero value tells the
    /// client its progress view may have been lossy.
    pub dropped_events: u64,
}

fn push_kind_counts(out: &mut Vec<u8>, counts: &[(TaskKind, u64)]) {
    push_usize(out, counts.len());
    for &(kind, n) in counts {
        push_tag(out, kind_tag(kind));
        push_u64(out, n);
    }
}

fn take_kind_counts(r: &mut Reader<'_>) -> Option<Vec<(TaskKind, u64)>> {
    let n = take_usize(r)?;
    let mut counts = Vec::with_capacity(n.min(TaskKind::ALL.len()));
    for _ in 0..n {
        counts.push((kind_of(take_tag(r)?)?, take_u64(r)?));
    }
    Some(counts)
}

impl ServeReport {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_tag(&mut out, b'R');
        for v in [
            self.memory_hits,
            self.disk_hits,
            self.misses,
            self.disk_writes,
            self.disk_evictions,
            self.store_entries,
            self.store_bytes,
        ] {
            push_u64(&mut out, v);
        }
        push_kind_counts(&mut out, &self.executed);
        push_kind_counts(&mut out, &self.remote_executed);
        for v in [
            self.remote_workers,
            self.releases,
            self.cache_hits,
            self.pruned,
            self.total,
            self.dropped_events,
        ] {
            push_u64(&mut out, v);
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<ServeReport> {
        let mut r = Reader::new(bytes);
        if take_tag(&mut r)? != b'R' {
            return None;
        }
        let report = ServeReport {
            memory_hits: take_u64(&mut r)?,
            disk_hits: take_u64(&mut r)?,
            misses: take_u64(&mut r)?,
            disk_writes: take_u64(&mut r)?,
            disk_evictions: take_u64(&mut r)?,
            store_entries: take_u64(&mut r)?,
            store_bytes: take_u64(&mut r)?,
            executed: take_kind_counts(&mut r)?,
            remote_executed: take_kind_counts(&mut r)?,
            remote_workers: take_u64(&mut r)?,
            releases: take_u64(&mut r)?,
            cache_hits: take_u64(&mut r)?,
            pruned: take_u64(&mut r)?,
            total: take_u64(&mut r)?,
            dropped_events: take_u64(&mut r)?,
        };
        r.is_empty().then_some(report)
    }
}

fn kind_tag(kind: TaskKind) -> u8 {
    TaskKind::ALL.iter().position(|&k| k == kind).expect("kind listed") as u8
}

fn kind_of(tag: u8) -> Option<TaskKind> {
    TaskKind::ALL.get(tag as usize).copied()
}

fn push_key(out: &mut Vec<u8>, key: CacheKey) {
    push_u64(out, key.0);
    push_u64(out, key.1);
}

fn take_key(r: &mut Reader<'_>) -> Option<CacheKey> {
    Some(CacheKey(take_u64(r)?, take_u64(r)?))
}

/// Length-prefixed artifact payload; the declared length is checked against
/// the bytes actually present before anything is allocated, so an oversized
/// length token is a clean `None`.
fn take_payload(r: &mut Reader<'_>) -> Option<Vec<u8>> {
    Some(take_bytes(r)?.to_vec())
}

/// One protocol message. See the module docs for the conversation shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker introduces itself; `version` must match [`PROTOCOL_VERSION`].
    Hello { version: u16, name: String },
    /// Coordinator accepts: `spec` is an encoded [`StudySpec`].
    Welcome { spec: Vec<u8> },
    /// Coordinator refuses the connection (version skew).
    Reject { reason: String },
    /// Coordinator leases task `id` (content address `key`) to the worker;
    /// the lease expires `deadline_ms` after the last message unless
    /// extended by `Heartbeat`/`Fetch` traffic.
    Lease { id: u64, key: CacheKey, kind: TaskKind, deadline_ms: u64 },
    /// Worker requests an input artifact by content address.
    Fetch { key: CacheKey },
    /// Coordinator serves a requested artifact (raw codec payload).
    Artifact { key: CacheKey, payload: Vec<u8> },
    /// Coordinator has no wire form for that key; the worker computes the
    /// dependency locally from its own graph.
    NoArtifact { key: CacheKey },
    /// Worker ships the finished artifact for its leased task.
    Done { id: u64, payload: Vec<u8> },
    /// The leased task's body failed; the run aborts (task bodies are
    /// deterministic, so it would fail locally too).
    Failed { id: u64, error: String },
    /// Keep-alive: extends the current lease deadline.
    Heartbeat,
    /// Orderly shutdown (either direction).
    Bye,
    /// Serving client submits a study or single-cell [`Request`]
    /// (encoded).
    Submit { request: Vec<u8> },
    /// Coordinator streams submission progress to a serving client (also
    /// acts as a keep-alive while long tasks run). `dropped_events` is
    /// the engine's cumulative count of undeliverable progress events —
    /// nonzero means some progress was lost, not that nothing happened.
    Status { done: u64, to_run: u64, cache_hits: u64, pruned: u64, dropped_events: u64 },
    /// Final answer to a `Submit`: the rendered R1/R2/R3 CSV text plus an
    /// encoded [`ServeReport`].
    ResultCsv { csv: Vec<u8>, report: Vec<u8> },
    /// Serving client withdraws its submission; its subgraph is released.
    Cancel,
    /// The submission failed (or was refused) server-side.
    ServeError { error: String },
}

mod tag {
    pub const HELLO: u8 = b'H';
    pub const WELCOME: u8 = b'W';
    pub const REJECT: u8 = b'R';
    pub const LEASE: u8 = b'L';
    pub const FETCH: u8 = b'F';
    pub const ARTIFACT: u8 = b'A';
    pub const NO_ARTIFACT: u8 = b'N';
    pub const DONE: u8 = b'D';
    pub const FAILED: u8 = b'X';
    pub const HEARTBEAT: u8 = b'P';
    pub const BYE: u8 = b'B';
    pub const SUBMIT: u8 = b'S';
    pub const STATUS: u8 = b'T';
    pub const RESULT_CSV: u8 = b'G';
    pub const CANCEL: u8 = b'C';
    pub const SERVE_ERROR: u8 = b'E';
}

impl Message {
    /// Encodes the message payload (tag + fields, no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { version, name } => {
                push_tag(&mut out, tag::HELLO);
                push_u64(&mut out, u64::from(*version));
                push_str(&mut out, name);
            }
            Message::Welcome { spec } => {
                push_tag(&mut out, tag::WELCOME);
                push_bytes(&mut out, spec);
            }
            Message::Reject { reason } => {
                push_tag(&mut out, tag::REJECT);
                push_str(&mut out, reason);
            }
            Message::Lease { id, key, kind, deadline_ms } => {
                push_tag(&mut out, tag::LEASE);
                push_u64(&mut out, *id);
                push_key(&mut out, *key);
                push_tag(&mut out, kind_tag(*kind));
                push_u64(&mut out, *deadline_ms);
            }
            Message::Fetch { key } => {
                push_tag(&mut out, tag::FETCH);
                push_key(&mut out, *key);
            }
            Message::Artifact { key, payload } => {
                push_tag(&mut out, tag::ARTIFACT);
                push_key(&mut out, *key);
                push_bytes(&mut out, payload);
            }
            Message::NoArtifact { key } => {
                push_tag(&mut out, tag::NO_ARTIFACT);
                push_key(&mut out, *key);
            }
            Message::Done { id, payload } => {
                push_tag(&mut out, tag::DONE);
                push_u64(&mut out, *id);
                push_bytes(&mut out, payload);
            }
            Message::Failed { id, error } => {
                push_tag(&mut out, tag::FAILED);
                push_u64(&mut out, *id);
                push_str(&mut out, error);
            }
            Message::Heartbeat => push_tag(&mut out, tag::HEARTBEAT),
            Message::Bye => push_tag(&mut out, tag::BYE),
            Message::Submit { request } => {
                push_tag(&mut out, tag::SUBMIT);
                push_bytes(&mut out, request);
            }
            Message::Status { done, to_run, cache_hits, pruned, dropped_events } => {
                push_tag(&mut out, tag::STATUS);
                push_u64(&mut out, *done);
                push_u64(&mut out, *to_run);
                push_u64(&mut out, *cache_hits);
                push_u64(&mut out, *pruned);
                push_u64(&mut out, *dropped_events);
            }
            Message::ResultCsv { csv, report } => {
                push_tag(&mut out, tag::RESULT_CSV);
                push_bytes(&mut out, csv);
                push_bytes(&mut out, report);
            }
            Message::Cancel => push_tag(&mut out, tag::CANCEL),
            Message::ServeError { error } => {
                push_tag(&mut out, tag::SERVE_ERROR);
                push_str(&mut out, error);
            }
        }
        out
    }

    /// Decodes a message payload. Truncated, corrupt or trailing-junk
    /// buffers are a clean `None`; allocation is bounded by the bytes
    /// actually present.
    pub fn decode(bytes: &[u8]) -> Option<Message> {
        let mut r = Reader::new(bytes);
        let msg = match take_tag(&mut r)? {
            tag::HELLO => {
                let version = u16::try_from(take_u64(&mut r)?).ok()?;
                Message::Hello { version, name: take_str(&mut r)? }
            }
            tag::WELCOME => Message::Welcome { spec: take_payload(&mut r)? },
            tag::REJECT => Message::Reject { reason: take_str(&mut r)? },
            tag::LEASE => Message::Lease {
                id: take_u64(&mut r)?,
                key: take_key(&mut r)?,
                kind: kind_of(take_tag(&mut r)?)?,
                deadline_ms: take_u64(&mut r)?,
            },
            tag::FETCH => Message::Fetch { key: take_key(&mut r)? },
            tag::ARTIFACT => {
                Message::Artifact { key: take_key(&mut r)?, payload: take_payload(&mut r)? }
            }
            tag::NO_ARTIFACT => Message::NoArtifact { key: take_key(&mut r)? },
            tag::DONE => Message::Done { id: take_u64(&mut r)?, payload: take_payload(&mut r)? },
            tag::FAILED => Message::Failed { id: take_u64(&mut r)?, error: take_str(&mut r)? },
            tag::HEARTBEAT => Message::Heartbeat,
            tag::BYE => Message::Bye,
            tag::SUBMIT => Message::Submit { request: take_payload(&mut r)? },
            tag::STATUS => Message::Status {
                done: take_u64(&mut r)?,
                to_run: take_u64(&mut r)?,
                cache_hits: take_u64(&mut r)?,
                pruned: take_u64(&mut r)?,
                dropped_events: take_u64(&mut r)?,
            },
            tag::RESULT_CSV => {
                Message::ResultCsv { csv: take_payload(&mut r)?, report: take_payload(&mut r)? }
            }
            tag::CANCEL => Message::Cancel,
            tag::SERVE_ERROR => Message::ServeError { error: take_str(&mut r)? },
            _ => return None,
        };
        r.is_empty().then_some(msg)
    }
}

fn invalid(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Once the first byte of a message is visible, the rest must arrive
/// within this window — a peer stalled mid-frame is as dead as a silent
/// one.
pub(crate) const MESSAGE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Outcome of one bounded receive attempt on a socket.
pub enum Polled {
    Msg(Message),
    /// Nothing arrived within the wait window; the connection is still up.
    Pending,
    /// EOF, a transport error, or an undecodable frame: the conversation
    /// is over either way — a poisoned stream cannot be resynchronized.
    Closed,
}

/// Bounded receive: waits up to `wait` for the *first* byte (peeked, so a
/// timeout consumes nothing and the stream stays frame-aligned), then
/// insists the full message follows within [`MESSAGE_TIMEOUT`]. Both
/// coordinator lease loops and worker sessions use this so neither side
/// can block forever on a peer that vanished without a FIN.
pub fn poll_recv(stream: &std::net::TcpStream, wait: std::time::Duration) -> Polled {
    let mut first = [0u8; 1];
    let _ = stream.set_read_timeout(Some(wait));
    match stream.peek(&mut first) {
        Ok(0) => Polled::Closed,
        Ok(_) => {
            let _ = stream.set_read_timeout(Some(MESSAGE_TIMEOUT));
            match recv(&mut &*stream) {
                Ok(msg) => Polled::Msg(msg),
                Err(_) => Polled::Closed,
            }
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Polled::Pending
        }
        Err(_) => Polled::Closed,
    }
}

/// Writes one framed message.
pub fn send(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    w.write_all(&seal_frame(&msg.encode()))?;
    w.flush()
}

/// Reads one framed message. The frame header is validated *before* the
/// payload is read: wrong magic or version, an oversized declared length,
/// a checksum mismatch or an undecodable payload are all
/// [`io::ErrorKind::InvalidData`] — the connection is poisoned and the
/// caller drops it, never a panic and never a partially-applied message.
pub fn recv(r: &mut impl Read) -> io::Result<Message> {
    let mut frame = vec![0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut frame)?;
    if frame[..4] != FRAME_MAGIC {
        return Err(invalid("bad frame magic"));
    }
    let version = u16::from_le_bytes([frame[4], frame[5]]);
    if version != FORMAT_VERSION {
        return Err(invalid("unsupported frame version"));
    }
    let len = u64::from_le_bytes(frame[6..14].try_into().expect("8 bytes"));
    if len > MAX_MESSAGE_BYTES {
        return Err(invalid("oversized message length"));
    }
    frame.resize(FRAME_HEADER_LEN + len as usize, 0);
    r.read_exact(&mut frame[FRAME_HEADER_LEN..])?;
    let payload = open_frame(&frame).ok_or_else(|| invalid("corrupt message frame"))?;
    Message::decode(payload).ok_or_else(|| invalid("undecodable message"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello { version: PROTOCOL_VERSION, name: "worker-1".into() },
            Message::Welcome {
                spec: StudySpec {
                    error_types: vec![ErrorType::Outliers, ErrorType::Mislabels],
                    cfg: ExperimentConfig::quick(),
                }
                .encode(),
            },
            Message::Reject { reason: "protocol version 99".into() },
            Message::Lease {
                id: 42,
                key: CacheKey(7, u64::MAX),
                kind: TaskKind::Train,
                deadline_ms: 5000,
            },
            Message::Fetch { key: CacheKey(0, 0) },
            Message::Artifact { key: CacheKey(1, 2), payload: vec![0, 1, 255, 128] },
            Message::NoArtifact { key: CacheKey(3, 4) },
            Message::Done { id: 9, payload: b"CWHAT".to_vec() },
            Message::Failed { id: 3, error: "singular matrix".into() },
            Message::Heartbeat,
            Message::Bye,
            Message::Submit {
                request: Request::Study(StudySpec {
                    error_types: vec![ErrorType::Duplicates],
                    cfg: ExperimentConfig::quick(),
                })
                .encode(),
            },
            Message::Status { done: 12, to_run: 99, cache_hits: 3, pruned: 4, dropped_events: 5 },
            Message::ResultCsv {
                csv: b"dataset,error_type\nEEG,Outliers\n".to_vec(),
                report: ServeReport { cache_hits: 7, ..Default::default() }.encode(),
            },
            Message::Cancel,
            Message::ServeError { error: "unknown dataset 'EGG'".into() },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(Message::decode(&bytes).as_ref(), Some(&msg), "{msg:?}");
            // and over the framed transport
            let mut wire = Vec::new();
            send(&mut wire, &msg).unwrap();
            let got = recv(&mut wire.as_slice()).unwrap();
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn study_spec_round_trips_bit_exactly() {
        for cfg in [ExperimentConfig::quick(), ExperimentConfig::standard(), {
            let mut c = ExperimentConfig::paper();
            c.test_fraction = f64::from_bits(0x7ff8_0000_0000_1234); // NaN payload
            c
        }] {
            let spec = StudySpec { error_types: ErrorType::all().to_vec(), cfg };
            let back = StudySpec::decode(&spec.encode()).expect("decode");
            assert_eq!(back.error_types, spec.error_types);
            assert_eq!(back.cfg.test_fraction.to_bits(), spec.cfg.test_fraction.to_bits());
            assert_eq!(back.cfg.alpha.to_bits(), spec.cfg.alpha.to_bits());
            assert_eq!(back.cfg.n_splits, spec.cfg.n_splits);
            assert_eq!(back.cfg.base_seed, spec.cfg.base_seed);
        }
        assert!(StudySpec::decode(b"").is_none());
        assert!(StudySpec::decode(b"not a spec").is_none());
    }

    #[test]
    fn truncations_fail_closed() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                // may be None or a shorter valid prefix is impossible: the
                // reader demands exact consumption
                assert!(Message::decode(&bytes[..cut]).is_none(), "{msg:?} cut {cut}");
            }
            let mut long = bytes;
            long.push(0);
            assert!(Message::decode(&long).is_none(), "{msg:?} trailing byte");
        }
    }

    #[test]
    fn oversized_length_token_is_a_clean_error() {
        // a Done message whose declared payload length is absurd
        let mut payload = Vec::new();
        push_tag(&mut payload, tag::DONE);
        push_u64(&mut payload, 1);
        push_usize(&mut payload, usize::MAX);
        assert!(Message::decode(&payload).is_none());

        // a frame header declaring a payload beyond MAX_MESSAGE_BYTES
        let msg = Message::Heartbeat;
        let mut wire = Vec::new();
        send(&mut wire, &msg).unwrap();
        wire[6..14].copy_from_slice(&(MAX_MESSAGE_BYTES + 1).to_le_bytes());
        let err = recv(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_frames_are_io_errors_not_panics() {
        let mut wire = Vec::new();
        send(&mut wire, &Message::Fetch { key: CacheKey(1, 2) }).unwrap();
        // flip one payload bit: checksum catches it
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert_eq!(recv(&mut wire.as_slice()).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // wrong magic
        wire[0] = b'X';
        assert_eq!(recv(&mut wire.as_slice()).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // EOF mid-frame
        let mut short = Vec::new();
        send(&mut short, &Message::Bye).unwrap();
        short.truncate(short.len() - 1);
        assert_eq!(recv(&mut short.as_slice()).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn requests_and_serve_reports_round_trip() {
        let study = Request::Study(StudySpec {
            error_types: ErrorType::all().to_vec(),
            cfg: ExperimentConfig::quick(),
        });
        let cell = Request::Cell {
            spec: StudySpec {
                error_types: vec![ErrorType::Outliers],
                cfg: ExperimentConfig::standard(),
            },
            dataset: "Sensor".into(),
            detection: "IQR".into(),
            repair: "Mean".into(),
            model: "XGBoost".into(),
        };
        for req in [study, cell] {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).as_ref(), Some(&req));
            for cut in 0..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_none(), "cut {cut}");
            }
        }
        assert!(Request::decode(b"junk").is_none());

        let report = ServeReport {
            memory_hits: 1,
            disk_hits: 2,
            misses: 3,
            disk_writes: 4,
            disk_evictions: 5,
            store_entries: 6,
            store_bytes: 7,
            executed: vec![(TaskKind::Train, 8), (TaskKind::Reduce, 1)],
            remote_executed: vec![(TaskKind::Clean, 2)],
            remote_workers: 2,
            releases: 1,
            cache_hits: 9,
            pruned: 10,
            total: 11,
            dropped_events: 12,
        };
        let bytes = report.encode();
        assert_eq!(ServeReport::decode(&bytes).as_ref(), Some(&report));
        for cut in 0..bytes.len() {
            assert!(ServeReport::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut long = bytes;
        long.push(0);
        assert!(ServeReport::decode(&long).is_none(), "trailing byte");
    }

    #[test]
    fn leasable_kinds_are_exactly_the_encodable_ones() {
        assert!(leasable(TaskKind::Train));
        assert!(leasable(TaskKind::Clean));
        assert!(leasable(TaskKind::Split));
        assert!(leasable(TaskKind::Evaluate));
        assert!(leasable(TaskKind::Context));
        assert!(!leasable(TaskKind::GenerateDataset), "datasets have no wire form");
        assert!(!leasable(TaskKind::Reduce), "grids have no wire form");
    }
}
