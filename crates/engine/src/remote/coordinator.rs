//! Coordinator side of the remote executor: the listening hub plus the
//! per-connection lease-service loops that plug remote workers into the
//! scheduler's ready frontier.
//!
//! A [`RemoteHub`] owns the TCP listener for the engine's whole lifetime —
//! workers may connect before a study starts or join mid-run — and queues
//! accepted sockets. While a run executes, [`dispatch`] drains that queue
//! and spawns one scoped lease-service thread per connection; the thread
//! performs the `Hello`/`Welcome` handshake and then behaves like a worker
//! thread whose "execution" is the wire: it claims a ready task (heaviest
//! leasable first), sends a `Lease`, serves `Fetch` requests for the task's
//! inputs from the in-memory slots or the disk store, and on `Done` applies
//! the exact completion bookkeeping a local worker would — the shipped
//! payload lands in the [`crate::cache::DiskStore`] *before* any dependent
//! can observe the artifact.
//!
//! Fault containment is the point of the lease: a worker that misses its
//! deadline (no `Done`, no `Heartbeat`, no `Fetch`) or whose connection
//! drops is declared dead, its connection is severed so a late `Done` can
//! never double-complete, and the orphaned task re-enters the ready
//! frontier for whoever claims it next. A `kill -9`'d worker therefore
//! costs exactly its in-flight lease and nothing else.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::{Duration, Instant};

use crate::cache::{CacheKey, DiskCodec};
use crate::event::{emit, EngineEvent, EventSink};
use crate::graph::TaskId;
use crate::pool::{finish_err, finish_ok, NodeMeta, PersistSink, Shared};
use crate::remote::proto::{self, leasable, poll_recv, Message, Polled, PROTOCOL_VERSION};

/// How often idle loops look for new work or new connections.
const POLL: Duration = Duration::from_millis(20);
/// Budget for a connected worker to complete the `Hello` handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default lease deadline: how long a worker may go silent (no `Done`,
/// `Fetch` or `Heartbeat`) before its task is re-queued. Workers heartbeat
/// at a quarter of this, so only a dead worker ever expires.
pub const DEFAULT_LEASE_TIMEOUT: Duration = Duration::from_secs(5);

/// The accept side of the coordinator. Lives as long as the engine;
/// connections accepted between runs wait in the queue until the next
/// study starts.
pub struct RemoteHub {
    addr: SocketAddr,
    lease_timeout: Duration,
    pending: Arc<Mutex<Vec<TcpStream>>>,
    shutdown: Arc<AtomicBool>,
}

impl RemoteHub {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept thread.
    pub fn bind(addr: &str, lease_timeout: Duration) -> io::Result<Arc<RemoteHub>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let pending: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (q, stop) = (Arc::clone(&pending), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => q.lock().expect("pending lock").push(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        });
        Ok(Arc::new(RemoteHub { addr: local, lease_timeout, pending, shutdown }))
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn lease_timeout(&self) -> Duration {
        self.lease_timeout
    }

    fn try_take(&self) -> Option<TcpStream> {
        self.pending.lock().expect("pending lock").pop()
    }
}

impl Drop for RemoteHub {
    fn drop(&mut self) {
        // The accept thread exits on its next poll; queued sockets close,
        // which unblocks any worker still waiting for a `Welcome`.
        self.shutdown.store(true, Ordering::Release);
    }
}

/// Everything a lease-service thread needs, borrowed from
/// [`crate::pool::execute`]'s stack frame (all threads are scoped inside
/// it).
pub(crate) struct RemoteCtx<'a, A> {
    pub shared: &'a Shared<'a, A>,
    pub meta: &'a [NodeMeta],
    pub deps: &'a [Vec<TaskId>],
    pub persist: &'a Option<PersistSink>,
    pub events: Option<EventSink>,
    pub keys: &'a [CacheKey],
    pub key_index: &'a HashMap<CacheKey, TaskId>,
    pub spec: &'a [u8],
    pub hub: &'a RemoteHub,
}

impl<A> Clone for RemoteCtx<'_, A> {
    fn clone(&self) -> Self {
        RemoteCtx {
            shared: self.shared,
            meta: self.meta,
            deps: self.deps,
            persist: self.persist,
            events: self.events.clone(),
            keys: self.keys,
            key_index: self.key_index,
            spec: self.spec,
            hub: self.hub,
        }
    }
}

impl<A> RemoteCtx<'_, A> {
    fn run_over(&self) -> bool {
        self.shared.abort.load(Ordering::Acquire)
            || self.shared.remaining.load(Ordering::Acquire) == 0
    }
}

/// Accepts queued connections for the duration of one run, spawning a
/// lease-service thread per worker inside the pool's scope.
pub(crate) fn dispatch<'scope, 'env, A>(
    scope: &'scope Scope<'scope, 'env>,
    ctx: RemoteCtx<'scope, A>,
) where
    A: Clone + Send + Sync + DiskCodec,
{
    while !ctx.run_over() {
        if let Some(stream) = ctx.hub.try_take() {
            let worker_ctx = ctx.clone();
            scope.spawn(move || serve_worker(worker_ctx, stream));
        } else {
            std::thread::sleep(POLL);
        }
    }
}

/// Claims the globally heaviest leasable ready task across all local
/// deques. Non-leasable kinds (dataset generation, grid reduction) are
/// left for the local pool.
///
/// Two passes, one deque lock at a time: the first finds the deque holding
/// the heaviest leasable task, the second removes the heaviest leasable
/// task that deque *now* holds. Local workers may reshuffle between the
/// passes — a slightly-lighter claim (or a `None`, retried next tick) is
/// fine; what matters is never blocking the local pool on a cross-deque
/// lock ladder.
fn claim_leasable<A>(shared: &Shared<'_, A>, meta: &[NodeMeta]) -> Option<TaskId> {
    let mut best: Option<(u32, usize)> = None; // (cost weight, deque index)
    for (di, deque) in shared.deques.iter().enumerate() {
        let q = deque.lock().expect("deque");
        for &id in q.iter() {
            let kind = meta[id].0;
            if leasable(kind) && best.is_none_or(|(w, _)| kind.cost_weight() > w) {
                best = Some((kind.cost_weight(), di));
            }
        }
    }
    let (_, di) = best?;
    let mut q = shared.deques[di].lock().expect("deque");
    let pos = q
        .iter()
        .enumerate()
        .filter(|&(_, &id)| leasable(meta[id].0))
        .max_by_key(|&(pos, &id)| (meta[id].0.cost_weight(), pos))
        .map(|(pos, _)| pos)?;
    q.remove(pos)
}

/// Serves one Fetch: in-memory slot first (cloning out of the slot is
/// Arc-cheap for study artifacts), then the disk store's framed payload.
/// Artifacts without a wire form — generated datasets — answer
/// `NoArtifact`, and the worker recomputes them locally (they are cheap
/// and deterministic by construction).
fn serve_fetch<A>(ctx: &RemoteCtx<'_, A>, key: CacheKey) -> Message
where
    A: Clone + Send + Sync + DiskCodec,
{
    if let Some(&id) = ctx.key_index.get(&key) {
        let held = ctx.shared.slots[id].lock().expect("slot").clone();
        if let Some(payload) = held.and_then(|a| a.encode()) {
            return Message::Artifact { key, payload };
        }
    }
    if let Some(sink) = ctx.persist {
        if let Some(payload) = sink.store.load(key) {
            return Message::Artifact { key, payload };
        }
    }
    Message::NoArtifact { key }
}

/// The per-connection lease loop. Any protocol violation, decode failure,
/// disconnection or deadline miss severs the connection; an in-flight
/// lease is re-injected into the frontier, so the only way a task is lost
/// is if the whole coordinator dies — and the disk store covers that.
fn serve_worker<A>(ctx: RemoteCtx<'_, A>, stream: TcpStream)
where
    A: Clone + Send + Sync + DiskCodec,
{
    // The accepted stream must be blocking regardless of platform: BSD
    // kernels propagate the listener's O_NONBLOCK through accept(2)
    // (Linux does not), and a non-blocking stream would turn every
    // partially-arrived frame into a WouldBlock that reads as a dead
    // worker.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    // The handshake wait polls in short slices: a client that connects but
    // never speaks (a probe, a scanner, a stalled worker) must not pin the
    // run's thread scope open past the end of the run — only up to one
    // poll slice past it.
    let handshake_deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let name = loop {
        if ctx.run_over() {
            return;
        }
        match poll_recv(&stream, POLL) {
            Polled::Pending => {
                if Instant::now() >= handshake_deadline {
                    return;
                }
            }
            Polled::Msg(Message::Hello { version, name }) if version == PROTOCOL_VERSION => {
                break name;
            }
            Polled::Msg(Message::Hello { version, .. }) => {
                let reason =
                    format!("protocol version {version}, coordinator speaks {PROTOCOL_VERSION}");
                let _ = proto::send(&mut &stream, &Message::Reject { reason });
                return;
            }
            Polled::Msg(_) | Polled::Closed => return,
        }
    };
    if proto::send(&mut &stream, &Message::Welcome { spec: ctx.spec.to_vec() }).is_err() {
        return;
    }
    ctx.shared.remote_workers.fetch_add(1, Ordering::Relaxed);
    emit(&ctx.events, EngineEvent::WorkerJoined { worker: name.clone() });

    let mut completed = 0usize;
    loop {
        if ctx.run_over() {
            let _ = proto::send(&mut &stream, &Message::Bye);
            break;
        }
        // Worker-initiated traffic while idle: heartbeats are fine, a Bye
        // or a closed socket retires the worker.
        match poll_recv(&stream, Duration::from_millis(1)) {
            Polled::Pending => {}
            Polled::Msg(Message::Heartbeat) => continue,
            Polled::Msg(_) | Polled::Closed => break,
        }
        let Some(id) = claim_leasable(ctx.shared, ctx.meta) else {
            std::thread::sleep(POLL);
            continue;
        };

        let (kind, ref label, _) = ctx.meta[id];
        emit(&ctx.events, EngineEvent::TaskStarted { id, kind, label: label.clone() });
        let lease_timeout = ctx.hub.lease_timeout();
        let lease = Message::Lease {
            id: id as u64,
            key: ctx.keys[id],
            kind,
            deadline_ms: lease_timeout.as_millis() as u64,
        };
        if proto::send(&mut &stream, &lease).is_err() {
            orphan(&ctx, &name, id);
            break;
        }

        // The lease conversation: serve fetches, extend on traffic, and
        // either complete the task or declare the worker dead.
        let mut deadline = Instant::now() + lease_timeout;
        let outcome = loop {
            if ctx.shared.abort.load(Ordering::Acquire) {
                let _ = proto::send(&mut &stream, &Message::Bye);
                break LeaseOutcome::Aborted;
            }
            match poll_recv(&stream, POLL) {
                Polled::Pending => {
                    if Instant::now() >= deadline {
                        break LeaseOutcome::Dead;
                    }
                }
                Polled::Closed => break LeaseOutcome::Dead,
                Polled::Msg(msg) => {
                    deadline = Instant::now() + lease_timeout;
                    match msg {
                        Message::Fetch { key } => {
                            if proto::send(&mut &stream, &serve_fetch(&ctx, key)).is_err() {
                                break LeaseOutcome::Dead;
                            }
                        }
                        Message::Heartbeat => {}
                        Message::Done { id: done_id, payload } if done_id == id as u64 => {
                            // The payload must decode to a whole artifact
                            // before anything reaches the store or a slot:
                            // a truncated or corrupt shipment poisons the
                            // connection, not the run.
                            match A::decode(&payload) {
                                Some(artifact) => {
                                    let home = id % ctx.shared.deques.len();
                                    finish_ok(
                                        ctx.shared,
                                        id,
                                        artifact,
                                        Some(&payload),
                                        home,
                                        true,
                                        ctx.meta,
                                        ctx.deps,
                                        ctx.persist,
                                        &ctx.events,
                                    );
                                    completed += 1;
                                    break LeaseOutcome::Completed;
                                }
                                None => break LeaseOutcome::Dead,
                            }
                        }
                        Message::Failed { error, .. } => {
                            let err = cleanml_core::CoreError::Unsupported(format!(
                                "remote worker '{name}' failed task '{label}': {error}"
                            ));
                            finish_err(ctx.shared, id, kind, err, &ctx.events);
                            break LeaseOutcome::Aborted;
                        }
                        // Done for a stale id, Bye mid-lease, or any
                        // coordinator-side message echoed back: protocol
                        // violation — sever.
                        _ => break LeaseOutcome::Dead,
                    }
                }
            }
        };
        match outcome {
            LeaseOutcome::Completed => continue,
            LeaseOutcome::Aborted => break,
            LeaseOutcome::Dead => {
                orphan(&ctx, &name, id);
                break;
            }
        }
    }
    emit(&ctx.events, EngineEvent::WorkerLeft { worker: name, completed });
}

enum LeaseOutcome {
    Completed,
    Dead,
    Aborted,
}

/// Re-queues a task whose lease died and records the event.
fn orphan<A>(ctx: &RemoteCtx<'_, A>, worker: &str, id: TaskId) {
    let kind = ctx.meta[id].0;
    ctx.shared.reinject(&[id], ctx.meta);
    emit(&ctx.events, EngineEvent::LeaseExpired { worker: worker.to_string(), id, kind });
}
