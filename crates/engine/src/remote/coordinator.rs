//! Coordinator side of the remote plane: the listening hub plus the
//! per-connection service loops that plug remote peers into the resident
//! engine.
//!
//! A [`RemoteHub`] owns the TCP listener for the engine's whole lifetime
//! and queues accepted sockets. A hub service thread
//! ([`spawn_hub_service`], running as long as the pool) drains that queue
//! and classifies each connection by its first message:
//!
//! * **`Hello`** — a `cleanml-worker`. The connection gets a lease-service
//!   thread that waits for a live study spec (workers may connect before
//!   any submission exists), completes the `Hello`/`Welcome` handshake,
//!   and then behaves like a worker thread whose "execution" is the wire:
//!   it claims a ready task from the merged frontier (heaviest leasable
//!   first, guided by the per-deque kind-count summaries), sends a
//!   `Lease`, serves `Fetch` requests from the resident artifacts, the
//!   warm LRU or the disk store, and on `Done` applies the exact
//!   completion bookkeeping a local worker would — the shipped payload
//!   lands in the [`crate::cache::DiskStore`] *before* any dependent can
//!   observe the artifact.
//! * **`Submit`** — a serving client (`cleanml-query`). The connection is
//!   handed to the engine's [`ClientHandler`], which creates a submission
//!   on the resident core, streams `Status`, and ships the rendered CSV
//!   back as a `ResultCsv`. One listener therefore serves both planes.
//!
//! Fault containment is the point of the lease: a worker that misses its
//! deadline (no `Done`, no `Heartbeat`, no `Fetch`) or whose connection
//! drops is declared dead, its connection is severed so a late `Done` can
//! never double-complete, and the orphaned task re-enters the ready
//! frontier for whoever claims it next. A `kill -9`'d worker therefore
//! costs exactly its in-flight lease and nothing else.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cleanml_dataset::codec::FRAME_MAGIC;

use crate::cache::{CacheKey, DiskCodec};
use crate::event::EngineEvent;
use crate::pool::PoolInner;
use crate::remote::http;
use crate::remote::proto::{self, poll_recv, Message, Polled, PROTOCOL_VERSION};
use crate::telemetry;

/// How often idle loops look for new work or new connections.
const POLL: Duration = Duration::from_millis(20);
/// Budget for a connected peer to send its first (classifying) message.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default lease deadline: how long a worker may go silent (no `Done`,
/// `Fetch` or `Heartbeat`) before its task is re-queued. Workers heartbeat
/// at a quarter of this, so only a dead worker ever expires.
pub const DEFAULT_LEASE_TIMEOUT: Duration = Duration::from_secs(5);

/// The accept side of the coordinator. Lives as long as the engine;
/// connections accepted between submissions wait in the queue until the
/// hub service picks them up.
pub struct RemoteHub {
    addr: SocketAddr,
    lease_timeout: Duration,
    pending: Arc<Mutex<Vec<TcpStream>>>,
    shutdown: Arc<AtomicBool>,
}

impl RemoteHub {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept thread.
    pub fn bind(addr: &str, lease_timeout: Duration) -> io::Result<Arc<RemoteHub>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let pending: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (q, stop) = (Arc::clone(&pending), Arc::clone(&shutdown));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => q.lock().expect("pending lock").push(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        });
        Ok(Arc::new(RemoteHub { addr: local, lease_timeout, pending, shutdown }))
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn lease_timeout(&self) -> Duration {
        self.lease_timeout
    }

    fn try_take(&self) -> Option<TcpStream> {
        self.pending.lock().expect("pending lock").pop()
    }
}

impl Drop for RemoteHub {
    fn drop(&mut self) {
        // The accept thread exits on its next poll; queued sockets close,
        // which unblocks any worker still waiting for a `Welcome`.
        self.shutdown.store(true, Ordering::Release);
    }
}

/// Handler for serving-client connections (first message `Submit`); runs
/// on a dedicated thread per connection. The engine supplies one that
/// creates a submission on the resident core; without one, clients are
/// rejected.
pub type ClientHandler = Arc<dyn Fn(TcpStream, Message) + Send + Sync>;

/// The engine's HTTP results-gateway backend, shared by every classified
/// HTTP connection. `None` (pool-only deployments, tests) serves
/// `/metrics` but answers `/studies` routes with 503.
pub type HttpGateway = Arc<dyn http::GatewayBackend>;

/// Spawns the hub service: accept-queue draining plus per-connection
/// classification, for as long as the pool lives.
pub(crate) fn spawn_hub_service<A>(
    inner: Arc<PoolInner<A>>,
    hub: Arc<RemoteHub>,
    clients: Option<ClientHandler>,
    gateway: Option<HttpGateway>,
) -> JoinHandle<()>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    std::thread::spawn(move || {
        while !inner.shutdown.load(Ordering::Acquire) {
            match hub.try_take() {
                Some(stream) => {
                    let inner = Arc::clone(&inner);
                    let hub = Arc::clone(&hub);
                    let clients = clients.clone();
                    let gateway = gateway.clone();
                    std::thread::spawn(move || classify(&inner, &hub, stream, clients, gateway));
                }
                None => std::thread::sleep(POLL),
            }
        }
    })
}

/// Reads a connection's first bytes and routes it: CMAF frames to the
/// worker lease loop or the serving-client handler (by first message),
/// an HTTP `GET `/`POST` preamble to the bounded results gateway, and
/// everything else dropped before it can touch the pool.
fn classify<A>(
    inner: &Arc<PoolInner<A>>,
    hub: &RemoteHub,
    stream: TcpStream,
    clients: Option<ClientHandler>,
    gateway: Option<HttpGateway>,
) where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    // The accepted stream must be blocking regardless of platform: BSD
    // kernels propagate the listener's O_NONBLOCK through accept(2)
    // (Linux does not), and a non-blocking stream would turn every
    // partially-arrived frame into a WouldBlock that reads as a dead peer.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    // Transport sniff, before the CMAF codec touches the stream: every
    // legitimate frame opens with the magic, every HTTP scrape with
    // "GET ". Peeking (not reading) keeps a frame intact for `poll_recv`
    // below; four bytes of anything else close the connection unanswered.
    let mut prefix = [0u8; 4];
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let _ = stream.set_read_timeout(Some(POLL));
        match stream.peek(&mut prefix) {
            Ok(0) => return, // orderly close before any byte arrived
            Ok(n) if n < 4 => {
                if Instant::now() >= deadline {
                    return;
                }
                // fewer than 4 bytes buffered: peek returns immediately,
                // so pace the retry instead of spinning
                std::thread::sleep(POLL);
            }
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    if prefix == *b"GET " || prefix == *b"POST" {
        http::serve_http(&**inner, gateway.as_ref(), stream);
        return;
    }
    if prefix != FRAME_MAGIC {
        // Neither a frame nor an HTTP request: garbage, fail closed.
        // Counted as a request so the HTTP accounting invariant
        // (requests = rejected + not_found + unauthorized + Σ routes)
        // holds over everything that was not a CMAF frame.
        let t = telemetry::global();
        t.http_requests.inc();
        t.http_rejected.inc();
        return;
    }
    let first = loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match poll_recv(&stream, POLL) {
            Polled::Msg(msg) => break msg,
            Polled::Pending => {
                // a probe or scanner that never speaks must not pin a
                // thread past the handshake budget
                if Instant::now() >= deadline {
                    return;
                }
            }
            Polled::Closed => return,
        }
    };
    match first {
        hello @ Message::Hello { .. } => serve_worker(inner, hub, stream, hello),
        submit @ Message::Submit { .. } => match clients {
            Some(handler) => handler(stream, submit),
            None => {
                let reason = "this coordinator does not accept serving clients".to_string();
                let _ = proto::send(&mut &stream, &Message::Reject { reason });
            }
        },
        _ => {} // protocol violation: drop the connection
    }
}

/// Serves one `Fetch`: the resident entry's artifact or the warm LRU
/// (Arc-cheap clones, encoded outside the scheduler lock), then the disk
/// store's framed payload. Artifacts without a wire form — generated
/// datasets — answer `NoArtifact`, and the worker recomputes them locally
/// (they are cheap and deterministic by construction).
fn serve_fetch<A>(inner: &PoolInner<A>, key: CacheKey) -> Message
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    if let Some(payload) = inner.fetch_artifact(key).and_then(|a| a.encode()) {
        return Message::Artifact { key, payload };
    }
    if let Some(store) = &inner.persist {
        if let Some(payload) = store.load(key) {
            return Message::Artifact { key, payload };
        }
    }
    Message::NoArtifact { key }
}

enum LeaseOutcome {
    Completed,
    Dead,
    Aborted,
}

/// The per-connection lease loop. Any protocol violation, decode failure,
/// disconnection or deadline miss severs the connection; an in-flight
/// lease is re-injected into the frontier, so the only way a task is lost
/// is if the whole coordinator dies — and the disk store covers that.
fn serve_worker<A>(inner: &Arc<PoolInner<A>>, hub: &RemoteHub, stream: TcpStream, hello: Message)
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    let name = match hello {
        Message::Hello { version, name } if version == PROTOCOL_VERSION => name,
        Message::Hello { version, .. } => {
            let reason =
                format!("protocol version {version}, coordinator speaks {PROTOCOL_VERSION}");
            let _ = proto::send(&mut &stream, &Message::Reject { reason });
            return;
        }
        _ => return,
    };

    // Wait for a live study spec: a worker may connect before the first
    // submission exists. Its heartbeats are consumed while it waits.
    let (spec_key, spec_bytes) = loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        {
            let st = inner.state.lock().expect("state lock");
            if let Some(spec) = inner.pick_spec(&st) {
                break spec;
            }
        }
        match poll_recv(&stream, POLL) {
            Polled::Pending | Polled::Msg(Message::Heartbeat) => {}
            Polled::Msg(_) | Polled::Closed => return,
        }
    };
    if proto::send(&mut &stream, &Message::Welcome { spec: spec_bytes }).is_err() {
        return;
    }
    {
        let mut st = inner.state.lock().expect("state lock");
        inner.worker_joined(&mut st, spec_key, &name);
    }
    let t = telemetry::global();
    if t.enabled() {
        t.workers_joined.inc();
        t.workers_connected.inc();
    }
    let trace_tid = t.next_remote_tid();

    let lease_timeout = hub.lease_timeout();
    let mut completed = 0usize;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            let _ = proto::send(&mut &stream, &Message::Bye);
            break;
        }
        {
            // the worker is bound to one spec (its rebuilt graph); once no
            // live submission runs under it, the session ends cleanly
            let st = inner.state.lock().expect("state lock");
            if !inner.spec_live(&st, spec_key) {
                drop(st);
                let _ = proto::send(&mut &stream, &Message::Bye);
                break;
            }
        }
        // Worker-initiated traffic while idle: heartbeats are fine, a Bye
        // or a closed socket retires the worker.
        match poll_recv(&stream, Duration::from_millis(1)) {
            Polled::Pending => {}
            Polled::Msg(Message::Heartbeat) => {
                if t.enabled() {
                    t.heartbeats.inc();
                }
                continue;
            }
            Polled::Msg(_) | Polled::Closed => break,
        }
        let claimed = {
            let mut st = inner.state.lock().expect("state lock");
            let claimed = inner.claim_leasable(&mut st, spec_key);
            if let Some((gid, local_id)) = claimed {
                let kind = st.tasks[gid].kind;
                let label = st.tasks[gid].label.clone();
                inner.emit_to_subs(
                    &st,
                    gid,
                    EngineEvent::TaskStarted { id: local_id as usize, kind, label },
                );
            }
            claimed
        };
        let Some((gid, local_id)) = claimed else {
            std::thread::sleep(POLL);
            continue;
        };
        let (kind, key, label, class) = {
            let st = inner.state.lock().expect("state lock");
            let t = &st.tasks[gid];
            (t.kind, t.key, t.label.clone(), t.class.clone())
        };
        // Size the lease to the task, not the fleet average: the cost
        // model's (kind, dataset) EWMA stretches the deadline for tasks
        // known to run long, so a slow dataset's Train is not declared
        // dead by a deadline tuned for the fast ones.
        let lease_deadline = inner.costs.lease_budget(kind, class.as_deref(), lease_timeout);
        let lease = Message::Lease {
            id: local_id,
            key,
            kind,
            deadline_ms: lease_deadline.as_millis() as u64,
        };
        if proto::send(&mut &stream, &lease).is_err() {
            orphan(inner, gid, local_id, &name);
            break;
        }
        let lease_start = Instant::now();
        if t.enabled() {
            t.leases_issued.inc();
            t.leases_active.inc();
        }

        // The lease conversation: serve fetches, extend on traffic, and
        // either complete the task or declare the worker dead.
        let mut deadline = Instant::now() + lease_deadline;
        let outcome = loop {
            if inner.shutdown.load(Ordering::Acquire) {
                let _ = proto::send(&mut &stream, &Message::Bye);
                orphan(inner, gid, local_id, &name);
                break LeaseOutcome::Aborted;
            }
            match poll_recv(&stream, POLL) {
                Polled::Pending => {
                    if Instant::now() >= deadline {
                        break LeaseOutcome::Dead;
                    }
                }
                Polled::Closed => break LeaseOutcome::Dead,
                Polled::Msg(msg) => {
                    deadline = Instant::now() + lease_deadline;
                    if t.enabled() {
                        t.leases_renewed.inc();
                    }
                    match msg {
                        Message::Fetch { key } => {
                            let resp = serve_fetch(&**inner, key);
                            if t.enabled() {
                                if let Message::Artifact { payload, .. } = &resp {
                                    t.fetch_bytes_out.add(payload.len() as u64);
                                }
                            }
                            if proto::send(&mut &stream, &resp).is_err() {
                                break LeaseOutcome::Dead;
                            }
                        }
                        Message::Heartbeat => {
                            if t.enabled() {
                                t.heartbeats.inc();
                            }
                        }
                        Message::Done { id: done_id, payload } if done_id == local_id => {
                            // The payload must decode to a whole artifact
                            // before anything reaches the store or a slot:
                            // a truncated or corrupt shipment poisons the
                            // connection, not the run.
                            if t.enabled() {
                                t.fetch_bytes_in.add(payload.len() as u64);
                            }
                            match A::decode(&payload) {
                                Some(artifact) => {
                                    // durability before progress, and
                                    // before the scheduler lock
                                    if let Some(store) = &inner.persist {
                                        store.store(key, &payload);
                                    }
                                    let home = gid % inner.n_workers;
                                    let mut st = inner.state.lock().expect("state lock");
                                    if t.enabled() {
                                        t.record_slow_task(
                                            &label,
                                            kind.name(),
                                            st.tasks[gid].class_name.as_deref().unwrap_or(""),
                                            lease_start.elapsed(),
                                        );
                                    }
                                    inner.complete_ok(
                                        &mut st,
                                        gid,
                                        std::sync::Arc::new(artifact),
                                        home,
                                        true,
                                        Some(local_id),
                                    );
                                    completed += 1;
                                    break LeaseOutcome::Completed;
                                }
                                None => break LeaseOutcome::Dead,
                            }
                        }
                        Message::Failed { error, .. } => {
                            let err = cleanml_core::CoreError::Unsupported(format!(
                                "remote worker '{name}' failed task '{label}': {error}"
                            ));
                            let mut st = inner.state.lock().expect("state lock");
                            inner.complete_err(&mut st, gid, err, Some(local_id));
                            break LeaseOutcome::Aborted;
                        }
                        // Done for a stale id, Bye mid-lease, or any
                        // coordinator-side message echoed back: protocol
                        // violation — sever.
                        _ => break LeaseOutcome::Dead,
                    }
                }
            }
        };
        if t.enabled() {
            t.leases_active.dec();
        }
        match outcome {
            LeaseOutcome::Completed => {
                if t.enabled() {
                    let dur = lease_start.elapsed();
                    t.lease_seconds.observe(dur);
                    if t.tracing_on() {
                        let args = vec![
                            ("kind", kind.name().to_string()),
                            ("site", "remote".to_string()),
                            ("worker", name.clone()),
                        ];
                        t.span(&label, kind.name(), lease_start, dur, trace_tid, args);
                    }
                }
                continue;
            }
            LeaseOutcome::Aborted => break,
            LeaseOutcome::Dead => {
                orphan(inner, gid, local_id, &name);
                break;
            }
        }
    }
    if t.enabled() {
        t.workers_connected.dec();
    }
    let st = inner.state.lock().expect("state lock");
    inner.emit_to_spec(&st, spec_key, EngineEvent::WorkerLeft { worker: name, completed });
}

/// Re-queues a task whose lease died and records the event.
fn orphan<A>(inner: &Arc<PoolInner<A>>, gid: usize, local_id: u64, worker: &str)
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    let t = telemetry::global();
    if t.enabled() {
        t.leases_expired.inc();
    }
    let mut st = inner.state.lock().expect("state lock");
    inner.lease_expired(&st, gid, worker, local_id);
    inner.reinject(&mut st, gid);
}
