//! Worker side of the remote executor.
//!
//! A worker is stateless by design: it connects, learns the study from the
//! `Welcome` message and rebuilds the *identical* task graph the
//! coordinator holds (task bodies are deterministic in their explicit
//! seeds, so node ids and content addresses agree bit for bit — every
//! `Lease` carries the task's [`crate::cache::CacheKey`] and the worker
//! refuses a lease
//! whose key does not match its own node, which turns version skew into a
//! loud error instead of silent divergence).
//!
//! For each lease the worker resolves the task's inputs — fetched from the
//! coordinator by content address when they have a wire form, recomputed
//! locally otherwise (generated datasets, which are cheap and
//! deterministic) — executes the task body, and ships the artifact's codec
//! payload back in a `Done`. A heartbeat thread keeps the lease alive
//! while long task bodies (model training) run, so only a genuinely dead
//! worker ever expires.
//!
//! Resolved and computed artifacts are memoized for the session (clones
//! are `Arc`-cheap), so a worker leased many `Train` tasks of one split
//! fetches that split once.
//!
//! [`FaultPlan`] is the fault-injection surface the integration harness
//! uses to prove the coordinator's crash story: a worker can be told to
//! die on the n-th lease (connection drop mid-lease, like `kill -9`) or to
//! stall without heartbeats (deadline expiry).

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cache::DiskCodec;
use crate::graph::{TaskId, TaskNode};
use crate::remote::proto::{self, Message, Polled, StudySpec, PROTOCOL_VERSION};
use crate::study::{build_study_graph, Artifact};

/// How long a worker read may sit silent before the worker probes the
/// coordinator with a `Heartbeat`. The probe's *write* is what matters: a
/// coordinator that vanished without a FIN (host power-cycle, network
/// partition) never errors a blocked read, but repeated writes fail once
/// the kernel gives up retransmitting — so a "disposable" worker can never
/// become an immortal zombie.
const PROBE_INTERVAL: Duration = Duration::from_secs(30);

/// Deliberate misbehaviour for fault-injection tests. The default plan is
/// a healthy worker.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Close the connection upon *receiving* the n-th lease (1-based),
    /// without executing or replying — the loopback equivalent of
    /// `kill -9` mid-lease.
    pub die_on_lease: Option<usize>,
    /// Sleep this long before executing each leased task.
    pub stall: Option<Duration>,
    /// Suppress heartbeats (with `stall` past the lease deadline, forces
    /// the coordinator's expiry path).
    pub mute_heartbeats: bool,
}

/// What a worker session accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leased tasks completed (a `Done` was shipped).
    pub completed: usize,
    /// Input artifacts fetched from the coordinator.
    pub fetched: usize,
    /// Tasks computed locally: leased tasks plus dependencies the
    /// coordinator had no wire form for.
    pub computed: usize,
}

fn session_over(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

enum TaskError {
    /// The task body (or a dependency decode) failed; reported upstream as
    /// `Failed`, which aborts the run — bodies are deterministic, so the
    /// coordinator would hit the same error locally.
    Task(String),
    /// The session itself died.
    Io(io::Error),
}

struct Session {
    stream: Arc<TcpStream>,
    /// Serializes frame writes between the main thread and the heartbeat
    /// thread — a frame torn by interleaved writers would poison the
    /// connection.
    write_lock: Arc<Mutex<()>>,
    nodes: Vec<TaskNode<Artifact>>,
    memo: HashMap<TaskId, Arc<Artifact>>,
    summary: WorkerSummary,
}

impl Session {
    fn send(&self, msg: &Message) -> io::Result<()> {
        let _guard = self.write_lock.lock().expect("write lock");
        proto::send(&mut &*self.stream, msg)
    }

    /// Bounded receive: silent stretches are interrupted every
    /// [`PROBE_INTERVAL`] by a heartbeat probe whose failure reveals a
    /// vanished coordinator. An undecodable or torn frame ends the session
    /// (the stream cannot be resynchronized), mirroring the coordinator's
    /// severing discipline.
    fn recv(&self) -> io::Result<Message> {
        loop {
            match proto::poll_recv(&self.stream, PROBE_INTERVAL) {
                Polled::Msg(msg) => return Ok(msg),
                Polled::Pending => self.send(&Message::Heartbeat)?,
                Polled::Closed => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "coordinator connection ended",
                    ))
                }
            }
        }
    }

    /// Fetch-or-compute one task's artifact.
    fn resolve(&mut self, id: TaskId) -> Result<Arc<Artifact>, TaskError> {
        if let Some(a) = self.memo.get(&id) {
            return Ok(Arc::clone(a));
        }
        let key = self.nodes[id].key;
        self.send(&Message::Fetch { key }).map_err(TaskError::Io)?;
        loop {
            match self.recv().map_err(TaskError::Io)? {
                Message::Artifact { key: k, payload } if k == key => {
                    let artifact = Arc::new(Artifact::decode(&payload).ok_or_else(|| {
                        TaskError::Task(format!("artifact {k} from coordinator does not decode"))
                    })?);
                    self.summary.fetched += 1;
                    self.memo.insert(id, Arc::clone(&artifact));
                    return Ok(artifact);
                }
                Message::NoArtifact { key: k } if k == key => break,
                Message::Heartbeat => {}
                other => {
                    return Err(TaskError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected reply to Fetch: {other:?}"),
                    )))
                }
            }
        }
        self.compute(id)
    }

    /// Executes a task body locally, resolving its dependencies first.
    fn compute(&mut self, id: TaskId) -> Result<Arc<Artifact>, TaskError> {
        let dep_ids = self.nodes[id].deps.clone();
        let mut inputs = Vec::with_capacity(dep_ids.len());
        for d in dep_ids {
            inputs.push(self.resolve(d)?);
        }
        let run = self.nodes[id]
            .run
            .take()
            .ok_or_else(|| TaskError::Task(format!("task {id} body already consumed")))?;
        let artifact = Arc::new(run(inputs).map_err(|e| TaskError::Task(e.to_string()))?);
        self.summary.computed += 1;
        self.memo.insert(id, Arc::clone(&artifact));
        Ok(artifact)
    }
}

/// Runs `body` while a background thread heartbeats the coordinator every
/// quarter-deadline, so a healthy worker never expires mid-`Train`.
fn with_heartbeats<T>(
    stream: &Arc<TcpStream>,
    write_lock: &Arc<Mutex<()>>,
    deadline_ms: u64,
    enabled: bool,
    body: impl FnOnce() -> T,
) -> T {
    if !enabled {
        return body();
    }
    let interval = Duration::from_millis((deadline_ms / 4).clamp(10, 1000));
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let (stream, write_lock, stop) =
            (Arc::clone(stream), Arc::clone(write_lock), Arc::clone(&stop));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let _guard = write_lock.lock().expect("write lock");
                if proto::send(&mut &*stream, &Message::Heartbeat).is_err() {
                    return; // session is gone; the main thread will notice
                }
            }
        })
    };
    let out = body();
    stop.store(true, Ordering::Release);
    let _ = beat.join();
    out
}

/// Serves one worker session over an established connection: handshake,
/// graph rebuild, then leases until the coordinator says `Bye` or the
/// connection ends. This is the whole worker — the `cleanml-worker` binary
/// is a thin argv wrapper, and tests drive the same function over loopback
/// threads.
pub fn run_worker(stream: TcpStream, name: &str, faults: &FaultPlan) -> io::Result<WorkerSummary> {
    let _ = stream.set_nodelay(true);
    proto::send(
        &mut &stream,
        &Message::Hello { version: PROTOCOL_VERSION, name: name.to_string() },
    )?;
    // The Welcome may be a while coming (a queued connection waits for the
    // coordinator's next run to start), so this wait probes rather than
    // blocks: a coordinator that vanished without closing the connection
    // eventually fails the probe write instead of pinning the worker
    // forever.
    let spec = loop {
        match proto::poll_recv(&stream, PROBE_INTERVAL) {
            Polled::Msg(Message::Welcome { spec }) => {
                break StudySpec::decode(&spec).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "undecodable study spec")
                })?;
            }
            Polled::Msg(Message::Reject { reason }) => {
                return Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
            Polled::Msg(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Welcome, got {other:?}"),
                ))
            }
            Polled::Pending => proto::send(&mut &stream, &Message::Heartbeat)?,
            Polled::Closed => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "coordinator closed before Welcome",
                ))
            }
        }
    };
    let (graph, _grids) = build_study_graph(&spec.error_types, &spec.cfg);
    let mut session = Session {
        stream: Arc::new(stream),
        write_lock: Arc::default(),
        nodes: graph.nodes,
        memo: HashMap::new(),
        summary: WorkerSummary::default(),
    };

    let mut leases_seen = 0usize;
    loop {
        let msg = match session.recv() {
            Ok(msg) => msg,
            Err(e) if session_over(&e) => return Ok(session.summary),
            Err(e) => return Err(e),
        };
        match msg {
            Message::Lease { id, key, deadline_ms, .. } => {
                leases_seen += 1;
                if faults.die_on_lease == Some(leases_seen) {
                    // Fault injection: vanish mid-lease, Done never sent.
                    return Ok(session.summary);
                }
                let id = id as usize;
                if session.nodes.get(id).map(|n| n.key) != Some(key) {
                    // Version skew: our graph is not the coordinator's.
                    session.send(&Message::Failed {
                        id: id as u64,
                        error: "study graph mismatch (worker/coordinator version skew?)".into(),
                    })?;
                    continue;
                }
                let outcome = {
                    let stream = Arc::clone(&session.stream);
                    let write_lock = Arc::clone(&session.write_lock);
                    let stall = faults.stall;
                    let heartbeats = !faults.mute_heartbeats;
                    with_heartbeats(&stream, &write_lock, deadline_ms, heartbeats, || {
                        if let Some(pause) = stall {
                            std::thread::sleep(pause);
                        }
                        match session.memo.get(&id).cloned() {
                            Some(a) => Ok(a),
                            None => session.compute(id),
                        }
                    })
                };
                match outcome {
                    Ok(artifact) => match artifact.encode() {
                        Some(payload) => {
                            session.send(&Message::Done { id: id as u64, payload })?;
                            session.summary.completed += 1;
                        }
                        None => session.send(&Message::Failed {
                            id: id as u64,
                            error: "leased artifact has no wire form".into(),
                        })?,
                    },
                    Err(TaskError::Task(error)) => {
                        session.send(&Message::Failed { id: id as u64, error })?;
                    }
                    Err(TaskError::Io(e)) if session_over(&e) => return Ok(session.summary),
                    Err(TaskError::Io(e)) => return Err(e),
                }
            }
            Message::Bye => return Ok(session.summary),
            Message::Heartbeat => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected message from coordinator: {other:?}"),
                ))
            }
        }
    }
}
