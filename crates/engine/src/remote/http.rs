//! A bounded HTTP/1.1 results gateway mounted on the hub listener.
//!
//! The hub classifies connections by their first bytes: CMAF frames go
//! to the worker/serving planes, and an HTTP `GET `/`POST` preamble
//! lands here. What started as a single-endpoint `/metrics` responder is
//! now the daemon's typed query surface — a PostgREST-flavoured, strictly
//! bounded subset:
//!
//! * `GET  /metrics` — Prometheus scrape (open, no auth);
//! * `GET  /studies[.json]` — list gateway submissions and their status;
//! * `POST /studies` — submit a study spec (form-encoded body:
//!   `errors=outliers,mislabels&profile=quick&splits=6&seed=1`), returns
//!   `{"id":N}` to poll;
//! * `GET  /studies/:id[.json]` — one submission's status/progress;
//! * `GET  /studies/:id/r1|r2|r3[.csv|.json]` — page result rows with
//!   `?model=…&dataset=…&error=…&order=…&limit=…&offset=…`.
//!
//! Everything follows the CMAF codec's fail-closed discipline: the
//! request head is capped at [`MAX_REQUEST_BYTES`] on **every** read,
//! bodies at [`MAX_BODY_BYTES`], the query string is parsed by a
//! hand-rolled, bounded, percent-decoding parser that rejects anything
//! it does not fully understand, and a malformed request closes the
//! connection without a response and without ever touching the pool.
//! Routes under `/studies` check the bearer token (when configured)
//! before the registry or the pool sees the request. This is still
//! deliberately not a web server: one request per connection,
//! `Connection: close`, no keep-alive, no TLS (front with a reverse
//! proxy for that).
//!
//! Filtering, ordering and paging run through the typed [`Select`]
//! struct over [`CleanMlDb`]'s canonical per-column row renderings, so
//! CSV pages are byte-identical slices of `r1_csv`/`r2_csv`/`r3_csv`
//! and the whole query layer is unit-testable without sockets.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cleanml_cleaning::ErrorType;
use cleanml_core::database::{csv_line, relation_columns};
use cleanml_core::{CleanMlDb, ExperimentConfig, Relation};

use crate::pool::PoolInner;
use crate::telemetry;

/// Hard cap on one request head (request line + headers), enforced on
/// every read — a head that terminates *beyond* the cap is as hostile
/// as one that never terminates.
pub(crate) const MAX_REQUEST_BYTES: usize = 4096;

/// Hard cap on a `POST` body (the form-encoded study spec).
pub(crate) const MAX_BODY_BYTES: usize = 16 * 1024;

/// Budget for the whole request to arrive.
const HTTP_TIMEOUT: Duration = Duration::from_secs(5);

/// Bounds on the query-string parser: a typed query over three small
/// relations never needs more than this.
pub const MAX_QUERY_PAIRS: usize = 32;
pub const MAX_QUERY_KEY_BYTES: usize = 64;
pub const MAX_QUERY_VALUE_BYTES: usize = 512;

/// Paging bounds: the default page and the largest page a client may
/// request (R1 of a full study is 1204 rows, so 10 000 covers any
/// whole-relation pull with room to spare).
pub const DEFAULT_PAGE_LIMIT: usize = 1000;
pub const MAX_PAGE_LIMIT: usize = 10_000;

/// Study-spec bounds mirrored from the CLI: splits below 2 cannot form
/// a paired test, and four digits of splits is a typo, not a study.
const MAX_SPLITS: usize = 1000;

// ---- gateway backend ------------------------------------------------

/// Observable state of one gateway submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyState {
    Running,
    Done,
    Failed(String),
}

/// One row of `GET /studies`.
#[derive(Debug, Clone)]
pub struct StudyStatus {
    pub id: u64,
    pub errors: Vec<String>,
    pub state: StudyState,
    pub done: u64,
    pub to_run: u64,
}

/// Execution profile of a submitted spec, mirroring the CLI's
/// `--quick`/`--standard`/`--paper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    Quick,
    Standard,
    Paper,
}

/// A parsed `POST /studies` body.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    pub error_types: Vec<ErrorType>,
    pub profile: Profile,
    pub splits: Option<usize>,
    pub seed: Option<u64>,
}

impl SubmitSpec {
    /// The [`ExperimentConfig`] this spec resolves to.
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg = match self.profile {
            Profile::Quick => ExperimentConfig::quick(),
            Profile::Standard => ExperimentConfig::standard(),
            Profile::Paper => ExperimentConfig::paper(),
        };
        if let Some(s) = self.splits {
            cfg.n_splits = s;
        }
        if let Some(s) = self.seed {
            cfg.base_seed = s;
        }
        cfg
    }
}

/// Why a gateway operation could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// No submission with that id.
    NotFound,
    /// The submission exists but has not finished.
    NotReady,
    /// Too many submissions in flight; retry later.
    Busy,
    /// The study itself failed.
    Failed(String),
    /// The engine behind the gateway is gone (shutdown race).
    Unavailable,
}

/// What the wire layer needs from the engine: a submission registry.
/// `study.rs` implements this on the resident core; tests can mock it.
pub trait GatewayBackend: Send + Sync {
    /// The configured bearer token, if auth is on.
    fn token(&self) -> Option<String>;
    /// All retained submissions, oldest first.
    fn list(&self) -> Vec<StudyStatus>;
    /// One submission's status.
    fn status(&self, id: u64) -> Option<StudyStatus>;
    /// Submit a spec through the resident core; returns an id to poll.
    fn submit(&self, spec: SubmitSpec) -> Result<u64, GatewayError>;
    /// A finished submission's relations.
    fn results(&self, id: u64) -> Result<Arc<CleanMlDb>, GatewayError>;
}

// ---- request model --------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HttpMethod {
    Get,
    Post,
}

/// A fully read, bounded request.
struct HttpRequest {
    method: HttpMethod,
    path: String,
    query: String,
    bearer: Option<String>,
    body: Vec<u8>,
}

/// What the gateway can do with a request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    Metrics,
    Studies(Format),
    Submit,
    Status(u64, Format),
    Rows(u64, Relation, Format),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Csv,
    Json,
}

impl Route {
    /// Index into the telemetry registry's per-route arrays
    /// ([`telemetry::HTTP_ROUTES`]).
    fn telemetry_index(self) -> usize {
        match self {
            Route::Metrics => 0,
            Route::Studies(_) => 1,
            Route::Submit => 2,
            Route::Status(..) => 3,
            Route::Rows(..) => 4,
        }
    }

    /// Whether the route sits behind the bearer token.
    fn needs_auth(self) -> bool {
        !matches!(self, Route::Metrics)
    }
}

// ---- entry point ----------------------------------------------------

/// Serves one already-classified HTTP connection end to end.
pub(crate) fn serve_http<A>(
    inner: &PoolInner<A>,
    gateway: Option<&Arc<dyn GatewayBackend>>,
    mut stream: TcpStream,
) {
    let t = telemetry::global();
    t.http_requests.inc();
    let Some(req) = read_request(&mut stream) else {
        t.http_rejected.inc();
        return; // fail closed: no response for malformed requests
    };
    let Some(route) = parse_route(req.method, &req.path) else {
        t.http_not_found.inc();
        respond(&mut stream, "404 Not Found", "text/plain; charset=utf-8", "not found\n");
        return;
    };
    // Auth before anything route-specific runs — a bad token must be
    // refused before the registry or the pool sees the request.
    if route.needs_auth() {
        if let Some(expected) = gateway.and_then(|g| g.token()) {
            if !token_matches(&expected, req.bearer.as_deref()) {
                t.http_unauthorized.inc();
                respond_with_headers(
                    &mut stream,
                    "401 Unauthorized",
                    &[("WWW-Authenticate", "Bearer")],
                    "application/json",
                    "{\"error\":\"missing or invalid bearer token\"}\n",
                );
                return;
            }
        }
    }
    let ri = route.telemetry_index();
    t.http_route_requests[ri].inc();
    let started = Instant::now();
    match route {
        Route::Metrics => serve_metrics(inner, &mut stream),
        Route::Studies(format) => serve_studies(gateway, &req, format, &mut stream),
        Route::Submit => serve_submit(gateway, &req, &mut stream),
        Route::Status(id, format) => serve_status(gateway, id, &req, format, &mut stream),
        Route::Rows(id, relation, format) => {
            serve_rows(gateway, id, relation, &req, format, &mut stream)
        }
    }
    t.http_route_seconds[ri].observe(started.elapsed());
}

fn serve_metrics<A>(inner: &PoolInner<A>, stream: &mut TcpStream) {
    let t = telemetry::global();
    // Store occupancy is an instantaneous property of the disk index,
    // not an event stream — refresh the gauges at scrape time.
    if let Some(store) = &inner.persist {
        t.store_bytes.set(store.total_bytes() as i64);
        t.store_entries.set(store.len() as i64);
    }
    let body = t.render();
    respond(stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
}

fn serve_studies(
    gateway: Option<&Arc<dyn GatewayBackend>>,
    req: &HttpRequest,
    _format: Format,
    stream: &mut TcpStream,
) {
    let Some(gateway) = gateway else {
        json_error(stream, "503 Service Unavailable", "results gateway unavailable");
        return;
    };
    match parse_query(&req.query) {
        Some(pairs) if pairs.is_empty() => {}
        _ => {
            json_error(stream, "400 Bad Request", "GET /studies takes no query parameters");
            return;
        }
    }
    let mut body = String::from("{\"studies\":[");
    for (i, s) in gateway.list().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&status_json(s));
    }
    body.push_str("]}\n");
    respond(stream, "200 OK", "application/json", &body);
}

fn serve_submit(
    gateway: Option<&Arc<dyn GatewayBackend>>,
    req: &HttpRequest,
    stream: &mut TcpStream,
) {
    let Some(gateway) = gateway else {
        json_error(stream, "503 Service Unavailable", "results gateway unavailable");
        return;
    };
    let Ok(body) = std::str::from_utf8(&req.body) else {
        json_error(stream, "400 Bad Request", "body is not UTF-8");
        return;
    };
    let Some(pairs) = parse_query(body.trim_end_matches(['\r', '\n'])) else {
        json_error(stream, "400 Bad Request", "malformed form body");
        return;
    };
    let spec = match parse_submit(&pairs) {
        Ok(spec) => spec,
        Err(e) => {
            json_error(stream, "400 Bad Request", &e);
            return;
        }
    };
    match gateway.submit(spec) {
        Ok(id) => {
            let body = format!("{{\"id\":{id},\"state\":\"running\"}}\n");
            respond(stream, "201 Created", "application/json", &body);
        }
        Err(GatewayError::Busy) => {
            json_error(stream, "429 Too Many Requests", "too many submissions in flight")
        }
        Err(GatewayError::Unavailable) => {
            json_error(stream, "503 Service Unavailable", "engine shutting down")
        }
        Err(e) => json_error(stream, "500 Internal Server Error", &format!("{e:?}")),
    }
}

fn serve_status(
    gateway: Option<&Arc<dyn GatewayBackend>>,
    id: u64,
    req: &HttpRequest,
    _format: Format,
    stream: &mut TcpStream,
) {
    let Some(gateway) = gateway else {
        json_error(stream, "503 Service Unavailable", "results gateway unavailable");
        return;
    };
    if parse_query(&req.query).is_none() {
        json_error(stream, "400 Bad Request", "malformed query string");
        return;
    }
    match gateway.status(id) {
        Some(s) => {
            let body = format!("{}\n", status_json(&s));
            respond(stream, "200 OK", "application/json", &body);
        }
        None => json_error(stream, "404 Not Found", &format!("no study {id}")),
    }
}

fn serve_rows(
    gateway: Option<&Arc<dyn GatewayBackend>>,
    id: u64,
    relation: Relation,
    req: &HttpRequest,
    format: Format,
    stream: &mut TcpStream,
) {
    let Some(gateway) = gateway else {
        json_error(stream, "503 Service Unavailable", "results gateway unavailable");
        return;
    };
    let Some(pairs) = parse_query(&req.query) else {
        json_error(stream, "400 Bad Request", "malformed query string");
        return;
    };
    let select = match Select::from_pairs(relation, &pairs) {
        Ok(s) => s,
        Err(e) => {
            json_error(stream, "400 Bad Request", &e);
            return;
        }
    };
    let db = match gateway.results(id) {
        Ok(db) => db,
        Err(GatewayError::NotFound) => {
            json_error(stream, "404 Not Found", &format!("no study {id}"));
            return;
        }
        Err(GatewayError::NotReady) => {
            json_error(stream, "409 Conflict", &format!("study {id} still running"));
            return;
        }
        Err(GatewayError::Failed(e)) => {
            json_error(stream, "500 Internal Server Error", &format!("study {id} failed: {e}"));
            return;
        }
        Err(e) => {
            json_error(stream, "503 Service Unavailable", &format!("{e:?}"));
            return;
        }
    };
    let rows = db.relation_values(relation);
    let (page, total) = select.apply(&rows);
    match format {
        Format::Csv => {
            let (columns, _) = relation_columns(relation);
            let mut body = columns.join(",");
            body.push('\n');
            for row in &page {
                body.push_str(&csv_line(row));
            }
            respond(stream, "200 OK", "text/csv; charset=utf-8", &body);
        }
        Format::Json => {
            let table = match relation {
                Relation::R1 => "r1",
                Relation::R2 => "r2",
                Relation::R3 => "r3",
            };
            let mut body = format!(
                "{{\"study\":{id},\"table\":\"{table}\",\"total\":{total},\"offset\":{},\"limit\":{},\"rows\":[",
                select.offset, select.limit
            );
            for (i, row) in page.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&row_json(relation, row));
            }
            body.push_str("]}\n");
            respond(stream, "200 OK", "application/json", &body);
        }
    }
}

// ---- reading and parsing the request --------------------------------

/// Result of scanning a partially read buffer for the head terminator,
/// with the size cap applied *before* any parsing. Pure, so the cap is
/// testable without sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeadScan {
    /// Head complete: byte length of the head, offset where the body starts.
    Complete { head: usize, body: usize },
    /// No terminator yet and still under the cap.
    Partial,
    /// Over [`MAX_REQUEST_BYTES`] — whether or not a terminator arrived.
    Oversized,
}

pub(crate) fn scan_head(buf: &[u8]) -> HeadScan {
    match find_head_end(buf) {
        // The cap applies to the head itself even when the terminator
        // has arrived: a 1 MiB request line followed by `\r\n\r\n` is
        // not a client, it is a memory probe.
        Some(end) if end > MAX_REQUEST_BYTES => HeadScan::Oversized,
        Some(end) => {
            let tlen = if buf[end..].starts_with(b"\r\n\r\n") { 4 } else { 2 };
            HeadScan::Complete { head: end, body: end + tlen }
        }
        None if buf.len() > MAX_REQUEST_BYTES => HeadScan::Oversized,
        None => HeadScan::Partial,
    }
}

/// Index of the end of the request head: the first `\r\n\r\n` (or bare
/// `\n\n` from hand-typed clients).
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n"))
}

/// Reads one bounded request (head and, for `POST`, body) under a
/// timeout. `None` on any violation.
fn read_request(stream: &mut TcpStream) -> Option<HttpRequest> {
    let _ = stream.set_read_timeout(Some(HTTP_TIMEOUT));
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let (head_end, body_start) = loop {
        match scan_head(&buf) {
            HeadScan::Complete { head, body } => break (head, body),
            HeadScan::Oversized => return None,
            HeadScan::Partial => {}
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None, // closed or timed out mid-head
            Ok(n) => n,
        };
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    if !head.is_ascii() {
        return None;
    }
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let (method, path, query) = parse_request_line(lines.next()?)?;
    let mut bearer = None;
    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("authorization") {
            let mut parts = value.splitn(2, ' ');
            if let (Some(scheme), Some(tok)) = (parts.next(), parts.next()) {
                if scheme.eq_ignore_ascii_case("bearer") {
                    bearer = Some(tok.trim().to_string());
                }
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok()?;
        }
    }
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    match method {
        HttpMethod::Get => body.clear(), // GETs carry no body here
        HttpMethod::Post => {
            if content_length > MAX_BODY_BYTES {
                return None;
            }
            while body.len() < content_length {
                let n = match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return None,
                    Ok(n) => n,
                };
                body.extend_from_slice(&chunk[..n]);
            }
            body.truncate(content_length);
        }
    }
    Some(HttpRequest { method, path, query, bearer, body })
}

/// Parses `GET|POST <path>[?<query>] HTTP/1.x` out of the head's first
/// line, splitting the query string off the path. `None` on anything
/// else — unknown method, wrong token count, non-HTTP version.
pub(crate) fn parse_request_line(line: &str) -> Option<(HttpMethod, String, String)> {
    if !line.is_ascii() {
        return None;
    }
    let mut tokens = line.split(' ').filter(|s| !s.is_empty());
    let (method, target, version) = (tokens.next()?, tokens.next()?, tokens.next()?);
    if tokens.next().is_some() || !version.starts_with("HTTP/1.") {
        return None;
    }
    let method = match method {
        "GET" => HttpMethod::Get,
        "POST" => HttpMethod::Post,
        _ => return None,
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return None;
    }
    Some((method, path.to_string(), query.to_string()))
}

/// Maps `(method, path)` onto the route table. `None` is a 404.
fn parse_route(method: HttpMethod, path: &str) -> Option<Route> {
    let (path, format) = split_format(path);
    let mut segs = path.strip_prefix('/')?.split('/');
    let route = match (method, segs.next()?, segs.next(), segs.next()) {
        (HttpMethod::Get, "metrics", None, None) if format.is_none() => Route::Metrics,
        (HttpMethod::Get, "studies", None, None) => Route::Studies(format.unwrap_or(Format::Json)),
        (HttpMethod::Post, "studies", None, None) if format.is_none() => Route::Submit,
        (HttpMethod::Get, "studies", Some(id), None) => {
            Route::Status(parse_id(id)?, format.unwrap_or(Format::Json))
        }
        (HttpMethod::Get, "studies", Some(id), Some(table)) => {
            if segs.next().is_some() {
                return None;
            }
            let relation = match table {
                "r1" => Relation::R1,
                "r2" => Relation::R2,
                "r3" => Relation::R3,
                _ => return None,
            };
            // Bare rows default to CSV: the canonical CleanML form.
            Route::Rows(parse_id(id)?, relation, format.unwrap_or(Format::Csv))
        }
        _ => return None,
    };
    Some(route)
}

/// Splits a trailing `.csv`/`.json` off the last path segment.
fn split_format(path: &str) -> (&str, Option<Format>) {
    if let Some(p) = path.strip_suffix(".csv") {
        (p, Some(Format::Csv))
    } else if let Some(p) = path.strip_suffix(".json") {
        (p, Some(Format::Json))
    } else {
        (path, None)
    }
}

/// Study ids are plain decimal, bounded to keep parsing trivial.
fn parse_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 12 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// Constant-time-ish bearer comparison: always scans the full supplied
/// token.
fn token_matches(expected: &str, got: Option<&str>) -> bool {
    let Some(got) = got else { return false };
    if got.len() != expected.len() {
        return false;
    }
    got.bytes().zip(expected.bytes()).fold(0u8, |acc, (a, b)| acc | (a ^ b)) == 0
}

// ---- query-string parser --------------------------------------------

/// Parses an `application/x-www-form-urlencoded` query string into
/// ordered key/value pairs, fail-closed: bounded pair/key/value sizes,
/// strict percent-decoding, empty segments and bare `&` rejected, raw
/// control or non-ASCII bytes rejected (they must be percent-encoded),
/// decoded bytes must form UTF-8. `None` means the request dies.
pub fn parse_query(raw: &str) -> Option<Vec<(String, String)>> {
    if raw.is_empty() {
        return Some(Vec::new());
    }
    if raw.len() > MAX_REQUEST_BYTES {
        return None;
    }
    let mut pairs = Vec::new();
    for segment in raw.split('&') {
        if segment.is_empty() {
            return None; // "a=1&&b=2", "&a=1", trailing "&"
        }
        let (k, v) = match segment.split_once('=') {
            Some((k, v)) => (k, v),
            None => (segment, ""),
        };
        let k = percent_decode(k)?;
        let v = percent_decode(v)?;
        if k.is_empty() || k.len() > MAX_QUERY_KEY_BYTES || v.len() > MAX_QUERY_VALUE_BYTES {
            return None;
        }
        pairs.push((k, v));
        if pairs.len() > MAX_QUERY_PAIRS {
            return None;
        }
    }
    Some(pairs)
}

/// Strict percent-decoding of one key or value: `%XX` escapes, `+` as
/// space; raw separators, spaces, control bytes and non-ASCII must have
/// been encoded, and the decoded bytes must be valid UTF-8.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_value(*bytes.get(i + 1)?)?;
                let lo = hex_value(*bytes.get(i + 2)?)?;
                out.push(hi << 4 | lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'&' | b'=' | b'#' | b' ' => return None,
            c if !(0x20..0x7f).contains(&c) => return None,
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Lossy name normalization shared by filters and the spec parser:
/// `logistic_regression`, `Logistic Regression` and `logisticregression`
/// all mean the same model.
pub fn normalize(s: &str) -> String {
    s.chars().filter(|c| c.is_ascii_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect()
}

// ---- typed select ---------------------------------------------------

/// A typed, bounded query over one relation's canonical row renderings:
/// equality filters (normalized for string columns, numeric for value
/// columns), a single order key, and limit/offset paging. Built from
/// parsed query pairs by [`Select::from_pairs`]; unknown columns and
/// out-of-bound limits are errors, not clamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub relation: Relation,
    /// `(column index, wanted value)` — all must match.
    pub filters: Vec<(usize, String)>,
    /// `(column index, descending)`.
    pub order: Option<(usize, bool)>,
    pub limit: usize,
    pub offset: usize,
}

impl Select {
    pub fn from_pairs(relation: Relation, pairs: &[(String, String)]) -> Result<Select, String> {
        let (columns, _) = relation_columns(relation);
        let mut select = Select {
            relation,
            filters: Vec::new(),
            order: None,
            limit: DEFAULT_PAGE_LIMIT,
            offset: 0,
        };
        for (key, value) in pairs {
            match key.as_str() {
                "limit" => {
                    let n: usize =
                        value.parse().map_err(|_| format!("limit: not a number: {value:?}"))?;
                    if n > MAX_PAGE_LIMIT {
                        return Err(format!("limit: {n} exceeds the {MAX_PAGE_LIMIT} cap"));
                    }
                    select.limit = n;
                }
                "offset" => {
                    select.offset =
                        value.parse().map_err(|_| format!("offset: not a number: {value:?}"))?;
                }
                "order" => {
                    if select.order.is_some() {
                        return Err("order: given twice".to_string());
                    }
                    let (name, desc) = match value.strip_suffix(".desc") {
                        Some(name) => (name, true),
                        None => (value.strip_suffix(".asc").unwrap_or(value), false),
                    };
                    let idx = column_index(columns, name)
                        .ok_or_else(|| format!("order: unknown column {name:?}"))?;
                    select.order = Some((idx, desc));
                }
                name => {
                    // Every other key is an equality filter on a column;
                    // `error` is accepted as shorthand for `error_type`.
                    let column = if name == "error" { "error_type" } else { name };
                    let idx = column_index(columns, column)
                        .ok_or_else(|| format!("unknown filter column {name:?}"))?;
                    select.filters.push((idx, value.clone()));
                }
            }
        }
        Ok(select)
    }

    /// Filters, orders and pages `rows` (each a canonical per-column
    /// rendering). Returns the page and the filtered total.
    pub fn apply<'r>(&self, rows: &'r [Vec<String>]) -> (Vec<&'r Vec<String>>, usize) {
        let (_, numeric_from) = relation_columns(self.relation);
        let mut hits: Vec<&Vec<String>> = rows
            .iter()
            .filter(|row| {
                self.filters.iter().all(|(i, want)| {
                    if *i >= numeric_from {
                        numbers_equal(&row[*i], want)
                    } else {
                        normalize(&row[*i]) == normalize(want)
                    }
                })
            })
            .collect();
        if let Some((i, desc)) = self.order {
            // Stable sort in both directions keeps canonical order for
            // ties; `.desc` flips the comparator rather than the result.
            if i >= numeric_from {
                hits.sort_by(|a, b| {
                    let (x, y) = (parse_num(&a[i]), parse_num(&b[i]));
                    if desc {
                        y.total_cmp(&x)
                    } else {
                        x.total_cmp(&y)
                    }
                });
            } else {
                hits.sort_by(|a, b| if desc { b[i].cmp(&a[i]) } else { a[i].cmp(&b[i]) });
            }
        }
        let total = hits.len();
        let page = hits.into_iter().skip(self.offset).take(self.limit).collect();
        (page, total)
    }
}

fn column_index(columns: &[&str], name: &str) -> Option<usize> {
    columns.iter().position(|c| *c == name)
}

fn parse_num(s: &str) -> f64 {
    s.parse::<f64>().unwrap_or(f64::NAN)
}

fn numbers_equal(a: &str, b: &str) -> bool {
    match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => x == y,
        _ => a == b,
    }
}

// ---- submit-spec parser ---------------------------------------------

/// Parses the form-encoded `POST /studies` body pairs into a spec:
/// `errors` (comma-separated error types, required), `profile`
/// (`quick`/`standard`/`paper`, default standard), `splits`, `seed`.
pub fn parse_submit(pairs: &[(String, String)]) -> Result<SubmitSpec, String> {
    let mut spec = SubmitSpec {
        error_types: Vec::new(),
        profile: Profile::Standard,
        splits: None,
        seed: None,
    };
    for (key, value) in pairs {
        match key.as_str() {
            "errors" => {
                for part in value.split(',') {
                    let et = parse_error_type(part)?;
                    if !spec.error_types.contains(&et) {
                        spec.error_types.push(et);
                    }
                }
            }
            "profile" => {
                spec.profile = match normalize(value).as_str() {
                    "quick" => Profile::Quick,
                    "standard" => Profile::Standard,
                    "paper" => Profile::Paper,
                    _ => return Err(format!("profile: unknown profile {value:?}")),
                };
            }
            "splits" => {
                let n: usize =
                    value.parse().map_err(|_| format!("splits: not a number: {value:?}"))?;
                if !(2..=MAX_SPLITS).contains(&n) {
                    return Err(format!("splits: {n} outside 2..={MAX_SPLITS}"));
                }
                spec.splits = Some(n);
            }
            "seed" => {
                spec.seed =
                    Some(value.parse().map_err(|_| format!("seed: not a number: {value:?}"))?);
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    if spec.error_types.is_empty() {
        return Err("errors: at least one error type required".to_string());
    }
    Ok(spec)
}

fn parse_error_type(s: &str) -> Result<ErrorType, String> {
    let want = normalize(s);
    ErrorType::all()
        .into_iter()
        .find(|et| normalize(et.name()) == want)
        .ok_or_else(|| format!("errors: unknown error type {s:?}"))
}

// ---- JSON rendering -------------------------------------------------

fn status_json(s: &StudyStatus) -> String {
    let mut out = format!("{{\"id\":{},\"errors\":[", s.id);
    for (i, e) in s.errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(e));
    }
    let state = match &s.state {
        StudyState::Running => "running",
        StudyState::Done => "done",
        StudyState::Failed(_) => "failed",
    };
    out.push_str(&format!("],\"state\":\"{state}\",\"done\":{},\"to_run\":{}", s.done, s.to_run));
    if let StudyState::Failed(e) = &s.state {
        out.push_str(&format!(",\"error\":{}", json_string(e)));
    }
    out.push('}');
    out
}

/// One result row as a JSON object, reusing the canonical per-column
/// renderings: value columns emit as raw JSON numbers (so `1e-8` stays
/// `1e-8`, byte-for-byte the CSV form), everything else as strings.
fn row_json(relation: Relation, row: &[String]) -> String {
    let (columns, numeric_from) = relation_columns(relation);
    let mut out = String::with_capacity(row.iter().map(|v| v.len() + 16).sum());
    out.push('{');
    for (i, (col, value)) in columns.iter().zip(row).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(col));
        out.push(':');
        if i >= numeric_from && is_json_number(value) {
            out.push_str(value);
        } else {
            out.push_str(&json_string(value));
        }
    }
    out.push('}');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Whether `s` is a valid JSON number literal (so non-finite renderings
/// like `inf`/`NaN` fall back to strings instead of corrupting output).
fn is_json_number(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0;
    if i < b.len() && b[i] == b'-' {
        i += 1;
    }
    // integer part: "0" or nonzero-led digits
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
        }
        _ => return false,
    }
    if i < b.len() && b[i] == b'.' {
        i += 1;
        let start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == start {
            return false;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        i += 1;
        if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
            i += 1;
        }
        let start = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        if i == start {
            return false;
        }
    }
    i == b.len()
}

// ---- responses ------------------------------------------------------

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    respond_with_headers(stream, status, &[], content_type, body);
}

fn respond_with_headers(
    stream: &mut TcpStream,
    status: &str,
    extra: &[(&str, &str)],
    content_type: &str,
    body: &str,
) {
    let mut head = format!("HTTP/1.1 {status}\r\n");
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Content-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    ));
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn json_error(stream: &mut TcpStream, status: &str, message: &str) {
    let body = format!("{{\"error\":{}}}\n", json_string(message));
    respond(stream, status, "application/json", &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_core::database::{r1_values, R1_COLUMNS};
    use cleanml_core::schema::{Detection, Evidence, Model, Repair, Row1, Scenario};
    use cleanml_stats::Flag;

    #[test]
    fn head_end_finds_crlf_and_bare_lf() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"), Some(23));
        assert_eq!(find_head_end(b"GET / HTTP/1.0\n\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
    }

    #[test]
    fn head_cap_applies_even_when_the_terminator_has_arrived() {
        // Regression: the old loop only checked MAX_REQUEST_BYTES when
        // the terminator had NOT been found, so an oversized head whose
        // \r\n\r\n finally arrived was happily parsed and served.
        let mut oversized = b"GET /metrics HTTP/1.1\r\nX-Pad: ".to_vec();
        oversized.extend(std::iter::repeat_n(b'a', MAX_REQUEST_BYTES));
        oversized.extend_from_slice(b"\r\n\r\n");
        assert!(find_head_end(&oversized).is_some(), "terminator is present");
        assert_eq!(scan_head(&oversized), HeadScan::Oversized);

        // Still-growing oversized heads are rejected too.
        let unterminated = vec![b'a'; MAX_REQUEST_BYTES + 1];
        assert_eq!(scan_head(&unterminated), HeadScan::Oversized);

        // A small, complete head passes and locates the body.
        let ok = b"POST /studies HTTP/1.1\r\nContent-Length: 2\r\n\r\nab";
        assert_eq!(scan_head(ok), HeadScan::Complete { head: 41, body: 45 });
        assert_eq!(&ok[45..], b"ab");
        assert_eq!(scan_head(b"GET / HT"), HeadScan::Partial);
    }

    #[test]
    fn request_line_splits_path_from_query() {
        // Regression: "GET /metrics?foo=1" used to 404 because the query
        // string was treated as part of the path.
        assert_eq!(
            parse_request_line("GET /metrics?foo=1 HTTP/1.1"),
            Some((HttpMethod::Get, "/metrics".into(), "foo=1".into()))
        );
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1"),
            Some((HttpMethod::Get, "/metrics".into(), String::new()))
        );
        assert_eq!(
            parse_request_line("POST /studies HTTP/1.1"),
            Some((HttpMethod::Post, "/studies".into(), String::new()))
        );
        assert_eq!(
            parse_request_line("GET /studies/7/r1.json?limit=10&offset=10 HTTP/1.0"),
            Some((HttpMethod::Get, "/studies/7/r1.json".into(), "limit=10&offset=10".into()))
        );
        assert_eq!(parse_request_line("GET /metrics"), None);
        assert_eq!(parse_request_line("GET /metrics HTTP/2"), None);
        assert_eq!(parse_request_line("GET /metrics HTTP/1.1 extra"), None);
        assert_eq!(parse_request_line("PUT /metrics HTTP/1.1"), None);
        assert_eq!(parse_request_line("GET metrics HTTP/1.1"), None);
        assert_eq!(parse_request_line(""), None);
    }

    #[test]
    fn routes_parse_and_reject() {
        assert_eq!(parse_route(HttpMethod::Get, "/metrics"), Some(Route::Metrics));
        assert_eq!(parse_route(HttpMethod::Get, "/studies"), Some(Route::Studies(Format::Json)));
        assert_eq!(
            parse_route(HttpMethod::Get, "/studies.json"),
            Some(Route::Studies(Format::Json))
        );
        assert_eq!(parse_route(HttpMethod::Post, "/studies"), Some(Route::Submit));
        assert_eq!(
            parse_route(HttpMethod::Get, "/studies/7"),
            Some(Route::Status(7, Format::Json))
        );
        assert_eq!(
            parse_route(HttpMethod::Get, "/studies/7/r1"),
            Some(Route::Rows(7, Relation::R1, Format::Csv))
        );
        assert_eq!(
            parse_route(HttpMethod::Get, "/studies/7/r2.csv"),
            Some(Route::Rows(7, Relation::R2, Format::Csv))
        );
        assert_eq!(
            parse_route(HttpMethod::Get, "/studies/7/r3.json"),
            Some(Route::Rows(7, Relation::R3, Format::Json))
        );
        assert_eq!(parse_route(HttpMethod::Post, "/metrics"), None);
        assert_eq!(parse_route(HttpMethod::Post, "/studies/7"), None);
        assert_eq!(parse_route(HttpMethod::Get, "/studies/7/r4"), None);
        assert_eq!(parse_route(HttpMethod::Get, "/studies/x/r1"), None);
        assert_eq!(parse_route(HttpMethod::Get, "/studies/7/r1/extra"), None);
        assert_eq!(parse_route(HttpMethod::Get, "/metrics.json"), None);
        assert_eq!(parse_route(HttpMethod::Get, "/"), None);
        assert_eq!(parse_route(HttpMethod::Get, "/studies/99999999999999999/r1"), None);
    }

    #[test]
    fn query_parser_is_strict_and_bounded() {
        assert_eq!(parse_query(""), Some(vec![]));
        assert_eq!(
            parse_query("model=logistic_regression&limit=10"),
            Some(vec![
                ("model".into(), "logistic_regression".into()),
                ("limit".into(), "10".into())
            ])
        );
        // percent-decoding and '+' as space
        assert_eq!(
            parse_query("dataset=US%20Census&model=Logistic+Regression"),
            Some(vec![
                ("dataset".into(), "US Census".into()),
                ("model".into(), "Logistic Regression".into())
            ])
        );
        // bare key is an empty value
        assert_eq!(parse_query("flag"), Some(vec![("flag".into(), String::new())]));
        // malformed: empty segments, empty keys, broken escapes
        assert_eq!(parse_query("a=1&&b=2"), None);
        assert_eq!(parse_query("&a=1"), None);
        assert_eq!(parse_query("a=1&"), None);
        assert_eq!(parse_query("=x"), None);
        assert_eq!(parse_query("a=%zz"), None);
        assert_eq!(parse_query("a=%2"), None);
        // bounds
        let many = (0..MAX_QUERY_PAIRS + 1).map(|i| format!("k{i}=v")).collect::<Vec<_>>();
        assert_eq!(parse_query(&many.join("&")), None);
        assert_eq!(parse_query(&format!("{}=v", "k".repeat(MAX_QUERY_KEY_BYTES + 1))), None);
        assert_eq!(parse_query(&format!("k={}", "v".repeat(MAX_QUERY_VALUE_BYTES + 1))), None);
        // raw bytes that must be encoded
        assert_eq!(percent_decode("a b"), None);
        assert_eq!(percent_decode("a\tb"), None);
        assert_eq!(percent_decode("a#b"), None);
        assert_eq!(percent_decode("%e9"), None); // lone 0xE9 is not UTF-8
        assert_eq!(percent_decode("%C3%A9"), Some("é".into()));
    }

    fn sample_rows() -> Vec<Vec<String>> {
        fn row(dataset: &str, model: Model, p: f64) -> Row1 {
            Row1 {
                dataset: dataset.into(),
                error_type: ErrorType::Outliers,
                detection: Detection::Iqr,
                repair: Repair::ImputeMean,
                model,
                scenario: Scenario::BD,
                flag: Flag::Positive,
                evidence: Evidence {
                    p_two: p,
                    p_upper: p / 2.0,
                    p_lower: 1.0 - p / 2.0,
                    mean_before: 0.8,
                    mean_after: 0.85,
                    n_splits: 6,
                },
            }
        }
        [
            row("EEG", Model::LogisticRegression, 0.5),
            row("Sensor", Model::LogisticRegression, 1e-8),
            row("EEG", Model::Knn, 0.03),
            row("Sensor", Model::Knn, 1e-6),
        ]
        .iter()
        .map(|r| r1_values(r).to_vec())
        .collect()
    }

    #[test]
    fn select_filters_orders_and_pages() {
        let rows = sample_rows();
        let pairs = parse_query("model=logistic_regression").unwrap();
        let select = Select::from_pairs(Relation::R1, &pairs).unwrap();
        let (page, total) = select.apply(&rows);
        assert_eq!(total, 2);
        assert_eq!(page.len(), 2);
        assert!(page.iter().all(|r| r[4] == "Logistic Regression"));

        // `error` is shorthand for `error_type`, normalized matching
        let pairs = parse_query("error=outliers&dataset=eeg").unwrap();
        let (page, total) = Select::from_pairs(Relation::R1, &pairs).unwrap().apply(&rows);
        assert_eq!((page.len(), total), (2, 2));

        // numeric ordering on p_two, descending
        let pairs = parse_query("order=p_two.desc").unwrap();
        let (page, _) = Select::from_pairs(Relation::R1, &pairs).unwrap().apply(&rows);
        let ps: Vec<&str> = page.iter().map(|r| r[7].as_str()).collect();
        assert_eq!(ps, ["5e-1", "3e-2", "1e-6", "1e-8"]);

        // paging slices the filtered set
        let pairs = parse_query("order=p_two&limit=2&offset=1").unwrap();
        let (page, total) = Select::from_pairs(Relation::R1, &pairs).unwrap().apply(&rows);
        assert_eq!(total, 4);
        let ps: Vec<&str> = page.iter().map(|r| r[7].as_str()).collect();
        assert_eq!(ps, ["1e-6", "3e-2"]);

        // numeric filter matches by value, not by spelling
        let pairs = parse_query("p_two=0.5").unwrap();
        let (page, _) = Select::from_pairs(Relation::R1, &pairs).unwrap().apply(&rows);
        assert_eq!(page.len(), 1);

        // errors, not clamps
        assert!(Select::from_pairs(Relation::R1, &parse_query("limit=10001").unwrap()).is_err());
        assert!(Select::from_pairs(Relation::R1, &parse_query("bogus=1").unwrap()).is_err());
        assert!(Select::from_pairs(Relation::R2, &parse_query("model=knn").unwrap()).is_err());
        assert!(Select::from_pairs(Relation::R1, &parse_query("order=bogus").unwrap()).is_err());
        assert!(Select::from_pairs(Relation::R1, &parse_query("order=flag&order=flag").unwrap())
            .is_err());
    }

    #[test]
    fn submit_spec_parses_and_fails_closed() {
        let pairs = parse_query("errors=outliers,missing_values&profile=quick&splits=6").unwrap();
        let spec = parse_submit(&pairs).unwrap();
        assert_eq!(spec.error_types, vec![ErrorType::Outliers, ErrorType::MissingValues]);
        assert_eq!(spec.profile, Profile::Quick);
        let cfg = spec.config();
        assert_eq!(cfg.n_splits, 6);

        assert!(parse_submit(&parse_query("profile=quick").unwrap()).is_err()); // no errors
        assert!(parse_submit(&parse_query("errors=bogus").unwrap()).is_err());
        assert!(parse_submit(&parse_query("errors=outliers&splits=1").unwrap()).is_err());
        assert!(parse_submit(&parse_query("errors=outliers&profile=bogus").unwrap()).is_err());
        assert!(parse_submit(&parse_query("errors=outliers&extra=1").unwrap()).is_err());
    }

    #[test]
    fn json_rows_reuse_canonical_renderings() {
        let rows = sample_rows();
        let json = row_json(Relation::R1, &rows[1]);
        assert!(json.contains("\"dataset\":\"Sensor\""));
        assert!(json.contains("\"p_two\":1e-8"), "{json}");
        assert!(json.contains("\"n_splits\":6"));
        // column count matches the schema
        assert!(json.matches(':').count() >= R1_COLUMNS.len());

        assert!(is_json_number("1e-8"));
        assert!(is_json_number("9.99999995e-1"));
        assert!(is_json_number("-0.5"));
        assert!(is_json_number("20"));
        assert!(!is_json_number("inf"));
        assert!(!is_json_number("NaN"));
        assert!(!is_json_number("01"));
        assert!(!is_json_number("1."));
        assert!(!is_json_number("1e"));
        assert!(!is_json_number(""));
    }

    #[test]
    fn bearer_tokens_compare_strictly() {
        assert!(token_matches("secret", Some("secret")));
        assert!(!token_matches("secret", Some("Secret")));
        assert!(!token_matches("secret", Some("secret2")));
        assert!(!token_matches("secret", Some("")));
        assert!(!token_matches("secret", None));
    }
}
