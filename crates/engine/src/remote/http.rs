//! A minimal, bounded HTTP/1.1 responder for `GET /metrics`.
//!
//! The hub listener classifies connections by their first bytes: CMAF
//! frames go to the worker/serving planes, and an HTTP `GET ` preamble
//! lands here. The responder follows the same fail-closed discipline as
//! the CMAF codec: the request head is capped at [`MAX_REQUEST_BYTES`],
//! read under a timeout, and anything malformed — oversized head,
//! missing terminator, non-GET method, junk request line — closes the
//! connection without a response and without ever touching the pool.
//! Only `/metrics` is served; every other path is a 404. This is
//! deliberately not a web server: one request per connection,
//! `Connection: close`, no keep-alive, no body parsing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::pool::PoolInner;
use crate::telemetry;

/// Hard cap on one request head (request line + headers). A scrape's
/// head is well under 1 KiB; anything bigger is not a scraper.
pub(crate) const MAX_REQUEST_BYTES: usize = 4096;

/// Budget for the whole request head to arrive.
const HTTP_TIMEOUT: Duration = Duration::from_secs(5);

/// Serves one already-classified HTTP connection end to end.
pub(crate) fn serve_http<A>(inner: &PoolInner<A>, mut stream: TcpStream) {
    let t = telemetry::global();
    t.http_requests.inc();
    let Some(path) = read_request_path(&mut stream) else {
        t.http_rejected.inc();
        return; // fail closed: no response for malformed requests
    };
    if path != "/metrics" {
        respond(&mut stream, "404 Not Found", "text/plain; charset=utf-8", "not found\n");
        return;
    }
    // Store occupancy is an instantaneous property of the disk index,
    // not an event stream — refresh the gauges at scrape time.
    if let Some(store) = &inner.persist {
        t.store_bytes.set(store.total_bytes() as i64);
        t.store_entries.set(store.len() as i64);
    }
    let body = t.render();
    respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
}

/// Reads the request head (bounded, under a timeout) and parses the
/// request line. `None` on any violation.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(HTTP_TIMEOUT));
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None, // closed or timed out mid-head
            Ok(n) => n,
        };
        buf.extend_from_slice(&chunk[..n]);
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return None; // oversized head: not a scraper
        }
    };
    parse_request_line(&buf[..head_end])
}

/// Index of the end of the request head: the first `\r\n\r\n` (or bare
/// `\n\n` from hand-typed clients).
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n"))
}

/// Parses `GET <path> HTTP/1.x` out of the head's first line. `None` on
/// anything else — wrong method, wrong token count, non-HTTP version,
/// non-ASCII bytes.
pub(crate) fn parse_request_line(head: &[u8]) -> Option<String> {
    let head = std::str::from_utf8(head).ok()?;
    let line = head.split(['\r', '\n']).next()?;
    if !line.is_ascii() {
        return None;
    }
    let mut tokens = line.split(' ').filter(|s| !s.is_empty());
    let (method, path, version) = (tokens.next()?, tokens.next()?, tokens.next()?);
    if tokens.next().is_some() || method != "GET" || !version.starts_with("HTTP/1.") {
        return None;
    }
    if !path.starts_with('/') {
        return None;
    }
    Some(path.to_string())
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_finds_crlf_and_bare_lf() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"), Some(23));
        assert_eq!(find_head_end(b"GET / HTTP/1.0\n\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: x\r\n"), None);
    }

    #[test]
    fn request_line_parses_only_well_formed_gets() {
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.1\r\nHost: x"),
            Some("/metrics".to_string())
        );
        assert_eq!(parse_request_line(b"GET / HTTP/1.0"), Some("/".to_string()));
        assert_eq!(parse_request_line(b"POST /metrics HTTP/1.1"), None);
        assert_eq!(parse_request_line(b"GET /metrics"), None);
        assert_eq!(parse_request_line(b"GET /metrics HTTP/2"), None);
        assert_eq!(parse_request_line(b"GET /metrics HTTP/1.1 extra"), None);
        assert_eq!(parse_request_line(b"GET metrics HTTP/1.1"), None);
        assert_eq!(parse_request_line(b"\xff\xfe\xfd"), None);
        assert_eq!(parse_request_line(b""), None);
    }
}
