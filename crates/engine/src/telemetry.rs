//! Process-wide telemetry: atomic counters, gauges, fixed-bucket latency
//! histograms, and an optional Chrome trace-event span buffer.
//!
//! Everything here is zero-dependency and cheap enough for the hot path:
//! a counter bump is one relaxed `fetch_add`, a histogram observation is
//! a linear scan over ten bounds plus two `fetch_add`s. Instrumentation
//! sites gate on [`Telemetry::enabled`], so a no-telemetry run (used by
//! `cleanml-bench-trajectory` to measure instrumentation overhead)
//! executes none of it.
//!
//! Two outputs hang off the same registry:
//!
//! * [`Telemetry::render`] — Prometheus text exposition format
//!   (version 0.0.4), served by the hub's bounded `GET /metrics`
//!   responder;
//! * [`Telemetry::write_trace`] — Chrome trace-event JSON
//!   (`chrome://tracing`-loadable), fed by per-task spans recorded in
//!   the worker pool and the remote lease loop, enabled with
//!   `--trace-out FILE`.
//!
//! The registry is a process singleton ([`global`]): instrumentation in
//! generic code (`DiskStore`, `Retention`, the pool) reaches it without
//! threading a handle through every constructor. Counters are cumulative
//! (Prometheus semantics); per-run figures are taken as deltas between
//! two [`StatsSnapshot`]s.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::event::TaskKind;
use crate::pool::kind_index;

/// Number of task kinds; every per-kind array in the registry has this
/// length, indexed by [`kind_index`].
pub const NKINDS: usize = TaskKind::ALL.len();

/// The HTTP gateway's route set, in array-index order. Per-route request
/// counters and latency histograms are indexed by position; `remote/http.rs`
/// maps its `Route` enum onto these slots. The accounting invariant is
///   http_requests = http_rejected + http_not_found + http_unauthorized
///                 + Σ http_route_requests
/// — every request that reaches the HTTP plane lands in exactly one bucket.
pub const HTTP_ROUTES: [&str; 5] = ["metrics", "studies", "submit", "status", "rows"];
pub const NROUTES: usize = HTTP_ROUTES.len();

/// Histogram bucket upper bounds, in seconds. Fixed at compile time so
/// observation is a branch-free-ish scan; chosen to straddle the repo's
/// task-cost spread — the 100 µs / 250 µs / 500 µs buckets resolve the
/// sub-millisecond kinds (Evaluate, Reduce) whose quantiles a 1 ms floor
/// would flatten to a meaningless "1.0", and the 150 ms – 750 ms ladder
/// resolves the Clean/Train tail that a bare 0.1 → 0.5 → 1.0 jump
/// quantized to exactly "100.0" / "1000.0" in `BENCH_quick.json`.
pub const BUCKET_BOUNDS_SECS: [f64; 17] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.15, 0.25, 0.35, 0.5, 0.75, 1.0, 5.0,
    10.0, 60.0,
];

const BOUNDS_US: [u64; 17] = [
    100, 250, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 150_000, 250_000, 350_000, 500_000,
    750_000, 1_000_000, 5_000_000, 10_000_000, 60_000_000,
];

const NBUCKETS: usize = BUCKET_BOUNDS_SECS.len();

/// Cap on buffered trace events so a pathological run cannot eat the
/// heap; overflow is counted, not silently dropped.
const MAX_TRACE_EVENTS: usize = 1 << 20;

/// Monotonic counter. Relaxed ordering: telemetry tolerates torn
/// cross-counter reads, it never tolerates lost increments.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (active leases, connected workers, ...).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket latency histogram. Buckets store per-bucket (not
/// cumulative) counts; cumulative sums are computed at render time, so
/// the hot path touches exactly one bucket per observation.
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Point summary of a histogram, for `BENCH_quick.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum_micros: u64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
}

impl HistogramSummary {
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64 / 1000.0
        }
    }
}

impl Histogram {
    pub fn observe(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        for (i, &bound) in BOUNDS_US.iter().enumerate() {
            if us <= bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        // Observations above the last bound land only in the implicit
        // +Inf bucket, i.e. in `count`.
        self.sum_micros.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Cumulative per-bound counts, Prometheus `le` semantics. The +Inf
    /// bucket is [`Histogram::count`].
    pub fn cumulative(&self) -> [u64; NBUCKETS] {
        let mut cum = [0u64; NBUCKETS];
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            cum[i] = acc;
        }
        cum
    }

    /// Upper-bound quantile estimate from the buckets: the smallest
    /// bucket bound covering rank `q`. Observations past the last bound
    /// fall back to max(last bound, mean).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil()).max(1.0) as u64;
        let cum = self.cumulative();
        for (i, &c) in cum.iter().enumerate() {
            if c >= rank {
                return BUCKET_BOUNDS_SECS[i] * 1000.0;
            }
        }
        let mean_ms = self.sum_micros() as f64 / total as f64 / 1000.0;
        f64::max(BUCKET_BOUNDS_SECS[NBUCKETS - 1] * 1000.0, mean_ms)
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum_micros: self.sum_micros(),
            p50_ms: self.quantile_ms(0.50),
            p90_ms: self.quantile_ms(0.90),
            p99_ms: self.quantile_ms(0.99),
        }
    }
}

/// Entries kept in the slowest-tasks table.
pub const SLOW_TABLE_LEN: usize = 8;

/// One row of the slowest-tasks table: enough to name the straggler
/// (what kind of task, which scheduling class, how long) without holding
/// a reference into the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowTask {
    pub label: String,
    pub kind: &'static str,
    pub class: String,
    pub dur_us: u64,
}

/// One buffered Chrome trace event (`ph:"X"` complete spans only).
struct TraceEvent {
    name: String,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    args: Vec<(&'static str, String)>,
}

/// Snapshot of the counters that feed the `--cache-stats` line; per-run
/// figures are the difference of two snapshots ([`StatsSnapshot::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub memory_hits: u64,
    pub disk_hits: u64,
    pub misses: u64,
    pub store_writes: u64,
    pub store_evictions: u64,
    pub executed_local: [u64; NKINDS],
    pub executed_remote: [u64; NKINDS],
    pub workers_joined: u64,
    pub releases: u64,
    /// Candidate×fold model fits executed by CV scoring (bridged from the
    /// `cleanml-ml` fold plane; the ml crate cannot depend on the engine).
    pub cv_fits: u64,
    /// Fold views served from an already-materialized `FoldPlan` slot.
    pub fold_reuse: u64,
}

impl StatsSnapshot {
    /// Counter deltas since `earlier` (saturating, so a reader racing
    /// concurrent increments never underflows).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            memory_hits: self.memory_hits.saturating_sub(earlier.memory_hits),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            store_writes: self.store_writes.saturating_sub(earlier.store_writes),
            store_evictions: self.store_evictions.saturating_sub(earlier.store_evictions),
            executed_local: std::array::from_fn(|i| {
                self.executed_local[i].saturating_sub(earlier.executed_local[i])
            }),
            executed_remote: std::array::from_fn(|i| {
                self.executed_remote[i].saturating_sub(earlier.executed_remote[i])
            }),
            workers_joined: self.workers_joined.saturating_sub(earlier.workers_joined),
            releases: self.releases.saturating_sub(earlier.releases),
            cv_fits: self.cv_fits.saturating_sub(earlier.cv_fits),
            fold_reuse: self.fold_reuse.saturating_sub(earlier.fold_reuse),
        }
    }
}

/// The registry. One instance per process ([`global`]); tests that need
/// isolation construct their own.
pub struct Telemetry {
    enabled: AtomicBool,

    // Task plane (pool.rs).
    pub(crate) tasks_local: [Counter; NKINDS],
    pub(crate) tasks_remote: [Counter; NKINDS],
    pub(crate) tasks_failed: Counter,
    pub(crate) task_seconds: [Histogram; NKINDS],
    pub(crate) queue_seconds: [Histogram; NKINDS],
    pub(crate) persist_seconds: Histogram,

    // Cache plane (cache.rs).
    pub(crate) cache_memory_hits: Counter,
    pub(crate) cache_disk_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) memo_evictions: Counter,
    pub(crate) warm_evictions: Counter,
    pub(crate) store_writes: Counter,
    pub(crate) store_written_bytes: Counter,
    pub(crate) store_evictions: Counter,
    pub(crate) store_evicted_bytes: Counter,
    pub(crate) store_gc: Counter,
    pub(crate) store_gc_bytes: Counter,
    pub(crate) store_bytes: Gauge,
    pub(crate) store_entries: Gauge,

    // Remote plane (remote/coordinator.rs).
    pub(crate) leases_issued: Counter,
    pub(crate) leases_renewed: Counter,
    pub(crate) leases_expired: Counter,
    pub(crate) leases_reinjected: Counter,
    pub(crate) leases_active: Gauge,
    pub(crate) lease_seconds: Histogram,
    pub(crate) heartbeats: Counter,
    pub(crate) fetch_bytes_in: Counter,
    pub(crate) fetch_bytes_out: Counter,
    pub(crate) workers_joined: Counter,
    pub(crate) workers_connected: Gauge,

    // Serving plane (serve.rs) and the /metrics responder itself.
    pub(crate) submissions_study: Counter,
    pub(crate) submissions_cell: Counter,
    pub(crate) submissions_active: Gauge,
    pub(crate) warm_answers: Counter,
    pub(crate) cancellations: Counter,
    pub(crate) events_dropped: Counter,
    pub(crate) http_requests: Counter,
    pub(crate) http_rejected: Counter,
    pub(crate) http_not_found: Counter,
    pub(crate) http_unauthorized: Counter,
    pub(crate) http_route_requests: [Counter; NROUTES],
    pub(crate) http_route_seconds: [Histogram; NROUTES],

    // Zero-copy artifact plane (cache.rs) and nested subwork (pool.rs).
    pub(crate) resident_bytes: Gauge,
    pub(crate) handle_shares: Counter,
    pub(crate) deep_copies_avoided: Counter,
    pub(crate) subtasks_executed: Counter,
    pub(crate) subwork_batches: Counter,

    /// Top-[`SLOW_TABLE_LEN`] slowest completed tasks, descending by
    /// duration. Reset per run by the CLI/bench harness.
    slow: Mutex<Vec<SlowTask>>,

    // Trace-span buffer.
    epoch: Instant,
    tracing: AtomicBool,
    trace: Mutex<Vec<TraceEvent>>,
    trace_overflow: Counter,
    trace_tid_seq: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(true),
            tasks_local: std::array::from_fn(|_| Counter::default()),
            tasks_remote: std::array::from_fn(|_| Counter::default()),
            tasks_failed: Counter::default(),
            task_seconds: std::array::from_fn(|_| Histogram::default()),
            queue_seconds: std::array::from_fn(|_| Histogram::default()),
            persist_seconds: Histogram::default(),
            cache_memory_hits: Counter::default(),
            cache_disk_hits: Counter::default(),
            cache_misses: Counter::default(),
            memo_evictions: Counter::default(),
            warm_evictions: Counter::default(),
            store_writes: Counter::default(),
            store_written_bytes: Counter::default(),
            store_evictions: Counter::default(),
            store_evicted_bytes: Counter::default(),
            store_gc: Counter::default(),
            store_gc_bytes: Counter::default(),
            store_bytes: Gauge::default(),
            store_entries: Gauge::default(),
            leases_issued: Counter::default(),
            leases_renewed: Counter::default(),
            leases_expired: Counter::default(),
            leases_reinjected: Counter::default(),
            leases_active: Gauge::default(),
            lease_seconds: Histogram::default(),
            heartbeats: Counter::default(),
            fetch_bytes_in: Counter::default(),
            fetch_bytes_out: Counter::default(),
            workers_joined: Counter::default(),
            workers_connected: Gauge::default(),
            submissions_study: Counter::default(),
            submissions_cell: Counter::default(),
            submissions_active: Gauge::default(),
            warm_answers: Counter::default(),
            cancellations: Counter::default(),
            events_dropped: Counter::default(),
            http_requests: Counter::default(),
            http_rejected: Counter::default(),
            http_not_found: Counter::default(),
            http_unauthorized: Counter::default(),
            http_route_requests: std::array::from_fn(|_| Counter::default()),
            http_route_seconds: std::array::from_fn(|_| Histogram::default()),
            resident_bytes: Gauge::default(),
            handle_shares: Counter::default(),
            deep_copies_avoided: Counter::default(),
            subtasks_executed: Counter::default(),
            subwork_batches: Counter::default(),
            slow: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            tracing: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            trace_overflow: Counter::default(),
            trace_tid_seq: AtomicU64::new(0),
        }
    }

    /// Whether instrumentation sites should record. Checked (relaxed)
    /// at every hot-path site; flipping it off yields the no-telemetry
    /// baseline for overhead measurement.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.get()
    }

    /// Per-kind execute-latency summary (local executions only).
    pub fn task_latency(&self, kind: TaskKind) -> HistogramSummary {
        self.task_seconds[kind_index(kind)].summary()
    }

    /// Tasks executed for `kind`, `(local, remote)`.
    pub fn tasks_executed(&self, kind: TaskKind) -> (u64, u64) {
        let i = kind_index(kind);
        (self.tasks_local[i].get(), self.tasks_remote[i].get())
    }

    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot {
            memory_hits: self.cache_memory_hits.get(),
            disk_hits: self.cache_disk_hits.get(),
            misses: self.cache_misses.get(),
            store_writes: self.store_writes.get(),
            store_evictions: self.store_evictions.get(),
            workers_joined: self.workers_joined.get(),
            releases: self.leases_reinjected.get(),
            cv_fits: cleanml_ml::cv::cv_fits_total(),
            fold_reuse: cleanml_ml::cv::fold_reuse_total(),
            ..StatsSnapshot::default()
        };
        for i in 0..NKINDS {
            s.executed_local[i] = self.tasks_local[i].get();
            s.executed_remote[i] = self.tasks_remote[i].get();
        }
        s
    }

    // ---- slowest-tasks table ----------------------------------------

    /// Offers a completed task to the top-[`SLOW_TABLE_LEN`] slowest
    /// table. Cheap rejection first: a task faster than the current
    /// slowest-table floor takes the lock only when the table is short.
    pub(crate) fn record_slow_task(
        &self,
        label: &str,
        kind: &'static str,
        class: &str,
        dur: Duration,
    ) {
        if !self.enabled() {
            return;
        }
        let dur_us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let mut slow = self.slow.lock().expect("slow lock");
        if slow.len() == SLOW_TABLE_LEN && slow.last().is_some_and(|t| t.dur_us >= dur_us) {
            return;
        }
        let row = SlowTask { label: label.to_string(), kind, class: class.to_string(), dur_us };
        let at = slow.partition_point(|t| t.dur_us >= dur_us);
        slow.insert(at, row);
        slow.truncate(SLOW_TABLE_LEN);
    }

    /// The slowest completed tasks since the last reset, descending.
    pub fn slowest_tasks(&self) -> Vec<SlowTask> {
        self.slow.lock().expect("slow lock").clone()
    }

    /// Clears the slowest-tasks table (run boundary).
    pub fn reset_slow_tasks(&self) {
        self.slow.lock().expect("slow lock").clear();
    }

    // ---- trace spans ------------------------------------------------

    /// Start buffering spans. There is deliberately no `stop`: tracing
    /// is a per-process run mode chosen at startup (`--trace-out`).
    pub fn start_tracing(&self) {
        self.tracing.store(true, Ordering::Relaxed);
    }

    pub fn tracing_on(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// A fresh synthetic thread id for labelling remote-lease spans.
    pub(crate) fn next_remote_tid(&self) -> u64 {
        1000 + self.trace_tid_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one complete (`ph:"X"`) span. No-op unless tracing is on.
    pub(crate) fn span(
        &self,
        name: &str,
        cat: &'static str,
        start: Instant,
        dur: Duration,
        tid: u64,
        args: Vec<(&'static str, String)>,
    ) {
        if !self.tracing_on() {
            return;
        }
        let ts_us = u64::try_from(
            start.checked_duration_since(self.epoch).unwrap_or(Duration::ZERO).as_micros(),
        )
        .unwrap_or(u64::MAX);
        let dur_us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let mut buf = self.trace.lock().expect("trace lock");
        if buf.len() >= MAX_TRACE_EVENTS {
            self.trace_overflow.inc();
            return;
        }
        buf.push(TraceEvent { name: name.to_string(), cat, ts_us, dur_us, tid, args });
    }

    /// Serialise the span buffer as Chrome trace-event JSON. Returns the
    /// number of events written.
    pub fn write_trace(&self, path: &Path) -> io::Result<usize> {
        let events = self.trace.lock().expect("trace lock");
        let mut out = String::with_capacity(64 + events.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape(&e.name, &mut out);
            out.push_str("\",\"cat\":\"");
            json_escape(e.cat, &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
                e.ts_us, e.dur_us, e.tid
            );
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(k, &mut out);
                out.push_str("\":\"");
                json_escape(v, &mut out);
                out.push('"');
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        std::fs::write(path, out)?;
        Ok(events.len())
    }

    // ---- Prometheus text exposition ---------------------------------

    /// Render every metric in Prometheus text exposition format 0.0.4.
    /// Per-kind families render all kinds (zeros included) so scrapers
    /// see stable series from the first scrape.
    pub fn render(&self) -> String {
        let mut o = String::with_capacity(8 * 1024);

        o.push_str("# TYPE cleanml_tasks_executed_total counter\n");
        for (i, kind) in TaskKind::ALL.iter().enumerate() {
            sample(
                &mut o,
                "cleanml_tasks_executed_total",
                &[("kind", kind.name()), ("site", "local")],
                Value::U64(self.tasks_local[i].get()),
            );
            sample(
                &mut o,
                "cleanml_tasks_executed_total",
                &[("kind", kind.name()), ("site", "remote")],
                Value::U64(self.tasks_remote[i].get()),
            );
        }
        counter(&mut o, "cleanml_tasks_failed_total", &self.tasks_failed);

        histogram_family(&mut o, "cleanml_task_seconds", "kind", &self.task_seconds);
        histogram_family(&mut o, "cleanml_task_queue_seconds", "kind", &self.queue_seconds);
        plain_histogram(&mut o, "cleanml_task_persist_seconds", &self.persist_seconds);

        o.push_str("# TYPE cleanml_cache_hits_total counter\n");
        sample(
            &mut o,
            "cleanml_cache_hits_total",
            &[("layer", "memory")],
            Value::U64(self.cache_memory_hits.get()),
        );
        sample(
            &mut o,
            "cleanml_cache_hits_total",
            &[("layer", "disk")],
            Value::U64(self.cache_disk_hits.get()),
        );
        counter(&mut o, "cleanml_cache_misses_total", &self.cache_misses);
        counter(&mut o, "cleanml_memo_evictions_total", &self.memo_evictions);
        counter(&mut o, "cleanml_warm_evictions_total", &self.warm_evictions);
        counter(&mut o, "cleanml_store_writes_total", &self.store_writes);
        counter(&mut o, "cleanml_store_written_bytes_total", &self.store_written_bytes);
        counter(&mut o, "cleanml_store_evictions_total", &self.store_evictions);
        counter(&mut o, "cleanml_store_evicted_bytes_total", &self.store_evicted_bytes);
        counter(&mut o, "cleanml_store_gc_total", &self.store_gc);
        counter(&mut o, "cleanml_store_gc_bytes_total", &self.store_gc_bytes);
        gauge(&mut o, "cleanml_store_bytes", &self.store_bytes);
        gauge(&mut o, "cleanml_store_entries", &self.store_entries);

        counter(&mut o, "cleanml_leases_issued_total", &self.leases_issued);
        counter(&mut o, "cleanml_leases_renewed_total", &self.leases_renewed);
        counter(&mut o, "cleanml_leases_expired_total", &self.leases_expired);
        counter(&mut o, "cleanml_leases_reinjected_total", &self.leases_reinjected);
        gauge(&mut o, "cleanml_leases_active", &self.leases_active);
        plain_histogram(&mut o, "cleanml_lease_seconds", &self.lease_seconds);
        counter(&mut o, "cleanml_heartbeats_total", &self.heartbeats);

        o.push_str("# TYPE cleanml_fetch_bytes_total counter\n");
        sample(
            &mut o,
            "cleanml_fetch_bytes_total",
            &[("direction", "in")],
            Value::U64(self.fetch_bytes_in.get()),
        );
        sample(
            &mut o,
            "cleanml_fetch_bytes_total",
            &[("direction", "out")],
            Value::U64(self.fetch_bytes_out.get()),
        );
        counter(&mut o, "cleanml_remote_workers_joined_total", &self.workers_joined);
        gauge(&mut o, "cleanml_remote_workers_connected", &self.workers_connected);

        o.push_str("# TYPE cleanml_submissions_total counter\n");
        sample(
            &mut o,
            "cleanml_submissions_total",
            &[("kind", "study")],
            Value::U64(self.submissions_study.get()),
        );
        sample(
            &mut o,
            "cleanml_submissions_total",
            &[("kind", "cell")],
            Value::U64(self.submissions_cell.get()),
        );
        gauge(&mut o, "cleanml_submissions_active", &self.submissions_active);
        counter(&mut o, "cleanml_warm_answers_total", &self.warm_answers);
        counter(&mut o, "cleanml_cancellations_total", &self.cancellations);
        counter(&mut o, "cleanml_events_dropped_total", &self.events_dropped);
        counter(&mut o, "cleanml_http_requests_total", &self.http_requests);
        counter(&mut o, "cleanml_http_rejected_total", &self.http_rejected);
        counter(&mut o, "cleanml_http_not_found_total", &self.http_not_found);
        counter(&mut o, "cleanml_http_unauthorized_total", &self.http_unauthorized);
        o.push_str("# TYPE cleanml_http_route_requests_total counter\n");
        for (i, route) in HTTP_ROUTES.iter().enumerate() {
            sample(
                &mut o,
                "cleanml_http_route_requests_total",
                &[("route", route)],
                Value::U64(self.http_route_requests[i].get()),
            );
        }
        o.push_str("# TYPE cleanml_http_route_seconds histogram\n");
        for (i, route) in HTTP_ROUTES.iter().enumerate() {
            histogram_samples(
                &mut o,
                "cleanml_http_route_seconds",
                Some(("route", route)),
                &self.http_route_seconds[i],
            );
        }
        counter(&mut o, "cleanml_trace_events_dropped_total", &self.trace_overflow);

        gauge(&mut o, "cleanml_resident_bytes", &self.resident_bytes);
        counter(&mut o, "cleanml_handle_shares_total", &self.handle_shares);
        counter(&mut o, "cleanml_deep_copies_avoided_total", &self.deep_copies_avoided);
        counter(&mut o, "cleanml_subtasks_executed_total", &self.subtasks_executed);
        counter(&mut o, "cleanml_subwork_batches_total", &self.subwork_batches);

        // CV fold plane (bridged from the process-wide `cleanml-ml`
        // counters: the ml crate cannot depend on the engine registry).
        o.push_str("# TYPE cleanml_cv_fits_total counter\n");
        sample(&mut o, "cleanml_cv_fits_total", &[], Value::U64(cleanml_ml::cv::cv_fits_total()));
        o.push_str("# TYPE cleanml_fold_reuse_total counter\n");
        sample(
            &mut o,
            "cleanml_fold_reuse_total",
            &[],
            Value::U64(cleanml_ml::cv::fold_reuse_total()),
        );

        o
    }
}

/// The process-wide registry.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

// ---- rendering helpers ---------------------------------------------

enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
}

/// Escape a label value per the Prometheus text format: backslash,
/// double-quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: Value) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    match value {
        Value::U64(v) => {
            let _ = writeln!(out, " {v}");
        }
        Value::I64(v) => {
            let _ = writeln!(out, " {v}");
        }
        Value::F64(v) => {
            let _ = writeln!(out, " {v:.6}");
        }
    }
}

fn counter(out: &mut String, name: &str, c: &Counter) {
    let _ = writeln!(out, "# TYPE {name} counter");
    sample(out, name, &[], Value::U64(c.get()));
}

fn gauge(out: &mut String, name: &str, g: &Gauge) {
    let _ = writeln!(out, "# TYPE {name} gauge");
    sample(out, name, &[], Value::I64(g.get()));
}

/// Render one histogram's `_bucket`/`_sum`/`_count` samples with an
/// optional extra label (e.g. `kind="train"`).
fn histogram_samples(out: &mut String, name: &str, label: Option<(&str, &str)>, h: &Histogram) {
    let cum = h.cumulative();
    let bucket_name = format!("{name}_bucket");
    for (i, &c) in cum.iter().enumerate() {
        let le = format_bound(BUCKET_BOUNDS_SECS[i]);
        match label {
            Some((k, v)) => {
                sample(out, &bucket_name, &[(k, v), ("le", &le)], Value::U64(c));
            }
            None => sample(out, &bucket_name, &[("le", &le)], Value::U64(c)),
        }
    }
    let labels: Vec<(&str, &str)> = label.into_iter().collect();
    let mut inf = labels.clone();
    inf.push(("le", "+Inf"));
    sample(out, &bucket_name, &inf, Value::U64(h.count()));
    sample(out, &format!("{name}_sum"), &labels, Value::F64(h.sum_micros() as f64 / 1e6));
    sample(out, &format!("{name}_count"), &labels, Value::U64(h.count()));
}

fn histogram_family(out: &mut String, name: &str, label_key: &str, hs: &[Histogram; NKINDS]) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (i, kind) in TaskKind::ALL.iter().enumerate() {
        histogram_samples(out, name, Some((label_key, kind.name())), &hs[i]);
    }
}

fn plain_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    histogram_samples(out, name, None, h);
}

/// Bucket bounds print without trailing zeros ("0.001", "5"), matching
/// conventional Prometheus client output.
fn format_bound(b: f64) -> String {
    if b == b.trunc() {
        format!("{}", b as u64)
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn counters_and_gauges_move_as_told() {
        let t = Telemetry::new();
        t.cache_misses.inc();
        t.cache_misses.add(4);
        assert_eq!(t.cache_misses.get(), 5);
        t.leases_active.inc();
        t.leases_active.inc();
        t.leases_active.dec();
        assert_eq!(t.leases_active.get(), 1);
        t.store_bytes.set(1234);
        assert_eq!(t.store_bytes.get(), 1234);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_matches_count() {
        let h = Histogram::default();
        // one per bucket boundary, one past the last bound
        for &b in &BUCKET_BOUNDS_SECS {
            h.observe(Duration::from_secs_f64(b));
        }
        h.observe(Duration::from_secs(120));
        let cum = h.cumulative();
        for w in cum.windows(2) {
            assert!(w[0] <= w[1], "cumulative counts must be nondecreasing");
        }
        assert_eq!(cum[NBUCKETS - 1], BUCKET_BOUNDS_SECS.len() as u64);
        assert_eq!(h.count(), BUCKET_BOUNDS_SECS.len() as u64 + 1);

        // rendered form repeats the invariant, with +Inf == count
        let mut out = String::new();
        histogram_samples(&mut out, "x_seconds", None, &h);
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("x_seconds_bucket{le=\"") {
                let (le, v) = rest.split_once("\"} ").expect("bucket line shape");
                let v: u64 = v.parse().expect("bucket count parses");
                assert!(v >= last, "bucket {le} went backwards");
                last = v;
                if le == "+Inf" {
                    saw_inf = true;
                    assert_eq!(v, h.count());
                }
            }
        }
        assert!(saw_inf, "+Inf bucket rendered");
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(ms(2)); // le=0.005 bucket
        }
        h.observe(ms(800)); // le=1 bucket
        assert_eq!(h.quantile_ms(0.5), 5.0);
        assert_eq!(h.quantile_ms(0.99), 5.0);
        assert_eq!(h.quantile_ms(1.0), 1000.0);
        let empty = Histogram::default();
        assert_eq!(empty.quantile_ms(0.5), 0.0);
    }

    #[test]
    fn bucket_ladder_resolves_the_100ms_to_1s_tail() {
        // Pre-widening, everything between 100 ms and 500 ms reported
        // "500.0" and everything between 500 ms and 1 s reported "1000.0";
        // the 150/250/350/500/750 ms ladder separates the Clean/Train tail.
        for (obs_ms, want_ms) in
            [(120, 150.0), (180, 250.0), (300, 350.0), (400, 500.0), (600, 750.0), (900, 1000.0)]
        {
            let h = Histogram::default();
            h.observe(ms(obs_ms));
            assert_eq!(h.quantile_ms(0.99), want_ms, "{obs_ms} ms observation");
        }
    }

    #[test]
    fn cv_fold_plane_counters_render() {
        let t = Telemetry::new();
        let text = t.render();
        assert!(text.contains("# TYPE cleanml_cv_fits_total counter"), "{text}");
        assert!(text.contains("# TYPE cleanml_fold_reuse_total counter"), "{text}");
        // bridged from the process-wide ml counters, so values only grow
        let snap = t.stats_snapshot();
        assert_eq!(snap.cv_fits, cleanml_ml::cv::cv_fits_total());
        assert_eq!(snap.fold_reuse, cleanml_ml::cv::fold_reuse_total());
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("x\ny"), "x\\ny");
        let mut out = String::new();
        sample(&mut out, "m_total", &[("label", "we\"ird\\\n")], Value::U64(1));
        assert_eq!(out, "m_total{label=\"we\\\"ird\\\\\\n\"} 1\n");
    }

    #[test]
    fn render_emits_type_lines_and_well_formed_samples() {
        let t = Telemetry::new();
        t.tasks_local[kind_index(TaskKind::Train)].inc();
        t.task_seconds[kind_index(TaskKind::Train)].observe(ms(42));
        t.cache_memory_hits.add(3);
        let text = t.render();

        for family in [
            "# TYPE cleanml_tasks_executed_total counter",
            "# TYPE cleanml_task_seconds histogram",
            "# TYPE cleanml_task_queue_seconds histogram",
            "# TYPE cleanml_cache_hits_total counter",
            "# TYPE cleanml_cache_misses_total counter",
            "# TYPE cleanml_leases_active gauge",
            "# TYPE cleanml_submissions_total counter",
            "# TYPE cleanml_events_dropped_total counter",
        ] {
            assert!(text.contains(family), "missing {family}");
        }
        assert!(text.contains("cleanml_tasks_executed_total{kind=\"train\",site=\"local\"} 1\n"));
        assert!(text.contains("cleanml_tasks_executed_total{kind=\"clean\",site=\"remote\"} 0\n"));
        assert!(text.contains("cleanml_task_seconds_bucket{kind=\"train\",le=\"0.05\"} 1\n"));
        assert!(text.contains("cleanml_task_seconds_count{kind=\"train\"} 1\n"));
        assert!(text.contains("cleanml_cache_hits_total{layer=\"memory\"} 3\n"));

        // every line is a comment or a cleanml_-prefixed sample ending in a value
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE cleanml_") || line.starts_with("cleanml_"),
                "stray line: {line}"
            );
            if !line.starts_with('#') {
                let value = line.rsplit(' ').next().expect("value field");
                assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
            }
        }

        // each family declares its type exactly once
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut seen = std::collections::HashSet::new();
        for l in &type_lines {
            assert!(seen.insert(*l), "duplicate TYPE line: {l}");
        }
    }

    #[test]
    fn snapshot_deltas_subtract_fieldwise() {
        let t = Telemetry::new();
        t.cache_misses.add(2);
        t.tasks_local[kind_index(TaskKind::Train)].add(5);
        let a = t.stats_snapshot();
        t.cache_misses.add(3);
        t.tasks_local[kind_index(TaskKind::Train)].add(1);
        t.leases_reinjected.inc();
        let d = t.stats_snapshot().since(&a);
        assert_eq!(d.misses, 3);
        assert_eq!(d.executed_local[kind_index(TaskKind::Train)], 1);
        assert_eq!(d.releases, 1);
        assert_eq!(d.memory_hits, 0);
    }

    #[test]
    fn trace_buffer_writes_chrome_loadable_json() {
        let t = Telemetry::new();
        let start = Instant::now();
        // spans recorded before tracing starts are dropped
        t.span("early", "train", start, ms(1), 0, Vec::new());
        t.start_tracing();
        t.span(
            "clean outliers \"q\"",
            "clean",
            start,
            ms(7),
            3,
            vec![("sub", "1".to_string()), ("queue_ms", "0.2".to_string())],
        );
        t.span("train s0", "train", start, ms(20), 4, Vec::new());

        let path =
            std::env::temp_dir().join(format!("cleanml-trace-test-{}.json", std::process::id()));
        let n = t.write_trace(&path).expect("trace writes");
        assert_eq!(n, 2);
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let _ = std::fs::remove_file(&path);

        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{"));
        assert!(text.ends_with("}]}"));
        assert!(text.contains("\"name\":\"clean outliers \\\"q\\\"\""));
        assert!(text.contains("\"cat\":\"clean\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"tid\":3"));
        assert!(text.contains("\"queue_ms\":\"0.2\""));
        assert!(!text.contains("early"));
        // crude structural check: braces balance
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn slow_task_table_keeps_top_eight_descending() {
        let t = Telemetry::new();
        for i in 0..12u64 {
            t.record_slow_task(&format!("task{i}"), "train", "EEG", Duration::from_millis(i + 1));
        }
        let slow = t.slowest_tasks();
        assert_eq!(slow.len(), SLOW_TABLE_LEN);
        assert_eq!(slow[0].label, "task11");
        assert_eq!(slow[0].kind, "train");
        assert_eq!(slow[0].class, "EEG");
        for w in slow.windows(2) {
            assert!(w[0].dur_us >= w[1].dur_us, "table must be descending");
        }
        assert_eq!(slow.last().map(|s| s.dur_us), Some(5000), "fastest four dropped");
        t.reset_slow_tasks();
        assert!(t.slowest_tasks().is_empty());
        // disabled registries record nothing
        t.set_enabled(false);
        t.record_slow_task("x", "clean", "", Duration::from_secs(9));
        assert!(t.slowest_tasks().is_empty());
    }

    #[test]
    fn bound_formatting_drops_trailing_zeros() {
        assert_eq!(format_bound(0.001), "0.001");
        assert_eq!(format_bound(0.05), "0.05");
        assert_eq!(format_bound(1.0), "1");
        assert_eq!(format_bound(60.0), "60");
    }
}
