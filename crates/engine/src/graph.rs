//! The task DAG: typed nodes, content-addressed deduplication, and
//! cache-aware demand resolution.

use std::collections::HashMap;
use std::sync::Arc;

use cleanml_core::CoreError;

use crate::cache::{ArtifactCache, CacheKey, DiskCodec};
use crate::event::TaskKind;

/// Index of a task inside its graph.
pub type TaskId = usize;

/// A task body: consumes shared handles to its dependencies' artifacts
/// (in declaration order), produces one artifact. Handles are zero-copy:
/// nine sibling Train tasks reading the same cleaned matrix all hold the
/// *same* decoded allocation, never nine deep copies.
pub type TaskFn<A> = Box<dyn FnOnce(Vec<Arc<A>>) -> Result<A, CoreError> + Send>;

/// Execution-relevant state of one node after [`TaskGraph::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Will execute on the pool.
    Run,
    /// Satisfied from the cache; its artifact is pre-filled.
    Cached,
    /// Nothing demands it (every consumer was a cache hit); never executes.
    Pruned,
}

pub struct TaskNode<A> {
    pub kind: TaskKind,
    pub label: String,
    pub key: CacheKey,
    /// Scheduling class (the dataset the task belongs to, typically):
    /// the pool keys its observed-cost model per `(kind, class)`, so a
    /// Train on one dataset does not inherit another's runtime profile.
    pub class: Option<String>,
    pub deps: Vec<TaskId>,
    pub(crate) run: Option<TaskFn<A>>,
    pub(crate) prefilled: Option<Arc<A>>,
    pub(crate) state: NodeState,
}

/// A DAG of typed, content-addressed tasks.
pub struct TaskGraph<A> {
    pub(crate) nodes: Vec<TaskNode<A>>,
    by_key: HashMap<CacheKey, TaskId>,
}

impl<A> Default for TaskGraph<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A> TaskGraph<A> {
    pub fn new() -> Self {
        TaskGraph { nodes: Vec::new(), by_key: HashMap::new() }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a task, deduplicating by content address: if an identical task
    /// (same key) is already present, its id is returned and `run` is
    /// dropped. Dependencies must already be in the graph (ids precede the
    /// new node), which makes cycles unrepresentable.
    pub fn task(
        &mut self,
        kind: TaskKind,
        label: impl Into<String>,
        key: CacheKey,
        deps: Vec<TaskId>,
        run: impl FnOnce(Vec<Arc<A>>) -> Result<A, CoreError> + Send + 'static,
    ) -> TaskId {
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        for &d in &deps {
            assert!(d < id, "dependency {d} not yet in graph");
        }
        self.nodes.push(TaskNode {
            kind,
            label: label.into(),
            key,
            class: None,
            deps,
            run: Some(Box::new(run)),
            prefilled: None,
            state: NodeState::Run,
        });
        self.by_key.insert(key, id);
        id
    }

    /// Assigns scheduling class `class` to every node from `from`
    /// onwards that has none yet. Builders call this once per region
    /// (e.g. one dataset's grid) instead of threading the class through
    /// every `task` call; nodes deduplicated into an earlier region keep
    /// their original class.
    pub fn class_range(&mut self, from: TaskId, class: &str) {
        for node in &mut self.nodes[from..] {
            if node.class.is_none() {
                node.class = Some(class.to_string());
            }
        }
    }
}

impl<A: DiskCodec> TaskGraph<A> {
    /// Resolves the graph against the cache, demand-driven from `sinks`:
    /// a cache hit pre-fills the node and stops the downward traversal, so
    /// the whole subtree feeding only cached results is pruned. Returns
    /// `(cache_hits, pruned, to_run)`.
    pub fn resolve(
        &mut self,
        cache: &mut ArtifactCache<A>,
        sinks: &[TaskId],
    ) -> (usize, usize, usize) {
        let n = self.nodes.len();
        let mut demanded = vec![false; n];
        let mut stack: Vec<TaskId> = sinks.to_vec();
        while let Some(id) = stack.pop() {
            if demanded[id] {
                continue;
            }
            demanded[id] = true;
            if let Some(artifact) = cache.get(self.nodes[id].key) {
                self.nodes[id].prefilled = Some(artifact);
                self.nodes[id].state = NodeState::Cached;
                continue; // dependencies not demanded
            }
            for &d in &self.nodes[id].deps.clone() {
                stack.push(d);
            }
        }
        let mut hits = 0;
        let mut pruned = 0;
        let mut to_run = 0;
        for (id, node) in self.nodes.iter_mut().enumerate() {
            if !demanded[id] {
                node.state = NodeState::Pruned;
                pruned += 1;
            } else {
                match node.state {
                    NodeState::Cached => hits += 1,
                    _ => to_run += 1,
                }
            }
        }
        (hits, pruned, to_run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct V(i64);

    impl DiskCodec for V {
        fn encode(&self) -> Option<Vec<u8>> {
            None
        }
        fn decode(_: &[u8]) -> Option<Self> {
            None
        }
    }

    #[test]
    fn dedup_by_key() {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let k = CacheKey::of("shared");
        let a = g.task(TaskKind::GenerateDataset, "a", k, vec![], |_| Ok(V(1)));
        let b = g.task(TaskKind::GenerateDataset, "b", k, vec![], |_| Ok(V(2)));
        assert_eq!(a, b);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn resolve_prunes_upstream_of_cache_hits() {
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        let sink_key = CacheKey::of("sink");
        cache.put(sink_key, &Arc::new(V(42)));

        let mut g: TaskGraph<V> = TaskGraph::new();
        let dep = g.task(TaskKind::Train, "dep", CacheKey::of("dep"), vec![], |_| Ok(V(1)));
        let sink = g.task(TaskKind::Evaluate, "sink", sink_key, vec![dep], |d| Ok(V(d[0].0 + 1)));
        let other = g.task(TaskKind::Evaluate, "other", CacheKey::of("other"), vec![dep], |d| {
            Ok(V(d[0].0 * 10))
        });

        let (hits, pruned, to_run) = g.resolve(&mut cache, &[sink, other]);
        assert_eq!(hits, 1);
        assert_eq!(pruned, 0, "dep is still demanded by `other`");
        assert_eq!(to_run, 2);
        assert_eq!(g.nodes[sink].state, NodeState::Cached);
        assert_eq!(g.nodes[dep].state, NodeState::Run);
    }

    #[test]
    fn resolve_prunes_fully_cached_subtrees() {
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        cache.put(CacheKey::of("s1"), &Arc::new(V(1)));
        cache.put(CacheKey::of("s2"), &Arc::new(V(2)));

        let mut g: TaskGraph<V> = TaskGraph::new();
        let dep = g.task(TaskKind::Train, "dep", CacheKey::of("dep"), vec![], |_| Ok(V(0)));
        let s1 = g.task(TaskKind::Evaluate, "s1", CacheKey::of("s1"), vec![dep], |_| Ok(V(1)));
        let s2 = g.task(TaskKind::Evaluate, "s2", CacheKey::of("s2"), vec![dep], |_| Ok(V(2)));

        let (hits, pruned, to_run) = g.resolve(&mut cache, &[s1, s2]);
        assert_eq!(hits, 2);
        assert_eq!(pruned, 1, "training is skipped entirely");
        assert_eq!(to_run, 0);
    }
}
