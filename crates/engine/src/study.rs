//! Decomposing a CleanML study into the typed task DAG and running it.
//!
//! For every `(error type, dataset)` of the study the builder emits
//!
//! ```text
//! GenerateDataset ─► Context ─┬─► Split(s) ─┬─► Train(dirty, k)
//!                             │             └─► Clean(m) ─► Train(clean, m, k)
//!                             │                     │             │
//!                             │                     └──────┬──────┘
//!                             │                            ▼
//!                             └─────────────────────► Evaluate(s, m, k)
//!                                                          │
//!                                  Reduce(grid) ◄──────────┘  (all cells)
//! ```
//!
//! and the scheduler executes every node across *all* datasets and error
//! types concurrently — the outer sequential loop of
//! [`cleanml_core::run_study`] becomes graph width. Task bodies are the
//! pure units of [`cleanml_core::tasks`], so any worker count reproduces
//! the serial path bit for bit.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use cleanml_cleaning::{CleaningMethod, ErrorType};
use cleanml_core::runner::CellEval;
use cleanml_core::runner::Result;
use cleanml_core::study::{dataset_plan, DatasetPlan};
use cleanml_core::tasks::{self, CleanArtifact, DatasetContext, SplitArtifact, TrainedModel};
use cleanml_core::{CleanMlDb, CoreError, EvalGrid, ExperimentConfig};
use cleanml_datagen::{generate, inject_mislabel_variant, spec_by_name, GeneratedDataset};
use cleanml_ml::{Metric, ModelKind, PAPER_MODELS};

use cleanml_dataset::codec as dcodec;
use cleanml_dataset::codec::Reader;
use cleanml_dataset::{Encoder, FeatureMatrix};

use crate::cache::{ArtifactCache, CacheKey, CacheStats, DiskCodec, DiskStore};
use crate::event::{emit, EngineEvent, EventSink, TaskKind};
use crate::graph::{NodeState, TaskGraph, TaskId};
use crate::pool::{Pool, RunReport, SubmissionHandle};
use crate::remote::http::{GatewayBackend, GatewayError, StudyState, StudyStatus, SubmitSpec};
use crate::remote::{ClientHandler, RemoteHub, StudySpec};
use crate::telemetry;

/// One batched Evaluate result: every `(dirty model, clean model)` cell of a
/// `(dataset, split, cleaning method)` group, evaluated in model order by a
/// single task instead of a swarm of sub-millisecond singletons. Each member
/// keeps the content address its singleton `cell/…` task would have had, so
/// the submission can fan the results back into the cache and query-granular
/// [`CellQuery`] semantics are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct CellBatch {
    pub members: Vec<(CacheKey, CellEval)>,
}

/// Everything that flows along DAG edges. Heavy payloads sit behind `Arc`,
/// so cloning an artifact into a consumer is pointer-cheap.
#[derive(Debug, Clone)]
pub enum Artifact {
    Dataset(Arc<GeneratedDataset>),
    Context(Arc<DatasetContext>),
    Split(Arc<SplitArtifact>),
    Clean(Arc<CleanArtifact>),
    Trained(Arc<TrainedModel>),
    Cell(CellEval),
    Cells(Arc<CellBatch>),
    Grid(Arc<EvalGrid>),
}

impl Artifact {
    fn dataset(&self) -> &GeneratedDataset {
        match self {
            Artifact::Dataset(d) => d,
            other => panic!("expected dataset artifact, got {other:?}"),
        }
    }
    fn context(&self) -> &DatasetContext {
        match self {
            Artifact::Context(c) => c,
            other => panic!("expected context artifact, got {other:?}"),
        }
    }
    fn split(&self) -> &SplitArtifact {
        match self {
            Artifact::Split(s) => s,
            other => panic!("expected split artifact, got {other:?}"),
        }
    }
    fn clean(&self) -> &CleanArtifact {
        match self {
            Artifact::Clean(c) => c,
            other => panic!("expected clean artifact, got {other:?}"),
        }
    }
    fn trained(&self) -> &TrainedModel {
        match self {
            Artifact::Trained(t) => t,
            other => panic!("expected trained artifact, got {other:?}"),
        }
    }
    fn cell(&self) -> CellEval {
        match self {
            Artifact::Cell(c) => *c,
            other => panic!("expected cell artifact, got {other:?}"),
        }
    }
    fn cells(&self) -> &CellBatch {
        match self {
            Artifact::Cells(b) => b,
            other => panic!("expected cell-batch artifact, got {other:?}"),
        }
    }
    fn grid(&self) -> &Arc<EvalGrid> {
        match self {
            Artifact::Grid(g) => g,
            other => panic!("expected grid artifact, got {other:?}"),
        }
    }
}

fn encode_metric(out: &mut Vec<u8>, m: Metric) {
    match m {
        Metric::Accuracy => dcodec::push_tag(out, b'A'),
        Metric::F1 { positive } => {
            dcodec::push_tag(out, b'F');
            dcodec::push_usize(out, positive);
        }
    }
}

fn decode_metric(r: &mut Reader<'_>) -> Option<Metric> {
    match dcodec::take_tag(r)? {
        b'A' => Some(Metric::Accuracy),
        b'F' => Some(Metric::F1 { positive: dcodec::take_usize(r)? }),
        _ => None,
    }
}

/// Leading payload byte of each persisted [`Artifact`] variant — the
/// dispatch tag inside the (already version-checked) artifact frame.
mod tag {
    pub const CELL: u8 = b'C';
    pub const CELLS: u8 = b'B';
    pub const CONTEXT: u8 = b'X';
    pub const SPLIT: u8 = b'S';
    pub const CLEAN: u8 = b'K';
    pub const TRAINED: u8 = b'T';
}

fn encode_cell(out: &mut Vec<u8>, c: &CellEval) {
    dcodec::push_f64(out, c.val_dirty);
    dcodec::push_f64(out, c.val_clean);
    dcodec::push_f64(out, c.acc_b);
    match c.acc_c {
        Some(x) => {
            dcodec::push_tag(out, 1);
            dcodec::push_f64(out, x);
        }
        None => dcodec::push_tag(out, 0),
    }
    dcodec::push_f64(out, c.acc_d);
}

fn decode_cell(r: &mut Reader<'_>) -> Option<CellEval> {
    let val_dirty = dcodec::take_f64(r)?;
    let val_clean = dcodec::take_f64(r)?;
    let acc_b = dcodec::take_f64(r)?;
    let acc_c = match dcodec::take_tag(r)? {
        0 => None,
        1 => Some(dcodec::take_f64(r)?),
        _ => return None,
    };
    let acc_d = dcodec::take_f64(r)?;
    Some(CellEval { val_dirty, val_clean, acc_b, acc_c, acc_d })
}

impl DiskCodec for Artifact {
    /// Everything with a stable serial form persists: grid cells, dataset
    /// contexts, splits (the partition tables plus the dirty-side encoder
    /// and matrix), cleaned matrices and trained models. Only generated
    /// datasets (cheap, deterministic) and reduced grids (reassembled from
    /// cells) stay in memory. The payload carries no version of its own —
    /// the artifact frame the store wraps around it does.
    fn encode(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            Artifact::Cell(c) => {
                dcodec::push_tag(&mut out, tag::CELL);
                encode_cell(&mut out, c);
            }
            Artifact::Cells(b) => {
                dcodec::push_tag(&mut out, tag::CELLS);
                dcodec::push_usize(&mut out, b.members.len());
                for (key, c) in &b.members {
                    dcodec::push_u64(&mut out, key.0);
                    dcodec::push_u64(&mut out, key.1);
                    encode_cell(&mut out, c);
                }
            }
            Artifact::Context(ctx) => {
                dcodec::push_tag(&mut out, tag::CONTEXT);
                encode_metric(&mut out, ctx.metric);
                dcodec::push_usize(&mut out, ctx.classes.len());
                for class in &ctx.classes {
                    dcodec::push_str(&mut out, class);
                }
            }
            Artifact::Split(s) => {
                dcodec::push_tag(&mut out, tag::SPLIT);
                dcodec::encode_table_into(&mut out, &s.train0);
                dcodec::encode_table_into(&mut out, &s.test0);
                dcodec::encode_table_into(&mut out, &s.dirty_train);
                s.enc_dirty.encode_into(&mut out);
                s.dirty_matrix.encode_into(&mut out);
            }
            Artifact::Clean(c) => {
                dcodec::push_tag(&mut out, tag::CLEAN);
                c.clean_train_m.encode_into(&mut out);
                c.clean_test_m.encode_into(&mut out);
                match &c.dirty_test_m {
                    Some(m) => {
                        dcodec::push_tag(&mut out, 1);
                        m.encode_into(&mut out);
                    }
                    None => dcodec::push_tag(&mut out, 0),
                }
                c.clean_test_for_dirty.encode_into(&mut out);
            }
            Artifact::Trained(t) => {
                dcodec::push_tag(&mut out, tag::TRAINED);
                dcodec::push_f64(&mut out, t.val);
                cleanml_ml::codec::encode_model_into(&mut out, &t.model);
            }
            _ => return None,
        }
        Some(out)
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let artifact = match dcodec::take_tag(&mut r)? {
            tag::CELL => Artifact::Cell(decode_cell(&mut r)?),
            tag::CELLS => {
                let n = dcodec::take_usize(&mut r)?;
                let mut members = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    let k0 = dcodec::take_u64(&mut r)?;
                    let k1 = dcodec::take_u64(&mut r)?;
                    members.push((CacheKey(k0, k1), decode_cell(&mut r)?));
                }
                Artifact::Cells(Arc::new(CellBatch { members }))
            }
            tag::CONTEXT => {
                let metric = decode_metric(&mut r)?;
                let n = dcodec::take_usize(&mut r)?;
                let mut classes = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    classes.push(dcodec::take_str(&mut r)?);
                }
                Artifact::Context(Arc::new(DatasetContext { metric, classes }))
            }
            tag::SPLIT => {
                let train0 = dcodec::decode_table_from(&mut r)?;
                let test0 = dcodec::decode_table_from(&mut r)?;
                let dirty_train = dcodec::decode_table_from(&mut r)?;
                let enc_dirty = Encoder::decode_from(&mut r)?;
                let dirty_matrix = FeatureMatrix::decode_from(&mut r)?;
                Artifact::Split(Arc::new(SplitArtifact {
                    train0,
                    test0,
                    dirty_train,
                    enc_dirty,
                    dirty_matrix,
                }))
            }
            tag::CLEAN => {
                let clean_train_m = FeatureMatrix::decode_from(&mut r)?;
                let clean_test_m = FeatureMatrix::decode_from(&mut r)?;
                let dirty_test_m = match dcodec::take_tag(&mut r)? {
                    0 => None,
                    1 => Some(FeatureMatrix::decode_from(&mut r)?),
                    _ => return None,
                };
                let clean_test_for_dirty = FeatureMatrix::decode_from(&mut r)?;
                Artifact::Clean(Arc::new(CleanArtifact {
                    clean_train_m,
                    clean_test_m,
                    dirty_test_m,
                    clean_test_for_dirty,
                }))
            }
            tag::TRAINED => {
                let val = dcodec::take_f64(&mut r)?;
                let model = cleanml_ml::codec::decode_model_from(&mut r)?;
                Artifact::Trained(Arc::new(TrainedModel { model, val }))
            }
            _ => return None,
        };
        // trailing bytes mean the entry was not produced by this encoder
        r.is_empty().then_some(artifact)
    }

    /// Only the small artifacts accumulate in the unbounded in-memory map;
    /// splits, cleaned matrices and trained models are prefilled into their
    /// demanding nodes and retired after their last consumer instead.
    fn promote_to_memory(&self) -> bool {
        matches!(self, Artifact::Cell(_) | Artifact::Cells(_) | Artifact::Context(_))
    }
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (`0` = all available cores).
    pub workers: usize,
    /// Run directory for the persistent cache layer; `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the run directory (`--cache-max-bytes`): the disk
    /// store evicts least-recently-used artifacts to stay under it. `None`
    /// leaves the store unbounded.
    pub cache_max_bytes: Option<u64>,
    /// `--listen ADDR`: accept remote `cleanml-worker` connections on this
    /// address (`127.0.0.1:0` binds an ephemeral port, reported by
    /// [`Engine::remote_addr`]). `None` keeps execution purely local.
    pub listen: Option<String>,
    /// `--lease-timeout`: how long a leased worker may go silent (no
    /// `Done`, `Fetch` or `Heartbeat`) before its task is re-queued.
    pub lease_timeout: Duration,
    /// `--http-token`: bearer token required by the HTTP results
    /// gateway's `/studies` routes (`/metrics` stays open). `None`
    /// leaves the gateway unauthenticated — loopback deployments only.
    pub http_token: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            cache_dir: None,
            cache_max_bytes: None,
            listen: None,
            lease_timeout: crate::remote::DEFAULT_LEASE_TIMEOUT,
            http_token: None,
        }
    }
}

impl EngineConfig {
    /// Resolved worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// The resident study-execution engine: a long-lived worker pool, a warm
/// in-memory memo and the persistent artifact store, owned for the
/// engine's whole lifetime and shared by every submission.
///
/// One-shot use is unchanged — [`Engine::run_study`] builds, resolves,
/// executes and collects. But the engine also accepts many *concurrent*
/// submissions ([`Engine::submit_study`], [`Engine::submit_query`]):
/// overlapping submissions dedupe into the same in-flight tasks by
/// content address, a repeated submission answers from the warm memo
/// without executing anything, and with `listen` configured the same
/// listener serves lease-based remote workers *and* `cleanml-query`
/// clients (see `cleanml-serve`).
pub struct Engine {
    inner: Arc<EngineInner>,
}

/// Engine state shared with the serving plane (client-connection threads
/// hold a [`Weak`] to it, so a dropped engine refuses new clients instead
/// of leaking).
pub(crate) struct EngineInner {
    cache: Mutex<ArtifactCache<Artifact>>,
    store: Option<Arc<DiskStore>>,
    hub: Option<Arc<RemoteHub>>,
    pool: Pool<Artifact>,
    events: Mutex<Option<EventSink>>,
    gateway: GatewayRegistry,
}

impl Engine {
    /// Creates an engine: the worker pool spawns immediately and lives
    /// until the engine drops. With `listen` set, the remote hub binds
    /// immediately (panicking on an unusable address — a misconfigured
    /// coordinator must fail loudly, not run silently local-only) and its
    /// service loop classifies connections into workers and serving
    /// clients for the engine's lifetime.
    pub fn new(cfg: EngineConfig) -> Self {
        let store = cfg.cache_dir.clone().map(|dir| DiskStore::open(dir, cfg.cache_max_bytes));
        let hub = cfg.listen.as_deref().map(|addr| {
            RemoteHub::bind(addr, cfg.lease_timeout)
                .unwrap_or_else(|e| panic!("cannot listen on {addr}: {e}"))
        });
        let workers = cfg.effective_workers();
        let inner = Arc::new_cyclic(|weak: &Weak<EngineInner>| {
            let mut pool: Pool<Artifact> = Pool::new(workers, store.clone());
            if let Some(hub) = &hub {
                let handler_weak = weak.clone();
                let handler: ClientHandler = Arc::new(move |stream, first| {
                    crate::serve::handle_client(&handler_weak, stream, first);
                });
                let gateway: crate::remote::HttpGateway =
                    Arc::new(EngineGateway { engine: weak.clone(), token: cfg.http_token.clone() });
                pool.serve_hub(Arc::clone(hub), Some(handler), Some(gateway));
            }
            EngineInner {
                cache: Mutex::new(ArtifactCache::with_store(store.clone())),
                store: store.clone(),
                hub: hub.clone(),
                pool,
                events: Mutex::new(None),
                gateway: GatewayRegistry::default(),
            }
        });
        Engine { inner }
    }

    /// Attaches a progress-event sink (the default for submissions made
    /// through this handle).
    pub fn with_events(self, sink: EventSink) -> Self {
        *self.inner.events.lock().expect("events lock") = Some(sink);
        self
    }

    pub fn workers(&self) -> usize {
        self.inner.pool.workers()
    }

    /// The persistent artifact store, if a cache directory is configured.
    pub fn disk_store(&self) -> Option<&Arc<DiskStore>> {
        self.inner.store.as_ref()
    }

    /// The address remote workers and serving clients connect to, if
    /// `listen` is configured.
    pub fn remote_addr(&self) -> Option<SocketAddr> {
        self.inner.hub.as_ref().map(|h| h.local_addr())
    }

    /// Cache counters since the last reset. Disk writes and evictions
    /// come from the shared store, which also counts the artifacts the
    /// worker pool persisted mid-run.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.inner.cache.lock().expect("cache lock").stats;
        if let Some(store) = &self.inner.store {
            stats.disk_writes = store.writes();
            stats.disk_evictions = store.evictions();
        }
        stats
    }

    /// The pool's observed per-kind task costs: `(kind, samples,
    /// ewma_micros)` for every kind with at least one completed local
    /// execution. This is the EWMA that drives frontier ordering
    /// ([`crate::pool::CostModel::effective_weight`]); dumping it makes
    /// the scheduler's cost beliefs auditable (`BENCH_quick.json`).
    pub fn cost_observations(&self) -> Vec<(TaskKind, u64, u64)> {
        TaskKind::ALL
            .iter()
            .filter_map(|&k| self.inner.pool.costs().observed(k).map(|(n, us)| (k, n, us)))
            .collect()
    }

    /// Runs the full study for `error_types` through the scheduler and
    /// returns the populated, BY-corrected database — the parallel
    /// equivalent of [`cleanml_core::run_study`].
    pub fn run_study(
        &mut self,
        error_types: &[ErrorType],
        cfg: &ExperimentConfig,
    ) -> Result<CleanMlDb> {
        self.run_study_with_report(error_types, cfg).map(|(db, _)| db)
    }

    /// [`Engine::run_study`] plus the execution report (task counts, cache
    /// hits, prunes): submit, then block until collected.
    pub fn run_study_with_report(
        &mut self,
        error_types: &[ErrorType],
        cfg: &ExperimentConfig,
    ) -> Result<(CleanMlDb, RunReport)> {
        self.inner.cache.lock().expect("cache lock").reset_stats();
        self.submit_study(error_types, cfg).wait()
    }

    /// Submits a whole study to the resident core and returns immediately
    /// with a handle. Concurrent submissions share in-flight tasks by
    /// content address.
    pub fn submit_study(
        &self,
        error_types: &[ErrorType],
        cfg: &ExperimentConfig,
    ) -> StudySubmission {
        let events = self.inner.events.lock().expect("events lock").clone();
        EngineInner::submit_study(&self.inner, error_types, cfg, events)
    }

    /// [`Engine::submit_study`] with a submission-private event sink.
    pub fn submit_study_with_events(
        &self,
        error_types: &[ErrorType],
        cfg: &ExperimentConfig,
        events: Option<EventSink>,
    ) -> StudySubmission {
        EngineInner::submit_study(&self.inner, error_types, cfg, events)
    }

    /// Submits a query-granular request — one `(dataset, error type,
    /// cleaning method, model)` cell instead of a whole study. Cell tasks
    /// share content addresses with the corresponding full-study tasks,
    /// so a warm engine answers from the memo.
    pub fn submit_query(
        &self,
        query: &CellQuery,
        cfg: &ExperimentConfig,
    ) -> Result<StudySubmission> {
        let events = self.inner.events.lock().expect("events lock").clone();
        EngineInner::submit_query(&self.inner, query, cfg, events)
    }
}

impl EngineInner {
    pub(crate) fn submit_study(
        self: &Arc<Self>,
        error_types: &[ErrorType],
        cfg: &ExperimentConfig,
        events: Option<EventSink>,
    ) -> StudySubmission {
        let (graph, grids) = build_study_graph(error_types, cfg);
        // Advertise the submission to remote workers only when a hub
        // exists; the spec is what a worker rebuilds its graph from.
        let spec = self
            .hub
            .as_ref()
            .map(|_| StudySpec { error_types: error_types.to_vec(), cfg: *cfg }.encode());
        self.submit_graph(graph, grids, spec, events, cfg.alpha)
    }

    pub(crate) fn submit_query(
        self: &Arc<Self>,
        query: &CellQuery,
        cfg: &ExperimentConfig,
        events: Option<EventSink>,
    ) -> Result<StudySubmission> {
        let (graph, grids) = build_query_graph(query, cfg)?;
        // Cell queries are not advertised to remote workers (their grids
        // are not study-shaped); their leasable tasks still dedupe with
        // any concurrently running study's.
        Ok(self.submit_graph(graph, grids, None, events, cfg.alpha))
    }

    fn submit_graph(
        self: &Arc<Self>,
        mut graph: TaskGraph<Artifact>,
        grids: Vec<TaskId>,
        spec: Option<Vec<u8>>,
        events: Option<EventSink>,
        alpha: f64,
    ) -> StudySubmission {
        let (cache_hits, pruned, to_run, resolve_stats) = {
            let mut cache = self.cache.lock().expect("cache lock");
            let before = cache.stats;
            let (hits, pruned, to_run) = graph.resolve(&mut cache, &grids);
            let after = cache.stats;
            let delta = CacheStats {
                memory_hits: after.memory_hits - before.memory_hits,
                disk_hits: after.disk_hits - before.disk_hits,
                misses: after.misses - before.misses,
                disk_writes: 0,
                disk_evictions: 0,
            };
            (hits, pruned, to_run, delta)
        };
        let total = graph.len();
        emit(&events, EngineEvent::GraphReady { total, cache_hits, pruned, to_run });

        // Snapshot addressing info before the graph is consumed.
        let index: Vec<(CacheKey, TaskKind, NodeState)> =
            graph.nodes.iter().map(|n| (n.key, n.kind, n.state)).collect();
        let retain: Vec<bool> = graph
            .nodes
            .iter()
            .map(|n| {
                matches!(
                    n.kind,
                    TaskKind::GenerateDataset
                        | TaskKind::Context
                        | TaskKind::Evaluate
                        | TaskKind::Reduce
                )
            })
            .collect();

        let handle = self.pool.submit(graph, retain, events, spec);
        StudySubmission {
            inner: Arc::clone(self),
            handle,
            index,
            grids,
            cache_hits,
            pruned,
            total,
            alpha,
            resolve_stats,
        }
    }

    /// `(entries, payload bytes)` of the persistent store, zero without
    /// one.
    pub(crate) fn store_totals(&self) -> (u64, usize) {
        self.store.as_ref().map_or((0, 0), |s| (s.total_bytes(), s.len()))
    }

    pub(crate) fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }
}

// ---- HTTP results gateway (submission registry) ---------------------

/// Bounds on the gateway registry: at most this many unfinished
/// submissions in flight, at most this many entries retained (finished
/// entries are evicted oldest-first when the table is full).
const MAX_GATEWAY_RUNNING: usize = 8;
const MAX_GATEWAY_ENTRIES: usize = 64;

/// How often a gateway waiter thread samples submission progress.
const GATEWAY_POLL: Duration = Duration::from_millis(50);

enum GatewayResult {
    Running,
    Done(Arc<CleanMlDb>),
    Failed(String),
}

/// One `POST /studies` submission: progress counters updated by its
/// waiter thread, terminal state holding the finished relations.
struct GatewayEntry {
    id: u64,
    errors: Vec<ErrorType>,
    done: AtomicU64,
    to_run: AtomicU64,
    state: Mutex<GatewayResult>,
}

impl GatewayEntry {
    fn status(&self) -> StudyStatus {
        let state = match &*self.state.lock().expect("gateway entry lock") {
            GatewayResult::Running => StudyState::Running,
            GatewayResult::Done(_) => StudyState::Done,
            GatewayResult::Failed(e) => StudyState::Failed(e.clone()),
        };
        StudyStatus {
            id: self.id,
            errors: self.errors.iter().map(|e| e.name().to_string()).collect(),
            state,
            done: self.done.load(Ordering::Relaxed),
            to_run: self.to_run.load(Ordering::Relaxed),
        }
    }

    fn running(&self) -> bool {
        matches!(*self.state.lock().expect("gateway entry lock"), GatewayResult::Running)
    }
}

/// The engine's table of HTTP-submitted studies, keyed by gateway id
/// (monotonic, starting at 1).
#[derive(Default)]
pub(crate) struct GatewayRegistry {
    table: Mutex<GatewayTable>,
}

#[derive(Default)]
struct GatewayTable {
    next_id: u64,
    entries: BTreeMap<u64, Arc<GatewayEntry>>,
}

/// The [`GatewayBackend`] the wire layer talks to: a [`Weak`] engine
/// handle (a dropped engine answers 503, never a dangling pool) plus the
/// configured bearer token.
struct EngineGateway {
    engine: Weak<EngineInner>,
    token: Option<String>,
}

impl GatewayBackend for EngineGateway {
    fn token(&self) -> Option<String> {
        self.token.clone()
    }

    fn list(&self) -> Vec<StudyStatus> {
        let Some(inner) = self.engine.upgrade() else { return Vec::new() };
        let table = inner.gateway.table.lock().expect("gateway lock");
        table.entries.values().map(|e| e.status()).collect()
    }

    fn status(&self, id: u64) -> Option<StudyStatus> {
        let inner = self.engine.upgrade()?;
        let table = inner.gateway.table.lock().expect("gateway lock");
        table.entries.get(&id).map(|e| e.status())
    }

    fn submit(&self, spec: SubmitSpec) -> std::result::Result<u64, GatewayError> {
        let Some(inner) = self.engine.upgrade() else { return Err(GatewayError::Unavailable) };
        let cfg = spec.config();
        let entry = {
            let mut table = inner.gateway.table.lock().expect("gateway lock");
            let running = table.entries.values().filter(|e| e.running()).count();
            if running >= MAX_GATEWAY_RUNNING {
                return Err(GatewayError::Busy);
            }
            if table.entries.len() >= MAX_GATEWAY_ENTRIES {
                // Evict the oldest finished entry; if everything retained
                // is somehow still running, refuse rather than grow.
                let oldest_done =
                    table.entries.iter().find(|(_, e)| !e.running()).map(|(id, _)| *id);
                match oldest_done {
                    Some(id) => {
                        table.entries.remove(&id);
                    }
                    None => return Err(GatewayError::Busy),
                }
            }
            table.next_id += 1;
            let entry = Arc::new(GatewayEntry {
                id: table.next_id,
                errors: spec.error_types.clone(),
                done: AtomicU64::new(0),
                to_run: AtomicU64::new(0),
                state: Mutex::new(GatewayResult::Running),
            });
            table.entries.insert(entry.id, Arc::clone(&entry));
            entry
        };
        telemetry::global().submissions_study.inc();
        let submission = inner.submit_study(&spec.error_types, &cfg, None);
        let id = entry.id;
        // The waiter owns the submission (and through it a strong engine
        // handle): it samples progress until completion, then parks the
        // BY-corrected relations in the entry for `/studies/:id/r*`.
        std::thread::spawn(move || {
            loop {
                let (done, to_run) = submission.progress();
                entry.done.store(done as u64, Ordering::Relaxed);
                entry.to_run.store(to_run as u64, Ordering::Relaxed);
                if submission.done() {
                    break;
                }
                std::thread::sleep(GATEWAY_POLL);
            }
            let (done, to_run) = submission.progress();
            entry.done.store(done as u64, Ordering::Relaxed);
            entry.to_run.store(to_run as u64, Ordering::Relaxed);
            let result = match submission.wait() {
                Ok((db, _report)) => GatewayResult::Done(Arc::new(db)),
                Err(e) => GatewayResult::Failed(e.to_string()),
            };
            *entry.state.lock().expect("gateway entry lock") = result;
        });
        Ok(id)
    }

    fn results(&self, id: u64) -> std::result::Result<Arc<CleanMlDb>, GatewayError> {
        let Some(inner) = self.engine.upgrade() else { return Err(GatewayError::Unavailable) };
        let entry = {
            let table = inner.gateway.table.lock().expect("gateway lock");
            table.entries.get(&id).cloned()
        };
        let entry = entry.ok_or(GatewayError::NotFound)?;
        let state = entry.state.lock().expect("gateway entry lock");
        match &*state {
            GatewayResult::Running => Err(GatewayError::NotReady),
            GatewayResult::Done(db) => Ok(Arc::clone(db)),
            GatewayResult::Failed(e) => Err(GatewayError::Failed(e.clone())),
        }
    }
}

/// A live study (or cell-query) submission on a resident [`Engine`]:
/// progress, cancellation, and blocking collection into the BY-corrected
/// relational database.
pub struct StudySubmission {
    inner: Arc<EngineInner>,
    handle: SubmissionHandle<Artifact>,
    index: Vec<(CacheKey, TaskKind, NodeState)>,
    grids: Vec<TaskId>,
    cache_hits: usize,
    pruned: usize,
    total: usize,
    alpha: f64,
    resolve_stats: CacheStats,
}

impl StudySubmission {
    /// Whether the submission has completed, failed or been cancelled.
    pub fn done(&self) -> bool {
        self.handle.done()
    }

    /// `(finished, to_run)` task counts.
    pub fn progress(&self) -> (usize, usize) {
        self.handle.progress()
    }

    /// Cancels the submission: its exclusive subgraph is released; tasks
    /// shared with other live submissions keep running for them.
    pub fn cancel(&self) {
        self.handle.cancel()
    }

    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    pub fn pruned(&self) -> usize {
        self.pruned
    }

    pub fn total(&self) -> usize {
        self.total
    }

    /// This submission's resolve-time cache counters (memory/disk hits
    /// and misses attributable to it alone).
    pub fn resolve_stats(&self) -> CacheStats {
        self.resolve_stats
    }

    /// Blocks until every task of the submission has finished, then
    /// assembles and BY-corrects the relational database.
    pub fn wait(self) -> Result<(CleanMlDb, RunReport)> {
        let StudySubmission {
            inner, handle, index, grids, cache_hits, pruned, total, alpha, ..
        } = self;
        let workers = inner.pool.workers();
        let (artifacts, stats) = handle.wait()?;

        // Content-address every freshly produced, retained artifact. Cell
        // batches additionally fan their members out under the singleton
        // `cell/…` addresses, keeping query-granular warm hits intact.
        {
            let mut cache = inner.cache.lock().expect("cache lock");
            for (id, artifact) in artifacts.iter().enumerate() {
                if index[id].2 == NodeState::Run {
                    if let Some(a) = artifact {
                        cache.put(index[id].0, a);
                        if let Artifact::Cells(batch) = &**a {
                            for &(key, cell) in &batch.members {
                                cache.put(key, &Arc::new(Artifact::Cell(cell)));
                            }
                        }
                    }
                }
            }
        }

        let mut db = CleanMlDb::default();
        for &gid in &grids {
            let grid = artifacts[gid]
                .as_ref()
                .ok_or_else(|| CoreError::Stats("grid artifact missing after run".into()))?
                .grid();
            db.r1.extend(grid.r1_rows()?);
            db.r2.extend(grid.r2_rows()?);
            db.r3.extend(grid.r3_rows()?);
        }
        db.apply_benjamini_yekutieli(alpha);
        if let Some(store) = inner.store() {
            store.flush();
        }

        let report = RunReport {
            executed: stats.executed,
            remote_executed: stats.remote_executed,
            cache_hits,
            pruned,
            total,
            workers,
            remote_workers: stats.remote_workers,
            releases: stats.releases,
        };
        Ok((db, report))
    }
}

/// Builds the complete study DAG for `error_types` under `cfg` and returns
/// it with the grid (reduce) sink of every dataset × error-type pair.
///
/// This is deliberately a pure function of its arguments: the coordinator
/// and every remote worker call it with the same [`StudySpec`]-shipped
/// inputs and obtain graphs whose node ids and content addresses agree bit
/// for bit — the lease protocol's whole addressing plane rests on that.
pub fn build_study_graph(
    error_types: &[ErrorType],
    cfg: &ExperimentConfig,
) -> (TaskGraph<Artifact>, Vec<TaskId>) {
    let mut graph: TaskGraph<Artifact> = TaskGraph::new();
    let mut grids: Vec<TaskId> = Vec::new();
    for &et in error_types {
        for plan in dataset_plan(et, cfg.base_seed) {
            grids.push(build_grid_tasks(&mut graph, &plan, et, *cfg));
        }
    }
    (graph, grids)
}

/// Canonical content-address strings. Seeds and float parameters are
/// rendered as exact bit patterns, so a key never aliases across configs.
fn data_cname(plan: &DatasetPlan) -> String {
    let base = format!("gen/{}/{:016x}", plan.spec_name, plan.seed);
    match plan.variant {
        None => base,
        Some((strategy, vseed)) => {
            format!("var/{base}/{}/{vseed:016x}", strategy.suffix())
        }
    }
}

fn budget_tag(cfg: &ExperimentConfig) -> String {
    format!("bud{}x{}", cfg.search.n_candidates, cfg.search.cv_folds)
}

/// One `(dataset, error type, cleaning method, model)` cell of the study
/// grid, addressable without running the rest of the study. Names match
/// the catalogue (`Detection::name` / `Repair::name` / `ModelKind::name`)
/// and the dataset plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CellQuery {
    pub error_type: ErrorType,
    pub dataset: String,
    pub detection: String,
    pub repair: String,
    pub model: String,
}

/// Builds the 1×1 grid DAG for one cell and returns it with its reduce
/// sink.
///
/// The cell keeps the *full-study* method and model indices in every seed
/// and content address, so its `Split`/`Clean`/`Train`/`Evaluate` tasks
/// are byte-for-byte the same tasks a whole study of this configuration
/// would run — a warm engine answers a cell query from the memo, and a
/// cold cell query pre-warms the study.
pub fn build_query_graph(
    q: &CellQuery,
    cfg: &ExperimentConfig,
) -> Result<(TaskGraph<Artifact>, Vec<TaskId>)> {
    let et = q.error_type;
    let plan = dataset_plan(et, cfg.base_seed)
        .into_iter()
        .find(|p| p.name == q.dataset)
        .ok_or_else(|| {
            CoreError::Unsupported(format!(
                "unknown dataset '{}' for error type {}",
                q.dataset,
                et.name()
            ))
        })?;
    let method = CleaningMethod::catalogue(et)
        .into_iter()
        .enumerate()
        .find(|(_, m)| m.detection.name() == q.detection && m.repair.name() == q.repair)
        .ok_or_else(|| {
            CoreError::Unsupported(format!(
                "unknown cleaning method '{}-{}' for error type {}",
                q.detection,
                q.repair,
                et.name()
            ))
        })?;
    let model = PAPER_MODELS
        .iter()
        .enumerate()
        .find(|(_, k)| k.name() == q.model)
        .map(|(ki, &k)| (ki, k))
        .ok_or_else(|| CoreError::Unsupported(format!("unknown model '{}'", q.model)))?;

    let mut graph: TaskGraph<Artifact> = TaskGraph::new();
    let scope = GridScope {
        methods: vec![method],
        models: vec![model],
        n_models_full: PAPER_MODELS.len(),
        subset: true,
    };
    let grid = build_grid_tasks_scoped(&mut graph, &plan, et, *cfg, scope);
    Ok((graph, vec![grid]))
}

/// Which slice of the method × model grid to emit. Indices are positions
/// in the *full* catalogue/model list — they parameterize seeds and
/// content addresses, so a subset cell is the same task as its full-study
/// counterpart.
struct GridScope {
    methods: Vec<(usize, CleaningMethod)>,
    models: Vec<(usize, ModelKind)>,
    n_models_full: usize,
    /// Subset grids get their own reduce content address (a 1×1 grid is
    /// not the full grid artifact).
    subset: bool,
}

impl GridScope {
    fn full(et: ErrorType) -> GridScope {
        GridScope {
            methods: CleaningMethod::catalogue(et).into_iter().enumerate().collect(),
            models: PAPER_MODELS.iter().copied().enumerate().collect(),
            n_models_full: PAPER_MODELS.len(),
            subset: false,
        }
    }
}

/// Emits all tasks of one dataset × error-type grid; returns the reduce
/// node.
fn build_grid_tasks(
    g: &mut TaskGraph<Artifact>,
    plan: &DatasetPlan,
    et: ErrorType,
    cfg: ExperimentConfig,
) -> TaskId {
    build_grid_tasks_scoped(g, plan, et, cfg, GridScope::full(et))
}

/// Emits the tasks of one dataset × error-type grid restricted to
/// `scope`'s methods × models; returns the reduce node.
fn build_grid_tasks_scoped(
    g: &mut TaskGraph<Artifact>,
    plan: &DatasetPlan,
    et: ErrorType,
    cfg: ExperimentConfig,
    scope: GridScope,
) -> TaskId {
    let GridScope { methods, models, n_models_full, subset } = scope;
    let (n_methods, n_models) = (methods.len(), models.len());
    // Every node this grid adds belongs to `plan.name` for scheduling
    // purposes: the pool's cost model is keyed per (kind, dataset), so a
    // Train on EEG never borrows a Train-on-University runtime estimate.
    let first_node = g.len();

    // GenerateDataset: the base spec, plus the injection step for mislabel
    // variants. Base generation is shared across variants and error types
    // through content-addressed dedup.
    let base_cname = format!("gen/{}/{:016x}", plan.spec_name, plan.seed);
    let (spec_name, seed) = (plan.spec_name, plan.seed);
    let base_id = g.task(
        TaskKind::GenerateDataset,
        base_cname.clone(),
        CacheKey::of(&base_cname),
        vec![],
        move |_| {
            let spec = spec_by_name(spec_name).expect("known dataset spec");
            Ok(Artifact::Dataset(Arc::new(generate(spec, seed))))
        },
    );
    let dname = data_cname(plan);
    let data_id = match plan.variant {
        None => base_id,
        Some((strategy, vseed)) => g.task(
            TaskKind::GenerateDataset,
            dname.clone(),
            CacheKey::of(&dname),
            vec![base_id],
            move |d| {
                Ok(Artifact::Dataset(Arc::new(inject_mislabel_variant(
                    d[0].dataset(),
                    strategy,
                    vseed,
                ))))
            },
        ),
    };

    let ctx_cname = format!("ctx/{dname}");
    let ctx_id = g.task(
        TaskKind::Context,
        ctx_cname,
        CacheKey::of(&format!("ctx/{dname}")),
        vec![data_id],
        |d| Ok(Artifact::Context(Arc::new(tasks::dataset_context(d[0].dataset())?))),
    );

    let mut cell_ids: Vec<TaskId> = Vec::with_capacity(cfg.n_splits * n_methods * n_models);
    for s in 0..cfg.n_splits {
        let split_cname = format!(
            "split/{dname}/{}/s{s}/frac{:016x}/seed{:016x}",
            et.name(),
            cfg.test_fraction.to_bits(),
            cfg.split_seed(s),
        );
        let split_id = g.task(
            TaskKind::Split,
            format!("split/{}/{}/s{s}", plan.name, et.name()),
            CacheKey::of(&split_cname),
            vec![data_id, ctx_id],
            move |d| {
                Ok(Artifact::Split(Arc::new(tasks::make_split(
                    d[0].dataset(),
                    et,
                    d[1].context(),
                    &cfg,
                    s,
                )?)))
            },
        );
        let fit_seed = cfg.fit_seed(s);

        let dirty_ids: Vec<(TaskId, String)> = models
            .iter()
            .map(|&(ki, kind)| {
                let cname = format!(
                    "traind/{split_cname}/{}/seed{:016x}/{}",
                    kind.name(),
                    fit_seed.wrapping_add(ki as u64),
                    budget_tag(&cfg),
                );
                let id = g.task(
                    TaskKind::Train,
                    format!("train/{}/{}/s{s}/dirty/{}", plan.name, et.name(), kind.name()),
                    CacheKey::of(&cname),
                    vec![split_id, ctx_id],
                    move |d| {
                        Ok(Artifact::Trained(Arc::new(tasks::train_dirty(
                            kind,
                            ki,
                            d[0].split(),
                            d[1].context(),
                            &cfg,
                            fit_seed,
                        )?)))
                    },
                );
                (id, cname)
            })
            .collect();

        for &(mi, method) in &methods {
            let clean_cname = format!(
                "clean/{split_cname}/{}-{}/seed{:016x}",
                method.detection.name(),
                method.repair.name(),
                fit_seed.wrapping_add(1000 + mi as u64),
            );
            let clean_id = g.task(
                TaskKind::Clean,
                format!(
                    "clean/{}/{}/s{s}/{}-{}",
                    plan.name,
                    et.name(),
                    method.detection.name(),
                    method.repair.name()
                ),
                CacheKey::of(&clean_cname),
                vec![split_id, ctx_id],
                move |d| {
                    Ok(Artifact::Clean(Arc::new(tasks::make_clean(
                        &method,
                        mi,
                        et,
                        d[0].split(),
                        d[1].context(),
                        fit_seed,
                    )?)))
                },
            );

            // (dirty id, tclean id, singleton cell content name) per model —
            // full grids fuse these into one batched Evaluate below.
            let mut members: Vec<(TaskId, TaskId, String)> = Vec::with_capacity(n_models);
            for (pos_k, &(ki, kind)) in models.iter().enumerate() {
                let tclean_cname = format!(
                    "trainc/{clean_cname}/{}/seed{:016x}/{}",
                    kind.name(),
                    fit_seed.wrapping_add(2000 + (mi * n_models_full + ki) as u64),
                    budget_tag(&cfg),
                );
                let tclean_id = g.task(
                    TaskKind::Train,
                    format!(
                        "train/{}/{}/s{s}/{}-{}/{}",
                        plan.name,
                        et.name(),
                        method.detection.name(),
                        method.repair.name(),
                        kind.name()
                    ),
                    CacheKey::of(&tclean_cname),
                    vec![clean_id, ctx_id],
                    move |d| {
                        Ok(Artifact::Trained(Arc::new(tasks::train_clean(
                            kind,
                            ki,
                            mi,
                            n_models_full,
                            d[0].clean(),
                            d[1].context(),
                            &cfg,
                            fit_seed,
                        )?)))
                    },
                );

                let cell_cname = format!("cell/{}|{tclean_cname}", dirty_ids[pos_k].1);
                if subset {
                    // Query-granular grids keep singleton Evaluate tasks at
                    // the same content addresses as always, so a warm memo
                    // (fanned out from a full study's batches) answers them.
                    let cell_id = g.task(
                        TaskKind::Evaluate,
                        format!("cell/{}/{}/s{s}/m{mi}/{}", plan.name, et.name(), kind.name()),
                        CacheKey::of(&cell_cname),
                        vec![dirty_ids[pos_k].0, tclean_id, clean_id, ctx_id],
                        move |d| {
                            Ok(Artifact::Cell(tasks::evaluate_cell(
                                d[0].trained(),
                                d[1].trained(),
                                d[2].clean(),
                                d[3].context(),
                            )?))
                        },
                    );
                    cell_ids.push(cell_id);
                } else {
                    members.push((dirty_ids[pos_k].0, tclean_id, cell_cname));
                }
            }

            if !subset {
                // One fused Evaluate per (dataset, split, cleaning method):
                // its content address derives from the member set, and the
                // artifact carries each member's singleton address so the
                // results fan back into the cache at collection time.
                let batch_cname = format!(
                    "cells/{}",
                    members.iter().map(|(_, _, c)| c.as_str()).collect::<Vec<_>>().join("|")
                );
                let member_keys: Vec<CacheKey> =
                    members.iter().map(|(_, _, c)| CacheKey::of(c)).collect();
                let mut deps = vec![clean_id, ctx_id];
                for &(dirty_id, tclean_id, _) in &members {
                    deps.push(dirty_id);
                    deps.push(tclean_id);
                }
                let batch_id = g.task(
                    TaskKind::Evaluate,
                    format!("cells/{}/{}/s{s}/m{mi}", plan.name, et.name()),
                    CacheKey::of(&batch_cname),
                    deps,
                    move |d| {
                        let mut out = Vec::with_capacity(member_keys.len());
                        for (k, &key) in member_keys.iter().enumerate() {
                            let cell = tasks::evaluate_cell(
                                d[2 + 2 * k].trained(),
                                d[3 + 2 * k].trained(),
                                d[0].clean(),
                                d[1].context(),
                            )?;
                            out.push((key, cell));
                        }
                        Ok(Artifact::Cells(Arc::new(CellBatch { members: out })))
                    },
                );
                cell_ids.push(batch_id);
            }
        }
    }

    let grid_cname = if subset {
        // a sliced grid is a different artifact from the full one — its
        // content address names the selected full-catalogue indices
        let mi_list: Vec<String> = methods.iter().map(|(mi, _)| mi.to_string()).collect();
        let ki_list: Vec<String> = models.iter().map(|(ki, _)| ki.to_string()).collect();
        format!(
            "gridsub/{dname}/{}/splits{}/frac{:016x}/base{:016x}/{}/m{}/k{}",
            et.name(),
            cfg.n_splits,
            cfg.test_fraction.to_bits(),
            cfg.base_seed,
            budget_tag(&cfg),
            mi_list.join("-"),
            ki_list.join("-"),
        )
    } else {
        format!(
            "grid/{dname}/{}/splits{}/frac{:016x}/base{:016x}/{}/methods{}/models{}",
            et.name(),
            cfg.n_splits,
            cfg.test_fraction.to_bits(),
            cfg.base_seed,
            budget_tag(&cfg),
            n_methods,
            n_models,
        )
    };
    let mut deps = vec![ctx_id];
    deps.extend(&cell_ids);
    let dataset_name = plan.name.clone();
    let methods_owned: Vec<CleaningMethod> = methods.iter().map(|&(_, m)| m).collect();
    let models_owned: Vec<ModelKind> = models.iter().map(|&(_, k)| k).collect();
    let n_splits = cfg.n_splits;
    let reduce_id = g.task(
        TaskKind::Reduce,
        format!("grid/{}/{}", plan.name, et.name()),
        CacheKey::of(&grid_cname),
        deps,
        move |d| {
            let metric = d[0].context().metric;
            let mut cells: Vec<Vec<Vec<CellEval>>> = Vec::with_capacity(n_splits);
            let mut it = d[1..].iter();
            for _ in 0..n_splits {
                let mut per_split = Vec::with_capacity(methods_owned.len());
                for _ in 0..methods_owned.len() {
                    // Full grids deliver one batch per (split, method) with
                    // the models in order; subset grids deliver singleton
                    // cells in the same model order.
                    if subset {
                        let mut row = Vec::with_capacity(models_owned.len());
                        for _ in 0..models_owned.len() {
                            row.push(it.next().expect("cell count matches").cell());
                        }
                        per_split.push(row);
                    } else {
                        let batch = it.next().expect("batch count matches").cells();
                        per_split.push(batch.members.iter().map(|&(_, c)| c).collect());
                    }
                }
                cells.push(per_split);
            }
            Ok(Artifact::Grid(Arc::new(EvalGrid::from_parts(
                dataset_name,
                et,
                methods_owned,
                models_owned,
                metric,
                cells,
            )?)))
        },
    );
    g.class_range(first_node, &plan.name);
    reduce_id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_codec_round_trips() {
        let cell = Artifact::Cell(CellEval {
            val_dirty: 0.75,
            val_clean: 0.8,
            acc_b: 0.7,
            acc_c: None,
            acc_d: 0.9,
        });
        let decoded = Artifact::decode(&cell.encode().unwrap()).unwrap();
        assert_eq!(decoded.cell(), cell.cell());

        let cell_cd = Artifact::Cell(CellEval {
            val_dirty: 0.1,
            val_clean: 0.2,
            acc_b: 0.3,
            acc_c: Some(0.4),
            acc_d: 0.5,
        });
        let decoded = Artifact::decode(&cell_cd.encode().unwrap()).unwrap();
        assert_eq!(decoded.cell(), cell_cd.cell());

        let ctx = Artifact::Context(Arc::new(DatasetContext {
            metric: Metric::F1 { positive: 1 },
            classes: vec!["no".into(), "yes with space".into(), String::new()],
        }));
        let decoded = Artifact::decode(&ctx.encode().unwrap()).unwrap();
        assert_eq!(decoded.context(), ctx.context());

        assert!(Artifact::decode(b"nonsense").is_none());
        assert!(Artifact::decode(b"").is_none());
        // truncations and trailing bytes are misses, not panics
        let bytes = ctx.encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(Artifact::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut long = bytes;
        long.push(0);
        assert!(Artifact::decode(&long).is_none(), "trailing byte");
    }

    #[test]
    fn trained_model_codec_round_trips() {
        let trained = Artifact::Trained(Arc::new(TrainedModel {
            model: cleanml_ml::ModelSpec::default_for(ModelKind::NaiveBayes)
                .fit(
                    &cleanml_dataset::FeatureMatrix::from_parts(
                        vec![0.0, 1.0, 0.0, 1.0],
                        4,
                        1,
                        vec![0, 1, 0, 1],
                        2,
                    ),
                    1,
                )
                .unwrap(),
            val: 0.5,
        }));
        let bytes = trained.encode().expect("trained models persist");
        assert_eq!(bytes[0], b'T');
        let back = Artifact::decode(&bytes).expect("decode");
        assert_eq!(back.trained(), trained.trained());
        assert!(!trained.promote_to_memory(), "heavy artifacts stay out of the memory map");
        assert!(Artifact::decode(b"T\x01\x02").is_none());
    }

    #[test]
    fn split_and_clean_codecs_round_trip() {
        use cleanml_datagen::{generate, spec_by_name};
        let data = generate(spec_by_name("Sensor").unwrap(), 11);
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        let et = ErrorType::Outliers;
        let ctx = tasks::dataset_context(&data).unwrap();
        let split = tasks::make_split(&data, et, &ctx, &cfg, 0).unwrap();
        let method = CleaningMethod::catalogue(et)[0];
        let clean = tasks::make_clean(&method, 0, et, &split, &ctx, cfg.fit_seed(0)).unwrap();

        let split_art = Artifact::Split(Arc::new(split));
        let bytes = split_art.encode().expect("splits persist");
        assert_eq!(bytes[0], b'S');
        let back = Artifact::decode(&bytes).expect("decode split");
        assert_eq!(back.split(), split_art.split());
        assert!(!split_art.promote_to_memory());

        let clean_art = Artifact::Clean(Arc::new(clean));
        let bytes = clean_art.encode().expect("cleaned matrices persist");
        assert_eq!(bytes[0], b'K');
        let back = Artifact::decode(&bytes).expect("decode clean");
        assert_eq!(back.clean(), clean_art.clean());

        // missing-values cleans carry no dirty-test matrix: the absent arm
        let et = ErrorType::MissingValues;
        let split = tasks::make_split(&data, et, &ctx, &cfg, 1).unwrap();
        let method = CleaningMethod::catalogue(et)[0];
        let clean = tasks::make_clean(&method, 0, et, &split, &ctx, cfg.fit_seed(1)).unwrap();
        assert!(clean.dirty_test_m.is_none());
        let clean_art = Artifact::Clean(Arc::new(clean));
        let back = Artifact::decode(&clean_art.encode().unwrap()).expect("decode clean -");
        assert_eq!(back.clean(), clean_art.clean());

        // generated datasets still have no serial form
        assert!(Artifact::Dataset(Arc::new(data)).encode().is_none());
    }

    #[test]
    fn grid_graph_has_expected_shape() {
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        let mut g: TaskGraph<Artifact> = TaskGraph::new();
        let plans = dataset_plan(ErrorType::Inconsistencies, cfg.base_seed);
        let grid = build_grid_tasks(&mut g, &plans[0], ErrorType::Inconsistencies, cfg);
        // 1 generate + 1 ctx + per split (1 split + 7 dirty train + 1 method
        // × (1 clean + 7 train + 1 fused evaluate batch)) + 1 reduce
        let expected = 2 + 2 * (1 + 7 + 1 + 7 + 1) + 1;
        assert_eq!(g.len(), expected);
        assert_eq!(grid, g.len() - 1);
    }

    #[test]
    fn cell_batch_codec_round_trips() {
        let batch = Artifact::Cells(Arc::new(CellBatch {
            members: vec![
                (
                    CacheKey::of("cell/a"),
                    CellEval {
                        val_dirty: 0.1,
                        val_clean: 0.2,
                        acc_b: 0.3,
                        acc_c: None,
                        acc_d: 0.4,
                    },
                ),
                (
                    CacheKey::of("cell/b"),
                    CellEval {
                        val_dirty: 0.5,
                        val_clean: 0.6,
                        acc_b: 0.7,
                        acc_c: Some(0.8),
                        acc_d: 0.9,
                    },
                ),
            ],
        }));
        let bytes = batch.encode().expect("batches persist");
        assert_eq!(bytes[0], b'B');
        let back = Artifact::decode(&bytes).expect("decode");
        assert_eq!(back.cells(), batch.cells());
        assert!(batch.promote_to_memory(), "batches stay warm in the memo");
        // truncations are misses, not panics
        for cut in 0..bytes.len() {
            assert!(Artifact::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn shared_base_dataset_is_deduplicated() {
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        let mut g: TaskGraph<Artifact> = TaskGraph::new();
        let plans = dataset_plan(ErrorType::Mislabels, cfg.base_seed);
        // EEGuniform and EEGmajor share the EEG base generation task.
        let eeg_variants: Vec<&DatasetPlan> =
            plans.iter().filter(|p| p.spec_name == "EEG").collect();
        assert!(eeg_variants.len() >= 2);
        build_grid_tasks(&mut g, eeg_variants[0], ErrorType::Mislabels, cfg);
        let before = g.len();
        build_grid_tasks(&mut g, eeg_variants[1], ErrorType::Mislabels, cfg);
        let gen_nodes = g
            .nodes
            .iter()
            .filter(|n| n.kind == TaskKind::GenerateDataset && n.label.starts_with("gen/EEG"))
            .count();
        assert_eq!(gen_nodes, 1, "base generation emitted once");
        assert!(g.len() > before, "variant still adds its own tasks");
    }
}
