//! Intra-task parallelism on the resident pool: heavy task bodies fan
//! indexed subwork onto *idle* workers.
//!
//! A task body that calls [`cleanml_parallel::run_indexed`] on a worker
//! thread of a multi-worker pool lands here: the installed
//! [`PoolBridge`] publishes the batch on a pool-wide queue, wakes the
//! pool's parked workers, and keeps claiming indices itself. Idle
//! workers — and only idle workers — pick up the rest between frontier
//! checks, so helping never blocks a claimed task lease: a worker
//! holding a runnable pool task always runs it in preference to
//! someone else's subwork, and the opener makes progress alone even
//! when every other worker is busy.
//!
//! Determinism is owned by `run_indexed`: each claimed index writes its
//! result into its own slot, so *which* thread runs an index never
//! shows in the output, and nested fan-out runs inline. The bridge is
//! only installed when the pool has more than one worker; a
//! single-worker pool executes every body bit-identically to the
//! serial path with zero queue traffic.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cleanml_parallel::{BatchCounters, Parker, SubworkBridge};

thread_local! {
    /// Label and trace track of the pool task currently executing on
    /// this worker thread; subwork batches it opens inherit both, which
    /// is what nests helper spans under the parent task in the Chrome
    /// trace.
    static CURRENT_TASK: RefCell<Option<(String, u64)>> = const { RefCell::new(None) };
}

pub(crate) fn set_current_task(label: &str, tid: u64) {
    CURRENT_TASK.with(|c| *c.borrow_mut() = Some((label.to_string(), tid)));
}

pub(crate) fn clear_current_task() {
    CURRENT_TASK.with(|c| *c.borrow_mut() = None);
}

fn current_task() -> (String, u64) {
    CURRENT_TASK.with(|c| c.borrow().clone()).unwrap_or_else(|| ("subwork".to_string(), 0))
}

/// One fanned-out batch of indexed subtasks.
struct Batch {
    counters: BatchCounters,
    /// The opener's work closure with its lifetime erased. Sound
    /// because [`PoolBridge::run`] does not return until `counters`
    /// reports all indices complete, which happens-after the last
    /// dereference: a helper only touches `work` between claiming an
    /// index and completing it.
    work: &'static (dyn Fn(usize) + Sync),
    /// Parent pool task's label, for helper trace spans.
    label: String,
    /// Parent task's trace track; helper spans land on it.
    tid: u64,
    /// Set when any index panicked. The opener re-raises after the
    /// batch drains, so a panicking subtask fails the parent task just
    /// as it would have serially — and `done` still reaches `n`, so the
    /// opener can never deadlock on a panicked index.
    poisoned: AtomicBool,
    done: Parker,
}

impl Batch {
    fn run_one(&self, i: usize) {
        let r = catch_unwind(AssertUnwindSafe(|| (self.work)(i)));
        if r.is_err() {
            self.poisoned.store(true, Ordering::SeqCst);
        }
        if self.counters.complete() {
            self.done.notify_all();
        }
    }
}

/// The pool-wide subwork queue: open batches, oldest first.
pub(crate) struct SubworkShared {
    queue: Mutex<Vec<Arc<Batch>>>,
}

impl SubworkShared {
    pub(crate) fn new() -> Self {
        SubworkShared { queue: Mutex::new(Vec::new()) }
    }

    /// Whether any open batch still has unclaimed indices. Idle workers
    /// poll this between frontier checks, with no other lock held.
    pub(crate) fn has_work(&self) -> bool {
        self.queue.lock().expect("subwork lock").iter().any(|b| !b.counters.fully_claimed())
    }

    /// Claims and runs subtasks until every open batch is fully
    /// claimed, oldest batch first. Called by idle workers with no pool
    /// lock held; one trace span is recorded per helper-batch stint, on
    /// the parent task's track.
    pub(crate) fn help(&self) {
        loop {
            let batch = {
                let mut q = self.queue.lock().expect("subwork lock");
                q.retain(|b| !b.counters.fully_claimed());
                q.first().cloned()
            };
            let Some(batch) = batch else { return };
            let t = crate::telemetry::global();
            let started = Instant::now();
            let mut ran = 0u64;
            while let Some(i) = batch.counters.claim() {
                batch.run_one(i);
                ran += 1;
            }
            if ran > 0 && t.enabled() {
                t.subtasks_executed.add(ran);
                if t.tracing_on() {
                    t.span(
                        &format!("sub:{}", batch.label),
                        "subwork",
                        started,
                        started.elapsed(),
                        batch.tid,
                        vec![("subtasks", ran.to_string())],
                    );
                }
            }
        }
    }
}

/// The [`SubworkBridge`] installed on every worker thread of a
/// multi-worker pool.
pub(crate) struct PoolBridge {
    shared: Arc<SubworkShared>,
    /// Wakes workers parked on the pool's `work` condvar when a batch
    /// is published (held weakly through a closure so the bridge never
    /// keeps a dropped pool alive).
    notify: Box<dyn Fn() + Send + Sync>,
}

impl PoolBridge {
    pub(crate) fn new(shared: Arc<SubworkShared>, notify: Box<dyn Fn() + Send + Sync>) -> Self {
        PoolBridge { shared, notify }
    }
}

impl SubworkBridge for PoolBridge {
    fn run(&self, n: usize, work: &(dyn Fn(usize) + Sync)) {
        // SAFETY: this function blocks until `counters` reports all `n`
        // indices complete, so the erased borrow outlives every use.
        let work: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(work) };
        let (label, tid) = current_task();
        let batch = Arc::new(Batch {
            counters: BatchCounters::new(n),
            work,
            label,
            tid,
            poisoned: AtomicBool::new(false),
            done: Parker::default(),
        });
        self.shared.queue.lock().expect("subwork lock").push(Arc::clone(&batch));
        (self.notify)();
        let t = crate::telemetry::global();
        if t.enabled() {
            t.subwork_batches.inc();
        }
        // Self-drive: the opener claims alongside any helpers, so the
        // batch completes even if no worker ever goes idle — a claimed
        // lease never waits on pool capacity.
        let mut ran = 0u64;
        while let Some(i) = batch.counters.claim() {
            batch.run_one(i);
            ran += 1;
        }
        if ran > 0 && t.enabled() {
            t.subtasks_executed.add(ran);
        }
        self.shared.queue.lock().expect("subwork lock").retain(|b| !Arc::ptr_eq(b, &batch));
        batch.done.wait_until(|| batch.counters.is_done());
        if batch.poisoned.load(Ordering::SeqCst) {
            panic!("subwork batch of task '{}' panicked", batch.label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_task_roundtrip() {
        assert_eq!(current_task(), ("subwork".to_string(), 0));
        set_current_task("train eeg", 3);
        assert_eq!(current_task(), ("train eeg".to_string(), 3));
        clear_current_task();
        assert_eq!(current_task(), ("subwork".to_string(), 0));
    }

    #[test]
    fn opener_self_drives_with_no_helpers() {
        // No worker ever calls help(): the opener must complete the
        // batch alone, in slot order, and leave the queue empty.
        let shared = Arc::new(SubworkShared::new());
        let bridge = PoolBridge::new(Arc::clone(&shared), Box::new(|| {}));
        let hits = Mutex::new(Vec::new());
        bridge.run(8, &|i| hits.lock().unwrap().push(i));
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert!(!shared.has_work());
        assert!(shared.queue.lock().unwrap().is_empty());
    }

    #[test]
    fn idle_helpers_share_the_batch() {
        let shared = Arc::new(SubworkShared::new());
        let bridge = PoolBridge::new(Arc::clone(&shared), Box::new(|| {}));
        let hits = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    // emulate an idle worker's poll loop for a while
                    let deadline = Instant::now() + std::time::Duration::from_secs(2);
                    while Instant::now() < deadline {
                        shared.help();
                        if hits.load(Ordering::SeqCst) >= 64 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }
            bridge.run(64, &|_| {
                hits.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
        assert!(shared.queue.lock().unwrap().is_empty());
    }

    #[test]
    fn panicking_subtask_fails_the_opener_without_deadlock() {
        let shared = Arc::new(SubworkShared::new());
        let bridge = PoolBridge::new(Arc::clone(&shared), Box::new(|| {}));
        let err = catch_unwind(AssertUnwindSafe(|| {
            bridge.run(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(err.is_err());
        assert!(shared.queue.lock().unwrap().is_empty());
    }
}
