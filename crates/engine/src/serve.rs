//! The serving plane: per-connection handling of `cleanml-query` clients
//! against a resident [`crate::Engine`].
//!
//! A client's first message is `Submit {request}` — a whole study or a
//! single `(dataset, error type, method, model)` cell. The handler
//! creates a submission on the resident core (deduping onto anything
//! already in flight), streams `Status` frames while it runs (which
//! double as keep-alives), honours a client `Cancel` or disconnect by
//! releasing the submission's subgraph, and finally ships the rendered
//! R1/R2/R3 CSV text plus a [`ServeReport`] the client can turn into a
//! `--cache-stats` line.
//!
//! Connection threads hold only a [`Weak`] engine reference: an engine
//! that dropped mid-conversation refuses further work instead of being
//! kept alive by its own clients.

use std::net::TcpStream;
use std::sync::Weak;
use std::time::Duration;

use crate::event::TaskKind;
use crate::remote::proto::{self, poll_recv, Message, Polled, Request, ServeReport};
use crate::study::{CellQuery, EngineInner, StudySubmission};
use crate::telemetry;

/// Decrements the active-submissions gauge on every exit path.
struct ActiveGuard;

impl ActiveGuard {
    fn new() -> ActiveGuard {
        telemetry::global().submissions_active.inc();
        ActiveGuard
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        telemetry::global().submissions_active.dec();
    }
}

/// How often the server pushes a `Status` frame (and checks for a client
/// `Cancel`).
const STATUS_INTERVAL: Duration = Duration::from_millis(200);

fn send_error(stream: &TcpStream, error: String) {
    let _ = proto::send(&mut &*stream, &Message::ServeError { error });
    let _ = proto::send(&mut &*stream, &Message::Bye);
}

fn kind_counts_u64(counts: &[(TaskKind, usize)]) -> Vec<(TaskKind, u64)> {
    counts.iter().map(|&(k, n)| (k, n as u64)).collect()
}

/// Serves one `Submit` connection end to end. Invoked by the hub service
/// with the already-read first message.
pub(crate) fn handle_client(engine: &Weak<EngineInner>, stream: TcpStream, first: Message) {
    let Some(inner) = engine.upgrade() else {
        send_error(&stream, "engine is shutting down".into());
        return;
    };
    let Message::Submit { request } = first else {
        return;
    };
    let Some(request) = Request::decode(&request) else {
        send_error(&stream, "undecodable request".into());
        return;
    };

    let t = telemetry::global();
    let _active = ActiveGuard::new();
    let submission: StudySubmission = match request {
        Request::Study(spec) => {
            t.submissions_study.inc();
            EngineInner::submit_study(&inner, &spec.error_types, &spec.cfg, None)
        }
        Request::Cell { spec, dataset, detection, repair, model } => {
            t.submissions_cell.inc();
            let [error_type] = spec.error_types[..] else {
                send_error(&stream, "a cell request names exactly one error type".into());
                return;
            };
            let query = CellQuery { error_type, dataset, detection, repair, model };
            match EngineInner::submit_query(&inner, &query, &spec.cfg, None) {
                Ok(sub) => sub,
                Err(e) => {
                    send_error(&stream, e.to_string());
                    return;
                }
            }
        }
    };

    // A submission with nothing to run was answered entirely from the
    // warm memo/store: count it before the progress loop reports it.
    if submission.progress().1 == 0 {
        t.warm_answers.inc();
    }

    // Progress loop: one Status per interval (and always at least one,
    // so even a memo-answered submission reports its hit counts),
    // watching for Cancel or a vanished client. Cancellation releases
    // the submission's exclusive subgraph; tasks shared with other
    // submissions keep running.
    loop {
        let (done, to_run) = submission.progress();
        let status = Message::Status {
            done: done as u64,
            to_run: to_run as u64,
            cache_hits: submission.cache_hits() as u64,
            pruned: submission.pruned() as u64,
            dropped_events: t.events_dropped(),
        };
        if proto::send(&mut &stream, &status).is_err() {
            submission.cancel();
            let _ = submission.wait();
            return;
        }
        if submission.done() {
            break;
        }
        match poll_recv(&stream, STATUS_INTERVAL) {
            Polled::Pending | Polled::Msg(Message::Heartbeat) => {}
            Polled::Msg(Message::Cancel) => {
                t.cancellations.inc();
                submission.cancel();
                let _ = submission.wait(); // release holds before replying
                send_error(&stream, "submission cancelled".into());
                return;
            }
            Polled::Msg(_) | Polled::Closed => {
                // protocol violation or vanished client: withdraw
                submission.cancel();
                let _ = submission.wait();
                return;
            }
        }
    }

    let resolve = submission.resolve_stats();
    let (cache_hits, pruned, total) =
        (submission.cache_hits(), submission.pruned(), submission.total());
    match submission.wait() {
        Ok((db, report)) => {
            let csv = format!("{}{}{}", db.r1_csv(), db.r2_csv(), db.r3_csv());
            let (store_bytes, store_entries) = inner.store_totals();
            let (disk_writes, disk_evictions) =
                inner.store().map_or((0, 0), |s| (s.writes() as u64, s.evictions() as u64));
            let serve_report = ServeReport {
                memory_hits: resolve.memory_hits as u64,
                disk_hits: resolve.disk_hits as u64,
                misses: resolve.misses as u64,
                disk_writes,
                disk_evictions,
                store_entries: store_entries as u64,
                store_bytes,
                executed: kind_counts_u64(&report.executed),
                remote_executed: kind_counts_u64(&report.remote_executed),
                remote_workers: report.remote_workers as u64,
                releases: report.releases as u64,
                cache_hits: cache_hits as u64,
                pruned: pruned as u64,
                total: total as u64,
                dropped_events: t.events_dropped(),
            };
            let result =
                Message::ResultCsv { csv: csv.into_bytes(), report: serve_report.encode() };
            let _ = proto::send(&mut &stream, &result);
            let _ = proto::send(&mut &stream, &Message::Bye);
        }
        Err(e) => send_error(&stream, e.to_string()),
    }
}
