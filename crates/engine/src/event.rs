//! Progress and telemetry events emitted while a study executes.

use std::sync::mpsc::Sender;

/// The typed task categories of the study DAG (paper protocol steps plus
/// the engine's own bookkeeping nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// Generate a synthetic dataset (or inject a mislabel variant).
    GenerateDataset,
    /// Derive the per-dataset metric / label-class context.
    Context,
    /// Seeded 70/30 split plus the dirty-side baseline.
    Split,
    /// Fit one cleaning method and encode its evaluation matrices.
    Clean,
    /// Train one model family (dirty- or clean-side) with its search budget.
    Train,
    /// Score one (split, method, model) cell on cases B/C/D.
    Evaluate,
    /// Assemble an [`cleanml_core::EvalGrid`] from its cells.
    Reduce,
}

impl TaskKind {
    pub const ALL: [TaskKind; 7] = [
        TaskKind::GenerateDataset,
        TaskKind::Context,
        TaskKind::Split,
        TaskKind::Clean,
        TaskKind::Train,
        TaskKind::Evaluate,
        TaskKind::Reduce,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TaskKind::GenerateDataset => "generate",
            TaskKind::Context => "context",
            TaskKind::Split => "split",
            TaskKind::Clean => "clean",
            TaskKind::Train => "train",
            TaskKind::Evaluate => "evaluate",
            TaskKind::Reduce => "reduce",
        }
    }

    /// Static relative cost of one task of this kind, used to seed worker
    /// deques heaviest-first so the expensive work starts immediately and
    /// the critical path shortens. The ordering (Train ≫ Clean ≫ Split ≫
    /// the bookkeeping kinds) reflects measured quick-study profiles; a
    /// follow-up replaces these constants with observed per-task costs.
    pub fn cost_weight(self) -> u32 {
        match self {
            TaskKind::Train => 1000,
            TaskKind::Clean => 100,
            TaskKind::Split => 40,
            TaskKind::GenerateDataset => 20,
            TaskKind::Context => 4,
            TaskKind::Evaluate => 2,
            TaskKind::Reduce => 1,
        }
    }
}

/// One progress event. Sent best-effort: a dropped receiver never fails the
/// run.
#[derive(Debug, Clone)]
pub enum EngineEvent {
    /// The DAG is built and resolved against the cache.
    GraphReady {
        /// Total tasks in the DAG.
        total: usize,
        /// Tasks satisfied directly from the cache.
        cache_hits: usize,
        /// Tasks skipped because nothing downstream demands them (their
        /// consumers were cache hits).
        pruned: usize,
        /// Tasks that will execute.
        to_run: usize,
    },
    /// A worker picked the task up.
    TaskStarted { id: usize, kind: TaskKind, label: String },
    /// The task finished (`ok == false` means it errored and the run is
    /// aborting).
    TaskFinished { id: usize, kind: TaskKind, ok: bool },
    /// A remote worker completed the protocol handshake and joined the
    /// run's ready frontier.
    WorkerJoined { worker: String },
    /// A lease died — deadline missed or connection dropped — and its task
    /// re-entered the ready frontier for someone else to claim.
    LeaseExpired { worker: String, id: usize, kind: TaskKind },
    /// A remote worker's session ended (orderly or not) after completing
    /// `completed` leased tasks.
    WorkerLeft { worker: String, completed: usize },
    /// The whole run completed.
    RunFinished,
}

/// Where events go.
pub type EventSink = Sender<EngineEvent>;

/// Best-effort send. A failed send (receiver dropped or never drained)
/// is counted in the telemetry registry instead of vanishing, and the
/// count is surfaced in `Status`/`ServeReport` frames so clients can see
/// their progress view was lossy.
pub fn emit(sink: &Option<EventSink>, event: EngineEvent) {
    if let Some(s) = sink {
        if s.send(event).is_err() {
            crate::telemetry::global().events_dropped.inc();
        }
    }
}
