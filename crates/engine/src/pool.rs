//! Work-stealing execution of a resolved [`TaskGraph`], local and remote.
//!
//! Each local worker owns a deque: new-ready tasks are pushed to the
//! owner's back and popped LIFO (locality — a freshly unblocked `Train`
//! task reuses the `Clean` artifact still hot in cache), while idle workers
//! steal FIFO from victims' fronts (old, wide tasks first — the classic
//! Blumofe–Leiserson discipline, here with mutex-guarded deques rather than
//! lock-free Chase–Lev buffers, which at ≤ a few dozen workers measure the
//! same).
//!
//! With a [`RemoteLink`] attached, remote workers join the same frontier:
//! each accepted connection gets a lease-service thread that *claims* ready
//! tasks from the deques (heaviest leasable first), ships them over the
//! wire and applies the identical completion bookkeeping when the artifact
//! comes back — so local threads and remote workers race for the same work
//! and a task's provenance never changes its effect. An expired or
//! disconnected lease re-enters the frontier via [`reinject`]; the task is
//! simply executed by whoever claims it next.
//!
//! Scheduling state (dependency counters, result slots) lives outside the
//! deques; completion of the final task wakes every sleeper and the pool
//! drains.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cleanml_core::CoreError;

use crate::cache::{CacheKey, DiskCodec, DiskStore};
use crate::event::{emit, EngineEvent, EventSink, TaskKind};
use crate::graph::{NodeState, TaskGraph, TaskId};
use crate::remote::coordinator::{dispatch, RemoteCtx, RemoteHub};

/// Disk persistence wiring for a run: the shared store plus each node's
/// content address. Workers write codec-capable artifacts the moment their
/// task finishes — not at the end of the run — so a killed study keeps
/// every completed `Clean`/`Train`/`Evaluate` result.
pub struct PersistSink {
    pub store: Arc<DiskStore>,
    pub keys: Vec<CacheKey>,
}

/// Remote-execution wiring for a run: the hub accepting worker
/// connections, every node's content address (the wire lookup plane for
/// `Fetch`), and the encoded [`crate::remote::proto::StudySpec`] workers
/// rebuild the graph from.
pub struct RemoteLink {
    pub hub: Arc<RemoteHub>,
    pub keys: Vec<CacheKey>,
    pub spec: Vec<u8>,
}

/// Per-run execution report: what actually ran, where, and what the cache
/// absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Tasks executed on the local pool, by kind.
    pub executed: Vec<(TaskKind, usize)>,
    /// Tasks executed by remote workers, by kind.
    pub remote_executed: Vec<(TaskKind, usize)>,
    /// Tasks satisfied directly from the cache.
    pub cache_hits: usize,
    /// Tasks never run because no consumer demanded them.
    pub pruned: usize,
    /// Total nodes in the DAG.
    pub total: usize,
    /// Local worker threads used.
    pub workers: usize,
    /// Remote workers that completed a handshake during the run.
    pub remote_workers: usize,
    /// Leases orphaned by a worker death or deadline expiry whose tasks
    /// re-entered the ready frontier (and were then executed by someone
    /// else — the run does not finish otherwise).
    pub releases: usize,
}

impl RunReport {
    /// Locally executed task count for one kind.
    pub fn executed(&self, kind: TaskKind) -> usize {
        self.executed.iter().find(|(k, _)| *k == kind).map_or(0, |(_, n)| *n)
    }

    /// Remotely executed task count for one kind.
    pub fn remote(&self, kind: TaskKind) -> usize {
        self.remote_executed.iter().find(|(k, _)| *k == kind).map_or(0, |(_, n)| *n)
    }

    /// Tasks executed on the local pool.
    pub fn local_total(&self) -> usize {
        self.executed.iter().map(|(_, n)| n).sum()
    }

    /// Tasks executed by remote workers.
    pub fn remote_total(&self) -> usize {
        self.remote_executed.iter().map(|(_, n)| n).sum()
    }

    /// Total executed tasks, local and remote: every to-run task is
    /// executed exactly once, wherever it lands.
    pub fn executed_total(&self) -> usize {
        self.local_total() + self.remote_total()
    }
}

/// Node metadata the executors need after the graph is consumed.
pub(crate) type NodeMeta = (TaskKind, String, NodeState);

pub(crate) struct Shared<'g, A> {
    pub(crate) deques: Vec<Mutex<VecDeque<TaskId>>>,
    /// `pending[id]`: unfinished dependencies; task becomes ready at zero.
    pub(crate) pending: Vec<AtomicUsize>,
    pub(crate) dependents: Vec<Vec<TaskId>>,
    /// `consumers_left[id]`: runnable tasks that still need id's artifact.
    /// When it reaches zero and the node is not retained, the artifact is
    /// dropped — a paper-scale run would otherwise hold every trained model
    /// in memory until the end. A leased task counts as unfinished until
    /// its artifact lands, so remote workers can always fetch their inputs.
    pub(crate) consumers_left: Vec<AtomicUsize>,
    pub(crate) retain: &'g [bool],
    pub(crate) slots: &'g [Mutex<Option<A>>],
    pub(crate) remaining: AtomicUsize,
    pub(crate) abort: AtomicBool,
    pub(crate) error: Mutex<Option<CoreError>>,
    pub(crate) sleep: Mutex<()>,
    pub(crate) wake: Condvar,
    /// Local executions, indexed by `TaskKind::ALL` position.
    pub(crate) executed: Vec<AtomicUsize>,
    /// Remote executions, same indexing.
    pub(crate) remote_executed: Vec<AtomicUsize>,
    /// Remote workers that completed a handshake.
    pub(crate) remote_workers: AtomicUsize,
    /// Orphaned leases whose tasks re-entered the frontier.
    pub(crate) releases: AtomicUsize,
}

pub(crate) fn kind_index(kind: TaskKind) -> usize {
    TaskKind::ALL.iter().position(|&k| k == kind).expect("kind listed")
}

/// Execution counters of one run, split by provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    pub executed: Vec<(TaskKind, usize)>,
    pub remote_executed: Vec<(TaskKind, usize)>,
    pub remote_workers: usize,
    pub releases: usize,
}

/// Per-node artifacts (`None` for pruned or retired nodes) plus execution
/// counters.
pub type ExecutionOutcome<A> = (Vec<Option<A>>, ExecStats);

impl<A> Shared<'_, A> {
    /// Returns orphaned tasks to the ready frontier, heaviest kind first
    /// (the same LIFO trick the seeding uses: pushed in ascending weight so
    /// `pop_back` yields the heaviest), and wakes sleepers to claim them.
    pub(crate) fn reinject(&self, ids: &[TaskId], meta: &[NodeMeta]) {
        if ids.is_empty() {
            return;
        }
        let mut ordered: Vec<TaskId> = ids.to_vec();
        ordered.sort_by_key(|&id| (std::cmp::Reverse(meta[id].0.cost_weight()), id));
        let home = ids[0] % self.deques.len();
        {
            let mut deque = self.deques[home].lock().expect("deque");
            for &id in ordered.iter().rev() {
                deque.push_back(id);
            }
        }
        self.releases.fetch_add(ids.len(), Ordering::Relaxed);
        self.wake.notify_all();
    }
}

/// Completion bookkeeping shared by local workers and remote lease
/// handlers: persist the artifact (durability before progress — it reaches
/// disk before any dependent can observe it), publish it, retire inputs
/// whose last consumer this was, release newly-ready dependents onto
/// `home`'s deque, and wake sleepers.
///
/// `payload` short-circuits re-encoding when the artifact already travelled
/// the wire in its serial form.
#[allow(clippy::too_many_arguments)] // crate-private; mirrors execute's wiring
pub(crate) fn finish_ok<A>(
    shared: &Shared<'_, A>,
    id: TaskId,
    artifact: A,
    payload: Option<&[u8]>,
    home: usize,
    remote: bool,
    meta: &[NodeMeta],
    deps: &[Vec<TaskId>],
    persist: &Option<PersistSink>,
    events: &Option<EventSink>,
) where
    A: Clone + Send + Sync + DiskCodec,
{
    let kind = meta[id].0;
    if let Some(sink) = persist {
        match payload {
            Some(bytes) => {
                sink.store.store(sink.keys[id], bytes);
            }
            None => {
                if let Some(bytes) = artifact.encode() {
                    sink.store.store(sink.keys[id], &bytes);
                }
            }
        }
    }
    *shared.slots[id].lock().expect("slot") = Some(artifact);
    let counters = if remote { &shared.remote_executed } else { &shared.executed };
    counters[kind_index(kind)].fetch_add(1, Ordering::Relaxed);
    emit(events, EngineEvent::TaskFinished { id, kind, ok: true });
    // Retire inputs this task no longer shares with anyone.
    for &d in &deps[id] {
        if shared.consumers_left[d].fetch_sub(1, Ordering::AcqRel) == 1 && !shared.retain[d] {
            *shared.slots[d].lock().expect("slot") = None;
        }
    }
    let mut released = 0usize;
    for &dep_id in &shared.dependents[id] {
        if shared.pending[dep_id].fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.deques[home].lock().expect("deque").push_back(dep_id);
            released += 1;
        }
    }
    let left = shared.remaining.fetch_sub(1, Ordering::AcqRel) - 1;
    if released > 0 || left == 0 {
        shared.wake.notify_all();
    }
}

/// Records a task failure and aborts the run.
pub(crate) fn finish_err<A>(
    shared: &Shared<'_, A>,
    id: TaskId,
    kind: TaskKind,
    err: CoreError,
    events: &Option<EventSink>,
) {
    emit(events, EngineEvent::TaskFinished { id, kind, ok: false });
    *shared.error.lock().expect("error slot") = Some(err);
    shared.abort.store(true, Ordering::Release);
    shared.wake.notify_all();
}

/// Executes every `Run` node of a resolved graph on `workers` local
/// threads, plus any remote workers that connect through `remote`.
///
/// `retain` marks nodes whose artifact must survive the run (sinks, nodes
/// worth caching); everything else is dropped as soon as its last consumer
/// finishes. With a `persist` sink, every finished artifact with a serial
/// form is additionally written to the disk store as it is produced —
/// including artifacts shipped back by remote workers.
pub fn execute<A>(
    graph: TaskGraph<A>,
    workers: usize,
    retain: Vec<bool>,
    persist: Option<PersistSink>,
    remote: Option<RemoteLink>,
    events: &Option<EventSink>,
) -> Result<ExecutionOutcome<A>, CoreError>
where
    A: Clone + Send + Sync + DiskCodec,
{
    let workers = workers.max(1);
    let n = graph.nodes.len();
    let mut nodes = graph.nodes;
    assert_eq!(retain.len(), n, "retain mask must cover every node");
    if let Some(sink) = &persist {
        assert_eq!(sink.keys.len(), n, "persist keys must cover every node");
    }
    if let Some(link) = &remote {
        assert_eq!(link.keys.len(), n, "remote keys must cover every node");
    }

    let slots: Vec<Mutex<Option<A>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mut runs: Vec<Mutex<Option<crate::graph::TaskFn<A>>>> = Vec::with_capacity(n);
    let mut meta: Vec<NodeMeta> = Vec::with_capacity(n);
    let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    let mut consumers: Vec<usize> = vec![0; n];
    let mut pending: Vec<AtomicUsize> = Vec::with_capacity(n);
    let mut deps: Vec<Vec<TaskId>> = Vec::with_capacity(n);
    let mut to_run = 0usize;

    for (id, node) in nodes.iter_mut().enumerate() {
        let prefilled = node.prefilled.take();
        let runnable = node.state == NodeState::Run;
        let mut unfinished = 0;
        if runnable {
            to_run += 1;
            for &d in &node.deps {
                consumers[d] += 1;
                // deps precede their consumers, so meta[d] is final here
                if meta[d].2 == NodeState::Run {
                    dependents[d].push(id);
                    unfinished += 1;
                }
            }
        }
        *slots[id].lock().expect("slot") = prefilled;
        pending.push(AtomicUsize::new(unfinished));
        deps.push(node.deps.clone());
        runs.push(Mutex::new(if runnable { node.run.take() } else { None }));
        meta.push((node.kind, std::mem::take(&mut node.label), node.state));
    }

    let shared = Shared {
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending,
        dependents,
        consumers_left: consumers.into_iter().map(AtomicUsize::new).collect(),
        retain: &retain,
        slots: &slots,
        remaining: AtomicUsize::new(to_run),
        abort: AtomicBool::new(false),
        error: Mutex::new(None),
        sleep: Mutex::new(()),
        wake: Condvar::new(),
        executed: TaskKind::ALL.iter().map(|_| AtomicUsize::new(0)).collect(),
        remote_executed: TaskKind::ALL.iter().map(|_| AtomicUsize::new(0)).collect(),
        remote_workers: AtomicUsize::new(0),
        releases: AtomicUsize::new(0),
    };

    // Seed the deques with the initially ready tasks, heaviest kind first
    // (static Train ≫ Clean ≫ Split weights): on a cold run the frontier is
    // all-generate, but on a partial resume it spans the whole DAG, and
    // dispatching the expensive stragglers immediately shortens the
    // critical path. Tasks are dealt round-robin in descending weight, and
    // each worker's share is pushed in ascending weight so its LIFO
    // `pop_back` starts with its heaviest task.
    {
        let mut ready: Vec<TaskId> = meta
            .iter()
            .enumerate()
            .filter(|(id, m)| {
                m.2 == NodeState::Run && shared.pending[*id].load(Ordering::Relaxed) == 0
            })
            .map(|(id, _)| id)
            .collect();
        // stable graph order within a weight class keeps runs reproducible
        ready.sort_by_key(|&id| (std::cmp::Reverse(meta[id].0.cost_weight()), id));
        let mut shares: Vec<Vec<TaskId>> = vec![Vec::new(); workers];
        for (i, id) in ready.into_iter().enumerate() {
            shares[i % workers].push(id);
        }
        for (w, share) in shares.into_iter().enumerate() {
            let mut deque = shared.deques[w].lock().expect("deque");
            for &id in share.iter().rev() {
                deque.push_back(id);
            }
        }
    }

    // The wire lookup plane: content address → node, for serving `Fetch`.
    let key_index: HashMap<CacheKey, TaskId> = remote
        .as_ref()
        .map(|link| link.keys.iter().enumerate().map(|(id, &k)| (k, id)).collect())
        .unwrap_or_default();

    if to_run > 0 {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                let runs = &runs;
                let meta = &meta;
                let deps = &deps;
                let persist = &persist;
                let events = events.clone();
                scope.spawn(move || {
                    worker_loop(w, workers, shared, runs, meta, deps, persist, &events);
                });
            }
            if let Some(link) = &remote {
                let ctx = RemoteCtx {
                    shared: &shared,
                    meta: &meta,
                    deps: &deps,
                    persist: &persist,
                    events: events.clone(),
                    keys: &link.keys,
                    key_index: &key_index,
                    spec: &link.spec,
                    hub: &link.hub,
                };
                scope.spawn(move || dispatch(scope, ctx));
            }
        });
    }

    if let Some(err) = shared.error.lock().expect("error slot").take() {
        return Err(err);
    }

    let counts = |counters: &[AtomicUsize]| -> Vec<(TaskKind, usize)> {
        TaskKind::ALL
            .iter()
            .map(|&k| (k, counters[kind_index(k)].load(Ordering::Relaxed)))
            .filter(|&(_, n)| n > 0)
            .collect()
    };
    let stats = ExecStats {
        executed: counts(&shared.executed),
        remote_executed: counts(&shared.remote_executed),
        remote_workers: shared.remote_workers.load(Ordering::Relaxed),
        releases: shared.releases.load(Ordering::Relaxed),
    };
    let artifacts: Vec<Option<A>> =
        slots.into_iter().map(|s| s.into_inner().expect("slot lock poisoned")).collect();
    Ok((artifacts, stats))
}

#[allow(clippy::too_many_arguments)] // private; mirrors execute's wiring
fn worker_loop<A>(
    me: usize,
    workers: usize,
    shared: &Shared<'_, A>,
    runs: &[Mutex<Option<crate::graph::TaskFn<A>>>],
    meta: &[NodeMeta],
    deps: &[Vec<TaskId>],
    persist: &Option<PersistSink>,
    events: &Option<EventSink>,
) where
    A: Clone + Send + Sync + DiskCodec,
{
    loop {
        if shared.abort.load(Ordering::Acquire) || shared.remaining.load(Ordering::Acquire) == 0 {
            shared.wake.notify_all();
            return;
        }
        let task = pop_or_steal(me, workers, shared);
        let Some(id) = task else {
            // Nothing to do anywhere: sleep until a completion frees work.
            let guard = shared.sleep.lock().expect("sleep lock");
            let has_work = shared.remaining.load(Ordering::Acquire) == 0
                || shared.abort.load(Ordering::Acquire)
                || shared.deques.iter().any(|d| !d.lock().expect("deque").is_empty());
            if !has_work {
                let _unused = shared
                    .wake
                    .wait_timeout(guard, std::time::Duration::from_millis(50))
                    .expect("condvar");
            }
            continue;
        };

        let (kind, ref label, _) = meta[id];
        emit(events, EngineEvent::TaskStarted { id, kind, label: label.clone() });

        let run = runs[id].lock().expect("run slot").take();
        let Some(run) = run else { continue };
        let inputs: Vec<A> = deps[id]
            .iter()
            .map(|&d| {
                shared.slots[d]
                    .lock()
                    .expect("slot")
                    .clone()
                    .expect("dependency finished before consumer")
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(move || run(inputs)));
        let outcome = match outcome {
            Ok(r) => r,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".into());
                Err(CoreError::Unsupported(format!("task '{label}' panicked: {msg}")))
            }
        };

        match outcome {
            Ok(artifact) => {
                finish_ok(shared, id, artifact, None, me, false, meta, deps, persist, events);
            }
            Err(err) => {
                finish_err(shared, id, kind, err, events);
                return;
            }
        }
    }
}

fn pop_or_steal<A>(me: usize, workers: usize, shared: &Shared<'_, A>) -> Option<TaskId> {
    // Own deque: newest first (depth-first descent keeps artifacts hot).
    if let Some(id) = shared.deques[me].lock().expect("deque").pop_back() {
        return Some(id);
    }
    // Steal: oldest task of the first non-empty victim.
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(id) = shared.deques[victim].lock().expect("deque").pop_front() {
            return Some(id);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{ArtifactCache, CacheKey};

    #[derive(Debug, Clone, PartialEq)]
    struct V(i64);

    impl DiskCodec for V {
        fn encode(&self) -> Option<Vec<u8>> {
            None
        }
        fn decode(_: &[u8]) -> Option<Self> {
            None
        }
    }

    fn diamond() -> (TaskGraph<V>, TaskId) {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let a = g.task(TaskKind::GenerateDataset, "a", CacheKey::of("a"), vec![], |_| Ok(V(1)));
        let b = g.task(TaskKind::Split, "b", CacheKey::of("b"), vec![a], |d| Ok(V(d[0].0 * 2)));
        let c = g.task(TaskKind::Split, "c", CacheKey::of("c"), vec![a], |d| Ok(V(d[0].0 * 3)));
        let d = g
            .task(TaskKind::Reduce, "d", CacheKey::of("d"), vec![b, c], |d| Ok(V(d[0].0 + d[1].0)));
        (g, d)
    }

    fn retain_only(n: usize, keep: &[TaskId]) -> Vec<bool> {
        let mut r = vec![false; n];
        for &id in keep {
            r[id] = true;
        }
        r
    }

    #[test]
    fn diamond_executes_in_dependency_order() {
        for workers in [1, 4] {
            let (mut g, sink) = diamond();
            let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
            g.resolve(&mut cache, &[sink]);
            let retain = retain_only(g.len(), &[sink]);
            let (arts, stats) = execute(g, workers, retain, None, None, &None).unwrap();
            assert_eq!(arts[sink], Some(V(5)));
            let total: usize = stats.executed.iter().map(|(_, n)| n).sum();
            assert_eq!(total, 4, "workers={workers}");
            assert_eq!(stats.remote_workers, 0);
            assert_eq!(stats.releases, 0);
            assert!(stats.remote_executed.is_empty());
        }
    }

    #[test]
    fn unretained_intermediates_are_retired() {
        let (mut g, sink) = diamond();
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[sink]);
        let retain = retain_only(g.len(), &[sink]);
        let (arts, _) = execute(g, 2, retain, None, None, &None).unwrap();
        assert_eq!(arts[sink], Some(V(5)));
        // a, b, c each fed only the now-finished downstream tasks
        assert_eq!(arts[0], None);
        assert_eq!(arts[1], None);
        assert_eq!(arts[2], None);
    }

    #[test]
    fn cached_sink_runs_nothing() {
        let (mut g, sink) = diamond();
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        cache.put(CacheKey::of("d"), &V(5));
        let (hits, pruned, to_run) = g.resolve(&mut cache, &[sink]);
        assert_eq!((hits, pruned, to_run), (1, 3, 0));
        let retain = retain_only(g.len(), &[sink]);
        let (arts, stats) = execute(g, 4, retain, None, None, &None).unwrap();
        assert_eq!(arts[sink], Some(V(5)));
        assert!(stats.executed.is_empty());
    }

    #[test]
    fn task_error_aborts_run() {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let a = g.task(TaskKind::Train, "boom", CacheKey::of("boom"), vec![], |_| {
            Err(CoreError::Unsupported("nope".into()))
        });
        let b = g.task(TaskKind::Evaluate, "after", CacheKey::of("after"), vec![a], |_| Ok(V(1)));
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[b]);
        let retain = retain_only(g.len(), &[b]);
        assert!(execute(g, 2, retain, None, None, &None).is_err());
    }

    #[test]
    fn task_panic_becomes_error() {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let sink = g.task(TaskKind::Train, "p", CacheKey::of("p"), vec![], |_| panic!("kaboom"));
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[sink]);
        let retain = retain_only(g.len(), &[sink]);
        let err = execute(g, 2, retain, None, None, &None).unwrap_err();
        assert!(err.to_string().contains("kaboom"), "{err}");
    }

    #[derive(Debug, Clone, PartialEq)]
    struct P(i64);

    impl DiskCodec for P {
        fn encode(&self) -> Option<Vec<u8>> {
            Some(format!("p {}", self.0).into_bytes())
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let text = std::str::from_utf8(bytes).ok()?;
            text.strip_prefix("p ")?.trim().parse().ok().map(P)
        }
    }

    #[test]
    fn finished_artifacts_persist_even_when_retired_from_memory() {
        let dir = std::env::temp_dir().join(format!("cleanml-pool-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(dir.clone(), None);

        let mut g: TaskGraph<P> = TaskGraph::new();
        let a = g.task(TaskKind::Train, "a", CacheKey::of("a"), vec![], |_| Ok(P(7)));
        let b = g.task(TaskKind::Evaluate, "b", CacheKey::of("b"), vec![a], |d| Ok(P(d[0].0 + 1)));
        let mut cache: ArtifactCache<P> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[b]);
        let keys = vec![CacheKey::of("a"), CacheKey::of("b")];
        let retain = retain_only(g.len(), &[b]);
        let persist = Some(PersistSink { store: store.clone(), keys });
        let (arts, _) = execute(g, 2, retain, persist, None, &None).unwrap();

        // `a` was retired from memory after its last consumer…
        assert_eq!(arts[0], None);
        // …but both artifacts reached the disk store during the run.
        assert_eq!(store.load(CacheKey::of("a")).as_deref(), Some(&b"p 7"[..]));
        assert_eq!(store.load(CacheKey::of("b")).as_deref(), Some(&b"p 8"[..]));
        assert_eq!(store.writes(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ready_frontier_is_dispatched_heaviest_first() {
        // A resume-shaped frontier: independent ready tasks of mixed kinds.
        // With one worker there is no stealing, so the execution order *is*
        // the seeding policy: Train before Clean before Split before the
        // bookkeeping kinds, regardless of insertion order.
        let mut g: TaskGraph<V> = TaskGraph::new();
        let kinds = [
            TaskKind::Evaluate,
            TaskKind::Split,
            TaskKind::Train,
            TaskKind::Context,
            TaskKind::Clean,
            TaskKind::GenerateDataset,
        ];
        let ids: Vec<TaskId> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                g.task(kind, format!("t{i}"), CacheKey::of(&format!("t{i}")), vec![], move |_| {
                    Ok(V(i as i64))
                })
            })
            .collect();
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &ids);
        let retain = vec![true; g.len()];
        let (tx, rx) = std::sync::mpsc::channel();
        let (arts, _) = execute(g, 1, retain, None, None, &Some(tx)).unwrap();
        assert!(arts.iter().all(Option::is_some));
        let started: Vec<TaskKind> = rx
            .try_iter()
            .filter_map(|e| match e {
                EngineEvent::TaskStarted { kind, .. } => Some(kind),
                _ => None,
            })
            .collect();
        let expected = [
            TaskKind::Train,
            TaskKind::Clean,
            TaskKind::Split,
            TaskKind::GenerateDataset,
            TaskKind::Context,
            TaskKind::Evaluate,
        ];
        assert_eq!(started, expected, "seeding must order by descending cost weight");
    }

    #[test]
    fn wide_graph_saturates_many_workers() {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let leaves: Vec<TaskId> = (0..100)
            .map(|i| {
                g.task(
                    TaskKind::Train,
                    format!("leaf{i}"),
                    CacheKey::of(&format!("leaf{i}")),
                    vec![],
                    move |_| Ok(V(i as i64)),
                )
            })
            .collect();
        let sum = g.task(TaskKind::Reduce, "sum", CacheKey::of("sum"), leaves.clone(), |d| {
            Ok(V(d.iter().map(|v| v.0).sum()))
        });
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[sum]);
        let retain = retain_only(g.len(), &[sum]);
        let (arts, _) = execute(g, 8, retain, None, None, &None).unwrap();
        assert_eq!(arts[sum], Some(V(4950)));
    }
}
