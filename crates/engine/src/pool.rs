//! The resident execution core: a long-lived worker pool serving many
//! concurrent, content-address-deduplicated submissions.
//!
//! Earlier revisions executed one resolved graph per [`execute`] call: a
//! thread scope owned the dependency counters, the artifact slots and the
//! deques, and everything warm died with the run. This module replaces
//! that lifecycle with a [`Pool`] that owns its worker threads, its ready
//! frontier and its retention layer for its whole lifetime, and accepts
//! any number of overlapping [`Pool::submit`] calls:
//!
//! * every submission's graph is **merged** into one resident task table
//!   keyed by content address — two concurrent submissions demanding the
//!   same `Train` task share a single in-flight entry rather than
//!   computing it twice, and a later submission reuses a finished entry's
//!   artifact straight from memory;
//! * scheduling state is **per task**, completion bookkeeping is **per
//!   submission**: each submission tracks its own remaining count, event
//!   sink and execution counters, so progress, results, failures and
//!   cancellation are isolated — a task body error fails exactly the
//!   submissions demanding that task, and a [`SubmissionHandle::cancel`]
//!   releases its subgraph without disturbing anything shared;
//! * artifact retirement generalizes from per-run consumer counts to
//!   cross-submission refcounts: an artifact whose consumers finished and
//!   whose retaining submissions collected moves into the size-capped warm
//!   LRU ([`crate::cache::Retention`]) instead of vanishing, ready for the
//!   next submission that dedupes onto it.
//!
//! Local workers keep the work-stealing discipline (LIFO own deque, FIFO
//! steals) under one scheduler lock; remote lease threads
//! ([`crate::remote::coordinator`]) claim from the same deques, guided by
//! per-deque kind-count summaries instead of a full frontier scan. Ready
//! tasks are ordered heaviest-first by an adaptive cost model
//! ([`CostModel`]): static per-kind weights until enough completed tasks
//! have been observed, then an EWMA of measured runtimes keyed per
//! `(kind, class)` — class being the dataset a task belongs to — that
//! re-weights the frontier mid-run and stretches remote lease deadlines
//! for known-slow datasets.
//!
//! [`execute`] survives as a thin compatibility wrapper — one pool, one
//! submission, wait, shut down — so the single-run call sites and their
//! byte-identity guarantees are unchanged.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cleanml_core::CoreError;

use crate::cache::{CacheKey, DiskCodec, DiskStore, Retention, DEFAULT_WARM_ENTRIES};
use crate::event::{emit, EngineEvent, EventSink, TaskKind};
use crate::graph::{NodeState, TaskFn, TaskGraph};
use crate::remote::coordinator::spawn_hub_service;
use crate::remote::RemoteHub;

/// Number of task kinds (indexes the per-kind counter arrays).
pub(crate) const NKINDS: usize = TaskKind::ALL.len();

pub(crate) fn kind_index(kind: TaskKind) -> usize {
    TaskKind::ALL.iter().position(|&k| k == kind).expect("kind listed")
}

/// Index of a task in the resident table (distinct from a submission
/// graph's [`crate::graph::TaskId`]: entries persist across submissions).
pub(crate) type Gid = usize;

/// Submission identifier, unique per pool.
pub type SubId = u64;

/// Disk persistence wiring for a run: the shared store plus each node's
/// content address. Retained for [`execute`] compatibility; the resident
/// pool persists by the task entry's own key.
pub struct PersistSink {
    pub store: Arc<DiskStore>,
    pub keys: Vec<CacheKey>,
}

/// Remote-execution wiring for an [`execute`] call: the hub accepting
/// worker connections, every node's content address, and the encoded
/// [`crate::remote::proto::StudySpec`] workers rebuild the graph from.
pub struct RemoteLink {
    pub hub: Arc<RemoteHub>,
    pub keys: Vec<CacheKey>,
    pub spec: Vec<u8>,
}

/// Per-run execution report: what actually ran, where, and what the cache
/// absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Tasks executed on the local pool, by kind.
    pub executed: Vec<(TaskKind, usize)>,
    /// Tasks executed by remote workers, by kind.
    pub remote_executed: Vec<(TaskKind, usize)>,
    /// Tasks satisfied directly from the cache.
    pub cache_hits: usize,
    /// Tasks never run because no consumer demanded them.
    pub pruned: usize,
    /// Total nodes in the DAG.
    pub total: usize,
    /// Local worker threads used.
    pub workers: usize,
    /// Remote workers that completed a handshake during the run.
    pub remote_workers: usize,
    /// Leases orphaned by a worker death or deadline expiry whose tasks
    /// re-entered the ready frontier (and were then executed by someone
    /// else — the run does not finish otherwise).
    pub releases: usize,
}

impl RunReport {
    /// Locally executed task count for one kind.
    pub fn executed(&self, kind: TaskKind) -> usize {
        self.executed.iter().find(|(k, _)| *k == kind).map_or(0, |(_, n)| *n)
    }

    /// Remotely executed task count for one kind.
    pub fn remote(&self, kind: TaskKind) -> usize {
        self.remote_executed.iter().find(|(k, _)| *k == kind).map_or(0, |(_, n)| *n)
    }

    /// Tasks executed on the local pool.
    pub fn local_total(&self) -> usize {
        self.executed.iter().map(|(_, n)| n).sum()
    }

    /// Tasks executed by remote workers.
    pub fn remote_total(&self) -> usize {
        self.remote_executed.iter().map(|(_, n)| n).sum()
    }

    /// Total executed tasks, local and remote: every to-run task is
    /// executed exactly once, wherever it lands.
    pub fn executed_total(&self) -> usize {
        self.local_total() + self.remote_total()
    }
}

/// Execution counters of one submission, split by provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    pub executed: Vec<(TaskKind, usize)>,
    pub remote_executed: Vec<(TaskKind, usize)>,
    pub remote_workers: usize,
    pub releases: usize,
}

/// Per-node artifact handles (`None` for pruned or retired nodes) plus
/// execution counters. Handles are shared, not copied: collecting a
/// submission bumps refcounts on the resident artifacts.
pub type ExecutionOutcome<A> = (Vec<Option<Arc<A>>>, ExecStats);

// ---------------------------------------------------------------------------
// Adaptive cost model (observed per-kind runtimes)
// ---------------------------------------------------------------------------

/// Completed-task samples needed for a `(kind, class)` pair — or a kind
/// aggregate — before observed cost replaces the next-coarser estimate.
pub const MIN_COST_SAMPLES: u64 = 4;

/// One scheduling class's observed runtimes: an EWMA of wall-clock
/// microseconds per [`TaskKind`]. A class is typically a dataset — the
/// unit across which same-kind runtimes actually differ (a Train on a
/// 15k-row dataset is not a Train on a 600-row one).
#[derive(Debug)]
pub struct ClassCosts {
    counts: [AtomicU64; NKINDS],
    ewma_micros: [AtomicU64; NKINDS],
}

impl Default for ClassCosts {
    fn default() -> Self {
        ClassCosts {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            ewma_micros: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ClassCosts {
    fn record_at(&self, i: usize, sample: u64) {
        let seen = self.counts[i].fetch_add(1, Ordering::Relaxed);
        if seen == 0 {
            self.ewma_micros[i].store(sample, Ordering::Relaxed);
        } else {
            // racy read-modify-write: an occasionally lost update only
            // nudges the average, which is itself an approximation
            let old = self.ewma_micros[i].load(Ordering::Relaxed);
            self.ewma_micros[i].store((3 * old + sample) / 4, Ordering::Relaxed);
        }
    }

    /// EWMA microseconds at kind-index `i` once enough samples exist.
    fn settled(&self, i: usize) -> Option<u64> {
        (self.counts[i].load(Ordering::Relaxed) >= MIN_COST_SAMPLES)
            .then(|| self.ewma_micros[i].load(Ordering::Relaxed).max(1))
    }
}

/// Observed task runtimes, kept for the pool's whole lifetime and keyed
/// per `(kind, class)` with a per-kind aggregate underneath.
///
/// Each locally executed task feeds two EWMAs of its wall-clock
/// microseconds: its class's (when its graph node carried one) and the
/// kind aggregate. Frontier ordering asks
/// [`CostModel::effective_weight`], which answers from the finest level
/// with [`MIN_COST_SAMPLES`] completions: the `(kind, class)` EWMA,
/// else the kind EWMA, else the static [`TaskKind::cost_weight`] prior
/// (scaled into the microsecond domain so observed and unobserved kinds
/// stay comparable) — so the ready frontier re-weights itself mid-run as
/// real costs emerge, and a heavy dataset's tasks outrank a light one's
/// even within a kind.
#[derive(Debug, Default)]
pub struct CostModel {
    kinds: ClassCosts,
    classes: Mutex<HashMap<String, Arc<ClassCosts>>>,
}

impl CostModel {
    /// Interns scheduling class `name`, returning its cost table. Entries
    /// resolve their class once at submission time and hold the `Arc`, so
    /// the hot paths (record, frontier ordering) never touch the map.
    pub fn class(&self, name: &str) -> Arc<ClassCosts> {
        let mut map = self.classes.lock().expect("cost class map lock");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(ClassCosts::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Records one completed task's runtime at both levels.
    pub fn record(&self, kind: TaskKind, class: Option<&ClassCosts>, elapsed: Duration) {
        let i = kind_index(kind);
        let sample = (elapsed.as_micros() as u64).max(1);
        self.kinds.record_at(i, sample);
        if let Some(c) = class {
            c.record_at(i, sample);
        }
    }

    /// `(samples, ewma_micros)` aggregated over a kind, if any task of it
    /// completed.
    pub fn observed(&self, kind: TaskKind) -> Option<(u64, u64)> {
        let i = kind_index(kind);
        let n = self.kinds.counts[i].load(Ordering::Relaxed);
        (n > 0).then(|| (n, self.kinds.ewma_micros[i].load(Ordering::Relaxed)))
    }

    /// Scheduling weight for one task: its `(kind, class)` EWMA once that
    /// pair has enough samples, the kind-aggregate EWMA next, the static
    /// prior (scaled to microseconds) before either has settled.
    pub fn effective_weight(&self, kind: TaskKind, class: Option<&ClassCosts>) -> u64 {
        let i = kind_index(kind);
        class
            .and_then(|c| c.settled(i))
            .or_else(|| self.kinds.settled(i))
            .unwrap_or(kind.cost_weight() as u64 * 100)
    }

    /// Deadline for a remote lease of one task: never below `floor` (the
    /// configured lease timeout), stretched to 4× the settled EWMA of the
    /// finest observed level — so a lease on a known-slow dataset is not
    /// declared dead by a deadline tuned for the average one.
    pub fn lease_budget(
        &self,
        kind: TaskKind,
        class: Option<&ClassCosts>,
        floor: Duration,
    ) -> Duration {
        let i = kind_index(kind);
        match class.and_then(|c| c.settled(i)).or_else(|| self.kinds.settled(i)) {
            Some(ewma_us) => floor.max(Duration::from_micros(ewma_us.saturating_mul(4))),
            None => floor,
        }
    }
}

// ---------------------------------------------------------------------------
// Resident scheduler state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Unfinished dependencies remain.
    Waiting,
    /// In a deque, claimable by local workers and lease threads.
    Queued,
    /// Claimed (locally or by a remote lease).
    Running,
    /// Finished; `artifact` holds the result until retirement.
    Done,
    /// The task body errored; demanding submissions were failed.
    Failed,
    /// No live submission demands it any more (cancelled out from under).
    Orphaned,
}

pub(crate) struct TaskEntry<A> {
    pub(crate) key: CacheKey,
    pub(crate) kind: TaskKind,
    pub(crate) label: String,
    /// Interned cost-model class (resolved once at submission time);
    /// `None` falls back to kind-aggregate costs.
    pub(crate) class: Option<Arc<ClassCosts>>,
    /// Human-readable class name (the dataset), for the slowest-tasks
    /// table and trace labels.
    pub(crate) class_name: Option<String>,
    deps: Vec<Gid>,
    dependents: Vec<Gid>,
    pending: usize,
    pub(crate) phase: Phase,
    run: Option<TaskFn<A>>,
    pub(crate) artifact: Option<Arc<A>>,
    /// Runnable, not-yet-finished consumer entries across *all* live
    /// submissions. At zero (with no retains) the artifact moves to the
    /// warm LRU.
    consumers_left: usize,
    /// Live submissions that need the artifact to survive until they
    /// collect (their sinks).
    retain_refs: usize,
    /// Live submissions whose subgraph includes this entry.
    subs: Vec<SubId>,
    /// Submission that first demanded the entry's current execution;
    /// execution counters are attributed here.
    origin: SubId,
    /// `(spec key, graph-local id)` per study spec that contains this
    /// task — the addressing plane remote workers lease by.
    pub(crate) spec_locals: Vec<(u64, u64)>,
    /// When the entry last entered a deque; consumed at claim time to
    /// feed the queue-wait histogram (telemetry only, `None` when
    /// telemetry is disabled).
    queued_at: Option<Instant>,
}

/// One worker's deque plus per-kind occupancy counts, maintained on every
/// push and pop, so a lease thread picks its victim deque from `NKINDS`
/// integers instead of walking the whole ready frontier.
pub(crate) struct DequeState {
    pub(crate) q: VecDeque<Gid>,
    pub(crate) counts: [usize; NKINDS],
}

impl DequeState {
    fn new() -> Self {
        DequeState { q: VecDeque::new(), counts: [0; NKINDS] }
    }
}

struct SpecEntry {
    key: u64,
    bytes: Vec<u8>,
    live: usize,
}

struct SubEntry {
    /// Every resident entry in this submission's subgraph.
    tasks: Vec<Gid>,
    /// Submission graph index → resident entry (None for pruned nodes).
    node_of: Vec<Option<Gid>>,
    /// Entries whose artifact must survive until collection.
    retained: Vec<Gid>,
    spec_key: Option<u64>,
    /// Entries not yet `Done` when merged; reaches zero at completion.
    remaining: usize,
    /// Initial `remaining` (for progress reporting).
    to_run: usize,
    executed: [usize; NKINDS],
    remote_executed: [usize; NKINDS],
    remote_workers: usize,
    releases: usize,
    events: Option<EventSink>,
    error: Option<CoreError>,
    done: bool,
    /// Refs on tasks/retention already released (cancel or failure path).
    abandoned: bool,
}

pub(crate) struct State<A> {
    pub(crate) tasks: Vec<TaskEntry<A>>,
    pub(crate) by_key: HashMap<CacheKey, Gid>,
    pub(crate) deques: Vec<DequeState>,
    pub(crate) retention: Retention<Arc<A>>,
    subs: HashMap<SubId, SubEntry>,
    specs: Vec<SpecEntry>,
    next_sub: SubId,
    /// Round-robin cursor: consecutive submissions seed different home
    /// deques first.
    rr: usize,
}

pub(crate) struct PoolInner<A> {
    pub(crate) state: Mutex<State<A>>,
    /// Wakes workers and lease threads when the frontier grows.
    pub(crate) work: Condvar,
    /// Wakes submission waiters on completion/cancellation/failure.
    pub(crate) client: Condvar,
    pub(crate) shutdown: AtomicBool,
    pub(crate) costs: CostModel,
    pub(crate) persist: Option<Arc<DiskStore>>,
    pub(crate) n_workers: usize,
    /// Open intra-task subwork batches; idle workers drain them between
    /// frontier checks (multi-worker pools only).
    pub(crate) subwork: Arc<crate::subwork::SubworkShared>,
}

fn spec_key_of(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ bytes.len() as u64
}

fn counts_vec(counts: &[usize; NKINDS]) -> Vec<(TaskKind, usize)> {
    TaskKind::ALL.iter().map(|&k| (k, counts[kind_index(k)])).filter(|&(_, n)| n > 0).collect()
}

const CANCELLED: &str = "submission cancelled";

impl<A> PoolInner<A>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    // -- frontier ----------------------------------------------------------

    /// Queues a `Waiting` entry onto deque `home` (callers notify).
    fn enqueue(&self, st: &mut State<A>, gid: Gid, home: usize) {
        debug_assert_eq!(st.tasks[gid].phase, Phase::Waiting);
        st.tasks[gid].phase = Phase::Queued;
        if crate::telemetry::global().enabled() {
            st.tasks[gid].queued_at = Some(Instant::now());
        }
        let ki = kind_index(st.tasks[gid].kind);
        let home = home % st.deques.len();
        let deque = &mut st.deques[home];
        deque.counts[ki] += 1;
        deque.q.push_back(gid);
    }

    /// Pops the newest entry of deque `di` that is still claimable,
    /// dropping stale ids (entries orphaned while queued) on the way.
    fn pop_back_runnable(&self, st: &mut State<A>, di: usize) -> Option<Gid> {
        while let Some(gid) = st.deques[di].q.pop_back() {
            st.deques[di].counts[kind_index(st.tasks[gid].kind)] -= 1;
            if st.tasks[gid].phase == Phase::Queued {
                return Some(gid);
            }
        }
        None
    }

    /// Steals the oldest claimable entry from deque `di`'s front.
    fn pop_front_runnable(&self, st: &mut State<A>, di: usize) -> Option<Gid> {
        while let Some(gid) = st.deques[di].q.pop_front() {
            st.deques[di].counts[kind_index(st.tasks[gid].kind)] -= 1;
            if st.tasks[gid].phase == Phase::Queued {
                return Some(gid);
            }
        }
        None
    }

    /// Own deque newest-first (depth-first descent keeps artifacts hot),
    /// then steal oldest-first from victims — the classic discipline.
    fn pop_or_steal(&self, st: &mut State<A>, me: usize) -> Option<Gid> {
        if let Some(gid) = self.pop_back_runnable(st, me) {
            return Some(gid);
        }
        for offset in 1..st.deques.len() {
            let victim = (me + offset) % st.deques.len();
            if let Some(gid) = self.pop_front_runnable(st, victim) {
                return Some(gid);
            }
        }
        None
    }

    /// Claims the heaviest leasable ready task whose spec map contains
    /// `spec_key`, for a remote lease thread.
    ///
    /// The victim deque is chosen from the per-deque kind-count summaries
    /// — `O(workers × kinds)` integers — replacing the old full scan of
    /// every deque's contents. Only the chosen deque is then walked to
    /// extract the matching element; a miss there (stale ids, or entries
    /// of a different spec) falls through to the next-best deque.
    pub(crate) fn claim_leasable(&self, st: &mut State<A>, spec_key: u64) -> Option<(Gid, u64)> {
        let mut order: Vec<(u64, usize)> = st
            .deques
            .iter()
            .enumerate()
            .filter_map(|(di, d)| {
                TaskKind::ALL
                    .iter()
                    .filter(|&&k| crate::remote::leasable(k) && d.counts[kind_index(k)] > 0)
                    .map(|&k| self.costs.effective_weight(k, None))
                    .max()
                    .map(|w| (w, di))
            })
            .collect();
        order.sort_by_key(|&(w, di)| (std::cmp::Reverse(w), di));
        for (_, di) in order {
            // pick the heaviest matching element; prefer the newest (the
            // back) within a weight class, mirroring local LIFO pops
            let best = st.deques[di]
                .q
                .iter()
                .enumerate()
                .filter(|&(_, &gid)| {
                    let t = &st.tasks[gid];
                    t.phase == Phase::Queued
                        && crate::remote::leasable(t.kind)
                        && t.spec_locals.iter().any(|&(k, _)| k == spec_key)
                })
                .max_by_key(|&(pos, &gid)| {
                    let t = &st.tasks[gid];
                    (self.costs.effective_weight(t.kind, t.class.as_deref()), pos)
                })
                .map(|(pos, _)| pos);
            if let Some(pos) = best {
                let gid = st.deques[di].q.remove(pos).expect("position just found");
                st.deques[di].counts[kind_index(st.tasks[gid].kind)] -= 1;
                st.tasks[gid].phase = Phase::Running;
                if let Some(queued) = st.tasks[gid].queued_at.take() {
                    let t = crate::telemetry::global();
                    if t.enabled() {
                        t.queue_seconds[kind_index(st.tasks[gid].kind)].observe(queued.elapsed());
                    }
                }
                let local = st.tasks[gid]
                    .spec_locals
                    .iter()
                    .find(|&&(k, _)| k == spec_key)
                    .map(|&(_, id)| id)
                    .expect("spec filter matched");
                return Some((gid, local));
            }
        }
        None
    }

    /// Returns an orphaned lease's task to the frontier and wakes
    /// claimants; the `releases` counter lands on the task's origin
    /// submission (or the first live one still demanding it).
    pub(crate) fn reinject(&self, st: &mut State<A>, gid: Gid) {
        debug_assert_eq!(st.tasks[gid].phase, Phase::Running);
        st.tasks[gid].phase = Phase::Waiting;
        let home = gid % st.deques.len();
        self.enqueue(st, gid, home);
        let t = crate::telemetry::global();
        if t.enabled() {
            t.leases_reinjected.inc();
        }
        if let Some(sid) = self.attribution(st, gid) {
            if let Some(sub) = st.subs.get_mut(&sid) {
                sub.releases += 1;
            }
        }
        self.work.notify_all();
    }

    // -- completion bookkeeping -------------------------------------------

    fn attribution(&self, st: &State<A>, gid: Gid) -> Option<SubId> {
        let entry = &st.tasks[gid];
        entry
            .subs
            .iter()
            .copied()
            .find(|&s| s == entry.origin)
            .or_else(|| entry.subs.first().copied())
    }

    pub(crate) fn emit_to_subs(&self, st: &State<A>, gid: Gid, event: EngineEvent) {
        for sid in &st.tasks[gid].subs {
            if let Some(sub) = st.subs.get(sid) {
                emit(&sub.events, event.clone());
            }
        }
    }

    /// Marks `gid` started and prepares its execution: takes the body,
    /// shares handles to the input artifacts (a refcount bump each, never
    /// a deep copy) and emits `TaskStarted` to every demanding submission.
    /// Returns `None` if the body was already consumed (defensive; should
    /// not happen).
    fn prepare(&self, st: &mut State<A>, gid: Gid, local_id: Option<u64>) -> Option<Job<A>> {
        st.tasks[gid].phase = Phase::Running;
        let kind = st.tasks[gid].kind;
        let id = local_id.map_or(gid, |l| l as usize);
        let label = st.tasks[gid].label.clone();
        let queued_at = st.tasks[gid].queued_at.take();
        let sub = self.attribution(st, gid);
        // the body first: TaskStarted is only emitted for tasks that will
        // also emit TaskFinished
        let run = st.tasks[gid].run.take()?;
        self.emit_to_subs(st, gid, EngineEvent::TaskStarted { id, kind, label: label.clone() });
        let inputs: Vec<Arc<A>> = st.tasks[gid]
            .deps
            .clone()
            .iter()
            .map(|&d| {
                Arc::clone(
                    st.tasks[d].artifact.as_ref().expect("dependency finished before consumer"),
                )
            })
            .collect();
        let t = crate::telemetry::global();
        if t.enabled() && !inputs.is_empty() {
            t.handle_shares.add(inputs.len() as u64);
        }
        let class = st.tasks[gid].class.clone();
        let class_name = st.tasks[gid].class_name.clone();
        Some(Job {
            gid,
            kind,
            key: st.tasks[gid].key,
            label,
            class,
            class_name,
            run,
            inputs,
            queued_at,
            sub,
        })
    }

    fn dec_consumer(&self, st: &mut State<A>, gid: Gid) {
        st.tasks[gid].consumers_left -= 1;
        self.maybe_retire(st, gid);
    }

    /// Parks the artifact in the warm LRU once nothing live references it.
    fn maybe_retire(&self, st: &mut State<A>, gid: Gid) {
        let entry = &mut st.tasks[gid];
        if entry.phase == Phase::Done
            && entry.consumers_left == 0
            && entry.retain_refs == 0
            && entry.artifact.is_some()
        {
            let artifact = entry.artifact.take().expect("just checked");
            let key = entry.key;
            st.retention.insert(key, artifact);
        }
    }

    /// Completion bookkeeping shared by local workers and remote lease
    /// threads (the artifact has already been persisted by the caller,
    /// outside the scheduler lock — durability before progress): publish
    /// the artifact, credit counters, notify each demanding submission,
    /// retire inputs whose last consumer this was, and release
    /// newly-ready dependents onto `home`'s deque heaviest-first.
    pub(crate) fn complete_ok(
        &self,
        st: &mut State<A>,
        gid: Gid,
        artifact: Arc<A>,
        home: usize,
        remote: bool,
        local_id: Option<u64>,
    ) {
        let kind = st.tasks[gid].kind;
        st.tasks[gid].artifact = Some(artifact);
        st.tasks[gid].phase = Phase::Done;
        st.tasks[gid].run = None;
        let id = local_id.map_or(gid, |l| l as usize);

        if let Some(sid) = self.attribution(st, gid) {
            if let Some(sub) = st.subs.get_mut(&sid) {
                let counters = if remote { &mut sub.remote_executed } else { &mut sub.executed };
                counters[kind_index(kind)] += 1;
            }
        }
        let t = crate::telemetry::global();
        if t.enabled() {
            let site = if remote { &t.tasks_remote } else { &t.tasks_local };
            site[kind_index(kind)].inc();
        }
        let demanding = st.tasks[gid].subs.clone();
        for sid in demanding {
            if let Some(sub) = st.subs.get_mut(&sid) {
                emit(&sub.events, EngineEvent::TaskFinished { id, kind, ok: true });
                sub.remaining -= 1;
                if sub.remaining == 0 && !sub.done {
                    sub.done = true;
                    emit(&sub.events, EngineEvent::RunFinished);
                }
            }
        }

        for d in st.tasks[gid].deps.clone() {
            self.dec_consumer(st, d);
        }

        let mut released: Vec<Gid> = Vec::new();
        for dep in st.tasks[gid].dependents.clone() {
            if st.tasks[dep].phase == Phase::Waiting {
                st.tasks[dep].pending -= 1;
                if st.tasks[dep].pending == 0 {
                    released.push(dep);
                }
            }
        }
        // Heaviest observed-or-static cost first: sorted descending, then
        // pushed in reverse so the home deque's LIFO pop starts with the
        // heaviest — this is where mid-run re-weighting bites.
        released.sort_by_key(|&g| {
            let t = &st.tasks[g];
            (std::cmp::Reverse(self.costs.effective_weight(t.kind, t.class.as_deref())), g)
        });
        let notify = !released.is_empty();
        for &g in released.iter().rev() {
            self.enqueue(st, g, home);
        }

        self.maybe_retire(st, gid);
        if notify {
            self.work.notify_all();
        }
        self.client.notify_all();
    }

    /// Records a task failure: the entry is poisoned and every submission
    /// demanding it fails (and releases the rest of its subgraph); other
    /// submissions are untouched.
    pub(crate) fn complete_err(
        &self,
        st: &mut State<A>,
        gid: Gid,
        err: CoreError,
        local_id: Option<u64>,
    ) {
        let kind = st.tasks[gid].kind;
        st.tasks[gid].phase = Phase::Failed;
        st.tasks[gid].run = None;
        let t = crate::telemetry::global();
        if t.enabled() {
            t.tasks_failed.inc();
        }
        let id = local_id.map_or(gid, |l| l as usize);
        self.emit_to_subs(st, gid, EngineEvent::TaskFinished { id, kind, ok: false });
        for d in st.tasks[gid].deps.clone() {
            self.dec_consumer(st, d);
        }
        for sid in st.tasks[gid].subs.clone() {
            self.abandon_sub(st, sid, Some(err.clone()));
        }
        self.client.notify_all();
    }

    /// Fails or cancels a submission: releases its holds on every task
    /// and orphans the parts of its subgraph nothing else demands.
    fn abandon_sub(&self, st: &mut State<A>, sid: SubId, err: Option<CoreError>) {
        let Some(sub) = st.subs.get_mut(&sid) else { return };
        if sub.done {
            return; // completed (or already abandoned): results are final
        }
        sub.done = true;
        sub.abandoned = true;
        sub.error = Some(err.unwrap_or_else(|| CoreError::Unsupported(CANCELLED.into())));
        let spec_key = sub.spec_key.take();
        let retained = std::mem::take(&mut sub.retained);
        let tasks = sub.tasks.clone();
        if let Some(key) = spec_key {
            self.release_spec(st, key);
        }
        for gid in retained {
            st.tasks[gid].retain_refs -= 1;
            let key = st.tasks[gid].key;
            st.retention.unpin(key);
        }
        for gid in tasks {
            st.tasks[gid].subs.retain(|s| *s != sid);
            if st.tasks[gid].subs.is_empty()
                && matches!(st.tasks[gid].phase, Phase::Waiting | Phase::Queued)
            {
                // nothing live demands it: release its holds on its
                // inputs; a queued id goes stale and is skipped at pop
                st.tasks[gid].phase = Phase::Orphaned;
                for d in st.tasks[gid].deps.clone() {
                    self.dec_consumer(st, d);
                }
            }
            self.maybe_retire(st, gid);
        }
        self.client.notify_all();
    }

    /// Drops a collected (or abandoned-and-reaped) submission.
    fn cleanup_sub(&self, st: &mut State<A>, sid: SubId) {
        let Some(sub) = st.subs.remove(&sid) else { return };
        if sub.abandoned {
            return; // refs already released on the abandon path
        }
        if let Some(key) = sub.spec_key {
            self.release_spec(st, key);
        }
        for gid in &sub.retained {
            st.tasks[*gid].retain_refs -= 1;
            let key = st.tasks[*gid].key;
            st.retention.unpin(key);
        }
        for gid in sub.tasks {
            st.tasks[gid].subs.retain(|s| *s != sid);
            self.maybe_retire(st, gid);
        }
    }

    fn release_spec(&self, st: &mut State<A>, key: u64) {
        if let Some(pos) = st.specs.iter().position(|s| s.key == key) {
            st.specs[pos].live -= 1;
            if st.specs[pos].live == 0 {
                st.specs.remove(pos);
            }
        }
    }

    // -- remote support ----------------------------------------------------

    /// Oldest live spec, for welcoming a freshly connected worker.
    pub(crate) fn pick_spec(&self, st: &State<A>) -> Option<(u64, Vec<u8>)> {
        st.specs.iter().find(|s| s.live > 0).map(|s| (s.key, s.bytes.clone()))
    }

    /// Whether any live submission still runs under `spec_key` (a worker
    /// bound to a retired spec is sent `Bye`).
    pub(crate) fn spec_live(&self, st: &State<A>, spec_key: u64) -> bool {
        st.specs.iter().any(|s| s.key == spec_key && s.live > 0)
    }

    /// Credits a completed worker handshake to every live submission of
    /// the spec and emits `WorkerJoined` on their event sinks.
    pub(crate) fn worker_joined(&self, st: &mut State<A>, spec_key: u64, name: &str) {
        let sids: Vec<SubId> = st
            .subs
            .iter()
            .filter(|(_, s)| s.spec_key == Some(spec_key) && !s.done)
            .map(|(id, _)| *id)
            .collect();
        for sid in sids {
            let sub = st.subs.get_mut(&sid).expect("listed");
            sub.remote_workers += 1;
            emit(&sub.events, EngineEvent::WorkerJoined { worker: name.to_string() });
        }
    }

    /// Emits a worker-lifecycle event to every live submission of a spec.
    pub(crate) fn emit_to_spec(&self, st: &State<A>, spec_key: u64, event: EngineEvent) {
        for sub in st.subs.values() {
            if sub.spec_key == Some(spec_key) && !sub.done {
                emit(&sub.events, event.clone());
            }
        }
    }

    /// Emits `LeaseExpired` to the submissions demanding `gid`.
    pub(crate) fn lease_expired(&self, st: &State<A>, gid: Gid, worker: &str, local_id: u64) {
        let kind = st.tasks[gid].kind;
        self.emit_to_subs(
            st,
            gid,
            EngineEvent::LeaseExpired { worker: worker.to_string(), id: local_id as usize, kind },
        );
    }

    /// Serves a remote `Fetch`: the resident entry's artifact, the warm
    /// LRU, then (outside the lock, by the caller) the disk store.
    pub(crate) fn fetch_artifact(&self, key: CacheKey) -> Option<Arc<A>> {
        let mut st = self.state.lock().expect("state lock");
        if let Some(&gid) = st.by_key.get(&key) {
            if let Some(a) = &st.tasks[gid].artifact {
                return Some(Arc::clone(a));
            }
        }
        st.retention.get(key)
    }
}

struct Job<A> {
    gid: Gid,
    kind: TaskKind,
    key: CacheKey,
    label: String,
    /// Cost-model class the runtime sample lands in.
    class: Option<Arc<ClassCosts>>,
    /// Class name for the slowest-tasks table.
    class_name: Option<String>,
    run: TaskFn<A>,
    inputs: Vec<Arc<A>>,
    /// When the entry entered the ready frontier (telemetry only).
    queued_at: Option<Instant>,
    /// Submission the execution is attributed to (trace-span labeling).
    sub: Option<SubId>,
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// The resident execution core. See the module docs.
pub struct Pool<A>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    inner: Arc<PoolInner<A>>,
    workers: Vec<JoinHandle<()>>,
    services: Vec<JoinHandle<()>>,
}

impl<A> Pool<A>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    /// Spawns a pool with `workers` resident threads. With a `persist`
    /// store, every finished artifact with a serial form is written to it
    /// the moment its task completes.
    pub fn new(workers: usize, persist: Option<Arc<DiskStore>>) -> Pool<A> {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(State {
                tasks: Vec::new(),
                by_key: HashMap::new(),
                deques: (0..workers).map(|_| DequeState::new()).collect(),
                retention: Retention::new(DEFAULT_WARM_ENTRIES),
                subs: HashMap::new(),
                specs: Vec::new(),
                next_sub: 0,
                rr: 0,
            }),
            work: Condvar::new(),
            client: Condvar::new(),
            shutdown: AtomicBool::new(false),
            costs: CostModel::default(),
            persist,
            n_workers: workers,
            subwork: Arc::new(crate::subwork::SubworkShared::new()),
        });
        let threads = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    // Nested parallelism only pays when there is more
                    // than one worker; a single-worker pool keeps the
                    // bit-identical serial path with zero queue traffic.
                    if inner.n_workers > 1 {
                        let weak = Arc::downgrade(&inner);
                        let notify = Box::new(move || {
                            if let Some(pool) = weak.upgrade() {
                                pool.work.notify_all();
                            }
                        });
                        cleanml_parallel::install_bridge(Arc::new(
                            crate::subwork::PoolBridge::new(Arc::clone(&inner.subwork), notify),
                        ));
                    }
                    worker_loop(&inner, w)
                })
            })
            .collect();
        Pool { inner, workers: threads, services: Vec::new() }
    }

    pub fn workers(&self) -> usize {
        self.inner.n_workers
    }

    /// The pool's adaptive cost model.
    pub fn costs(&self) -> &CostModel {
        &self.inner.costs
    }

    /// Starts serving `hub`'s connections for the pool's lifetime:
    /// workers (`Hello`) lease tasks from the merged frontier; serving
    /// clients (`Submit`) are handed to `clients` (rejected if `None`);
    /// HTTP connections hit the results gateway (`/studies` routes
    /// answer 503 if `gateway` is `None`, `/metrics` always serves).
    pub fn serve_hub(
        &mut self,
        hub: Arc<RemoteHub>,
        clients: Option<crate::remote::coordinator::ClientHandler>,
        gateway: Option<crate::remote::coordinator::HttpGateway>,
    ) {
        let handle = spawn_hub_service(Arc::clone(&self.inner), hub, clients, gateway);
        self.services.push(handle);
    }

    /// Merges a resolved graph into the resident table as one submission.
    ///
    /// `retain` marks nodes whose artifact must survive until the
    /// submission is collected. `events` receives this submission's
    /// progress stream. `spec` (an encoded
    /// [`crate::remote::proto::StudySpec`]) advertises the submission to
    /// remote workers; `None` keeps its tasks local-only.
    pub fn submit(
        &self,
        graph: TaskGraph<A>,
        retain: Vec<bool>,
        events: Option<EventSink>,
        spec: Option<Vec<u8>>,
    ) -> SubmissionHandle<A> {
        let mut nodes = graph.nodes;
        let n = nodes.len();
        assert_eq!(retain.len(), n, "retain mask must cover every node");

        let mut st = self.inner.state.lock().expect("state lock");
        let st = &mut *st;
        let sid = st.next_sub;
        st.next_sub += 1;

        let spec_key = spec.as_ref().map(|bytes| {
            let key = spec_key_of(bytes);
            match st.specs.iter_mut().find(|s| s.key == key) {
                Some(entry) => entry.live += 1,
                None => st.specs.push(SpecEntry { key, bytes: clone_bytes(bytes), live: 1 }),
            }
            key
        });

        let mut sub = SubEntry {
            tasks: Vec::with_capacity(n),
            node_of: vec![None; n],
            retained: Vec::new(),
            spec_key,
            remaining: 0,
            to_run: 0,
            executed: [0; NKINDS],
            remote_executed: [0; NKINDS],
            remote_workers: 0,
            releases: 0,
            events,
            error: None,
            done: false,
            abandoned: false,
        };
        let mut seeds: Vec<Gid> = Vec::new();

        for idx in 0..n {
            let node = &mut nodes[idx];
            let key = node.key;
            let gid = match node.state {
                NodeState::Pruned => continue,
                NodeState::Cached => {
                    let art = node.prefilled.take().expect("cached node prefilled");
                    match st.by_key.get(&key).copied() {
                        None => new_entry(st, &self.inner.costs, idx, &mut nodes, sid, Some(art)),
                        Some(gid) => {
                            let entry = &mut st.tasks[gid];
                            if entry.artifact.is_none()
                                && matches!(
                                    entry.phase,
                                    Phase::Done | Phase::Orphaned | Phase::Failed
                                )
                            {
                                // restore a retired/abandoned entry from
                                // this submission's cache hit
                                entry.artifact = Some(art);
                                entry.phase = Phase::Done;
                            }
                            gid
                        }
                    }
                }
                NodeState::Run => match st.by_key.get(&key).copied() {
                    None => new_entry(st, &self.inner.costs, idx, &mut nodes, sid, None),
                    Some(gid) => match st.tasks[gid].phase {
                        Phase::Done if st.tasks[gid].artifact.is_some() => gid,
                        Phase::Waiting | Phase::Queued | Phase::Running => gid,
                        Phase::Done | Phase::Orphaned | Phase::Failed => {
                            // retired or dead: recover the artifact from
                            // the warm LRU, else re-arm with this
                            // submission's task body
                            if let Some(a) = st.retention.get(key) {
                                st.tasks[gid].artifact = Some(a);
                                st.tasks[gid].phase = Phase::Done;
                                gid
                            } else {
                                reset_entry(st, gid, idx, &mut nodes, sid);
                                gid
                            }
                        }
                    },
                },
            };

            let entry = &mut st.tasks[gid];
            if !entry.subs.contains(&sid) {
                entry.subs.push(sid);
            }
            if let Some(sk) = spec_key {
                if !entry.spec_locals.iter().any(|&(k, _)| k == sk) {
                    entry.spec_locals.push((sk, idx as u64));
                }
            }
            if entry.phase != Phase::Done {
                sub.remaining += 1;
            }
            if retain[idx] {
                entry.retain_refs += 1;
                sub.retained.push(gid);
                st.retention.pin(key);
            }
            if entry.phase == Phase::Waiting && entry.pending == 0 {
                seeds.push(gid);
            }
            sub.node_of[idx] = Some(gid);
            sub.tasks.push(gid);
        }

        sub.to_run = sub.remaining;
        if sub.remaining == 0 {
            sub.done = true;
            emit(&sub.events, EngineEvent::RunFinished);
        }
        st.subs.insert(sid, sub);

        // Seed the frontier heaviest-first: tasks sorted by descending
        // effective cost, dealt round-robin across the deques, each share
        // pushed in ascending order so its owner's LIFO pop starts with
        // its heaviest task. On a cold run the frontier is all-generate;
        // on a partial resume it spans the whole DAG and dispatching the
        // expensive stragglers first shortens the critical path.
        seeds.sort_by_key(|&g| {
            let t = &st.tasks[g];
            (std::cmp::Reverse(self.inner.costs.effective_weight(t.kind, t.class.as_deref())), g)
        });
        let width = st.deques.len();
        let start = st.rr;
        st.rr = (st.rr + 1) % width;
        let mut shares: Vec<Vec<Gid>> = vec![Vec::new(); width];
        for (i, gid) in seeds.into_iter().enumerate() {
            shares[(start + i) % width].push(gid);
        }
        for (w, share) in shares.into_iter().enumerate() {
            for &gid in share.iter().rev() {
                self.inner.enqueue(st, gid, w);
            }
        }

        self.inner.work.notify_all();
        self.inner.client.notify_all();
        SubmissionHandle { inner: Arc::clone(&self.inner), id: sid, collected: false }
    }
}

fn clone_bytes(b: &[u8]) -> Vec<u8> {
    b.to_vec()
}

/// Creates a fresh resident entry from submission node `idx`. With
/// `prefilled`, the entry is born `Done` (a cache hit feeding runnable
/// consumers); otherwise it registers with its dependencies and waits.
fn new_entry<A>(
    st: &mut State<A>,
    costs: &CostModel,
    idx: usize,
    nodes: &mut [crate::graph::TaskNode<A>],
    sid: SubId,
    prefilled: Option<Arc<A>>,
) -> Gid {
    let gid = st.tasks.len();
    let key = nodes[idx].key;
    let done = prefilled.is_some();
    st.tasks.push(TaskEntry {
        key,
        kind: nodes[idx].kind,
        label: std::mem::take(&mut nodes[idx].label),
        class: nodes[idx].class.as_deref().map(|c| costs.class(c)),
        class_name: nodes[idx].class.clone(),
        deps: Vec::new(),
        dependents: Vec::new(),
        pending: 0,
        phase: if done { Phase::Done } else { Phase::Waiting },
        run: if done { None } else { nodes[idx].run.take() },
        artifact: prefilled,
        consumers_left: 0,
        retain_refs: 0,
        subs: Vec::new(),
        origin: sid,
        spec_locals: Vec::new(),
        queued_at: None,
    });
    st.by_key.insert(key, gid);
    if !done {
        arm_entry(st, gid, idx, nodes, sid);
    }
    gid
}

/// Re-arms a retired/orphaned/failed entry with submission node `idx`'s
/// task body: recomputes its dependency edges and pending count against
/// the current phases of its inputs.
fn reset_entry<A>(
    st: &mut State<A>,
    gid: Gid,
    idx: usize,
    nodes: &mut [crate::graph::TaskNode<A>],
    sid: SubId,
) {
    st.tasks[gid].artifact = None;
    st.tasks[gid].phase = Phase::Waiting;
    // Any submission still listed here witnessed the entry's *previous*
    // completion (reset happens only from Done/Orphaned/Failed, and the
    // latter two guarantee an empty list): its `remaining` was already
    // decremented, so it must NOT be decremented again when the re-armed
    // entry re-completes. The stale sid stays in that submission's own
    // task list, where cleanup handles it as a no-op.
    st.tasks[gid].subs.clear();
    arm_entry(st, gid, idx, nodes, sid);
}

fn arm_entry<A>(
    st: &mut State<A>,
    gid: Gid,
    idx: usize,
    nodes: &mut [crate::graph::TaskNode<A>],
    sid: SubId,
) {
    // deps precede consumers in graph order, so every dep already has a
    // resident entry (merged earlier in this same submission pass)
    let sub_node_of = |st: &State<A>, d: usize| -> Gid {
        *st.by_key.get(&nodes[d].key).expect("dependency merged before consumer")
    };
    let dep_gids: Vec<Gid> = nodes[idx].deps.clone().iter().map(|&d| sub_node_of(st, d)).collect();
    let mut pending = 0;
    for &d in &dep_gids {
        st.tasks[d].consumers_left += 1;
        if st.tasks[d].phase != Phase::Done {
            debug_assert!(matches!(
                st.tasks[d].phase,
                Phase::Waiting | Phase::Queued | Phase::Running
            ));
            pending += 1;
            if !st.tasks[d].dependents.contains(&gid) {
                st.tasks[d].dependents.push(gid);
            }
        }
    }
    st.tasks[gid].deps = dep_gids;
    st.tasks[gid].pending = pending;
    st.tasks[gid].origin = sid;
    if st.tasks[gid].run.is_none() {
        st.tasks[gid].run = nodes[idx].run.take();
    }
    debug_assert!(st.tasks[gid].run.is_some(), "re-armed entry has a body");
}

impl<A> Drop for Pool<A>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("state lock");
            let sids: Vec<SubId> = st.subs.keys().copied().collect();
            for sid in sids {
                self.inner.abandon_sub(
                    &mut st,
                    sid,
                    Some(CoreError::Unsupported("engine shut down".into())),
                );
            }
        }
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work.notify_all();
        self.inner.client.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        for handle in self.services.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A live submission: progress, cancellation, and blocking collection.
pub struct SubmissionHandle<A>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    inner: Arc<PoolInner<A>>,
    id: SubId,
    collected: bool,
}

impl<A> SubmissionHandle<A>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    pub fn id(&self) -> SubId {
        self.id
    }

    /// Whether the submission has completed, failed or been cancelled.
    pub fn done(&self) -> bool {
        let st = self.inner.state.lock().expect("state lock");
        st.subs.get(&self.id).is_none_or(|s| s.done)
    }

    /// `(finished, to_run)` task counts of this submission.
    pub fn progress(&self) -> (usize, usize) {
        let st = self.inner.state.lock().expect("state lock");
        st.subs.get(&self.id).map_or((0, 0), |s| (s.to_run - s.remaining, s.to_run))
    }

    /// Cancels the submission: its exclusive subgraph is released (queued
    /// tasks go stale, holds on shared artifacts drop) and
    /// [`SubmissionHandle::wait`] returns an error. Tasks shared with
    /// other live submissions are untouched.
    pub fn cancel(&self) {
        let mut st = self.inner.state.lock().expect("state lock");
        self.inner.abandon_sub(&mut st, self.id, None);
    }

    /// Blocks until the submission completes, then returns the artifacts
    /// of its graph nodes (`None` for pruned or already-retired nodes)
    /// plus its execution counters.
    pub fn wait(mut self) -> Result<ExecutionOutcome<A>, CoreError> {
        self.collected = true;
        let inner = Arc::clone(&self.inner);
        let mut st = inner.state.lock().expect("state lock");
        loop {
            match st.subs.get(&self.id) {
                None => {
                    return Err(CoreError::Unsupported(
                        "submission vanished before collection".into(),
                    ))
                }
                Some(sub) if sub.done => break,
                Some(_) => {
                    let (guard, _) =
                        inner.client.wait_timeout(st, Duration::from_millis(200)).expect("condvar");
                    st = guard;
                }
            }
        }
        let sub = st.subs.get(&self.id).expect("checked above");
        let error = sub.error.clone();
        let node_of = sub.node_of.clone();
        let stats = ExecStats {
            executed: counts_vec(&sub.executed),
            remote_executed: counts_vec(&sub.remote_executed),
            remote_workers: sub.remote_workers,
            releases: sub.releases,
        };
        let artifacts: Vec<Option<Arc<A>>> =
            node_of.iter().map(|g| g.and_then(|gid| st.tasks[gid].artifact.clone())).collect();
        inner.cleanup_sub(&mut st, self.id);
        drop(st);
        match error {
            Some(e) => Err(e),
            None => Ok((artifacts, stats)),
        }
    }
}

impl<A> Drop for SubmissionHandle<A>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    fn drop(&mut self) {
        if !self.collected {
            let mut st = self.inner.state.lock().expect("state lock");
            self.inner.abandon_sub(&mut st, self.id, None);
            self.inner.cleanup_sub(&mut st, self.id);
        }
    }
}

fn worker_loop<A>(inner: &Arc<PoolInner<A>>, me: usize)
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    loop {
        let job = 'job: loop {
            {
                let mut st = inner.state.lock().expect("state lock");
                loop {
                    if inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(gid) = inner.pop_or_steal(&mut st, me) {
                        break 'job inner.prepare(&mut st, gid, None);
                    }
                    // No runnable pool task: before parking, drain any
                    // open subwork batch (with the state lock released
                    // — helping must never stall the scheduler).
                    if inner.subwork.has_work() {
                        break;
                    }
                    let (guard, _) =
                        inner.work.wait_timeout(st, Duration::from_millis(50)).expect("condvar");
                    st = guard;
                }
            }
            inner.subwork.help();
        };
        let Some(job) = job else { continue };
        let Job { gid, kind, key, label, class, class_name, run, inputs, queued_at, sub } = job;

        let t = crate::telemetry::global();
        let started = Instant::now();
        let queue_wait = queued_at.map(|q| started.duration_since(q));
        crate::subwork::set_current_task(&label, me as u64);
        let outcome = catch_unwind(AssertUnwindSafe(move || run(inputs)));
        crate::subwork::clear_current_task();
        let elapsed = started.elapsed();
        let outcome = match outcome {
            Ok(r) => r,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".into());
                Err(CoreError::Unsupported(format!("task '{label}' panicked: {msg}")))
            }
        };

        match outcome {
            Ok(artifact) => {
                inner.costs.record(kind, class.as_deref(), elapsed);
                // Durability before progress: the artifact reaches disk
                // before any dependent can observe it — and before the
                // scheduler lock is taken, so persistence never blocks
                // scheduling.
                let persist_start = Instant::now();
                let mut persisted = false;
                if let Some(store) = &inner.persist {
                    if let Some(bytes) = artifact.encode() {
                        store.store(key, &bytes);
                        persisted = true;
                    }
                }
                let persist_dur = persist_start.elapsed();
                if t.enabled() {
                    let ki = kind_index(kind);
                    t.task_seconds[ki].observe(elapsed);
                    t.record_slow_task(
                        &label,
                        kind.name(),
                        class_name.as_deref().unwrap_or(""),
                        elapsed,
                    );
                    if let Some(wait) = queue_wait {
                        t.queue_seconds[ki].observe(wait);
                    }
                    if persisted {
                        t.persist_seconds.observe(persist_dur);
                    }
                    if t.tracing_on() {
                        let mut args: Vec<(&'static str, String)> = vec![
                            ("kind", kind.name().to_string()),
                            ("sub", sub.map_or_else(|| "-".into(), |s| s.to_string())),
                        ];
                        if let Some(wait) = queue_wait {
                            args.push(("queue_ms", format!("{:.3}", wait.as_secs_f64() * 1e3)));
                        }
                        if persisted {
                            args.push((
                                "persist_ms",
                                format!("{:.3}", persist_dur.as_secs_f64() * 1e3),
                            ));
                        }
                        let span_dur = elapsed + persist_dur;
                        t.span(&label, kind.name(), started, span_dur, me as u64, args);
                    }
                }
                let mut st = inner.state.lock().expect("state lock");
                inner.complete_ok(&mut st, gid, Arc::new(artifact), me, false, None);
            }
            Err(err) => {
                // Unlike the one-shot pool, a failure does not stop the
                // worker: only the submissions demanding this task fail.
                let mut st = inner.state.lock().expect("state lock");
                inner.complete_err(&mut st, gid, err, None);
            }
        }
    }
}

/// Executes every `Run` node of a resolved graph on `workers` local
/// threads, plus any remote workers that connect through `remote` — the
/// one-shot compatibility path: spawn a resident [`Pool`], submit the
/// graph as a single submission, wait, shut down.
///
/// `retain` marks nodes whose artifact must survive the run (sinks, nodes
/// worth caching); everything else is dropped as soon as its last consumer
/// finishes. With a `persist` sink, every finished artifact with a serial
/// form is additionally written to the disk store as it is produced —
/// including artifacts shipped back by remote workers.
pub fn execute<A>(
    graph: TaskGraph<A>,
    workers: usize,
    retain: Vec<bool>,
    persist: Option<PersistSink>,
    remote: Option<RemoteLink>,
    events: &Option<EventSink>,
) -> Result<ExecutionOutcome<A>, CoreError>
where
    A: Clone + Send + Sync + DiskCodec + 'static,
{
    let n = graph.nodes.len();
    assert_eq!(retain.len(), n, "retain mask must cover every node");
    if let Some(sink) = &persist {
        assert_eq!(sink.keys.len(), n, "persist keys must cover every node");
    }
    if let Some(link) = &remote {
        assert_eq!(link.keys.len(), n, "remote keys must cover every node");
    }
    let mut pool: Pool<A> = Pool::new(workers, persist.map(|sink| sink.store));
    let spec = remote.as_ref().map(|link| link.spec.clone());
    if let Some(link) = remote {
        pool.serve_hub(link.hub, None, None);
    }
    let handle = pool.submit(graph, retain, events.clone(), spec);
    handle.wait()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{ArtifactCache, CacheKey};
    use crate::graph::TaskId;

    #[derive(Debug, Clone, PartialEq)]
    struct V(i64);

    impl DiskCodec for V {
        fn encode(&self) -> Option<Vec<u8>> {
            None
        }
        fn decode(_: &[u8]) -> Option<Self> {
            None
        }
    }

    fn diamond() -> (TaskGraph<V>, TaskId) {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let a = g.task(TaskKind::GenerateDataset, "a", CacheKey::of("a"), vec![], |_| Ok(V(1)));
        let b = g.task(TaskKind::Split, "b", CacheKey::of("b"), vec![a], |d| Ok(V(d[0].0 * 2)));
        let c = g.task(TaskKind::Split, "c", CacheKey::of("c"), vec![a], |d| Ok(V(d[0].0 * 3)));
        let d = g
            .task(TaskKind::Reduce, "d", CacheKey::of("d"), vec![b, c], |d| Ok(V(d[0].0 + d[1].0)));
        (g, d)
    }

    fn retain_only(n: usize, keep: &[TaskId]) -> Vec<bool> {
        let mut r = vec![false; n];
        for &id in keep {
            r[id] = true;
        }
        r
    }

    #[test]
    fn diamond_executes_in_dependency_order() {
        for workers in [1, 4] {
            let (mut g, sink) = diamond();
            let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
            g.resolve(&mut cache, &[sink]);
            let retain = retain_only(g.len(), &[sink]);
            let (arts, stats) = execute(g, workers, retain, None, None, &None).unwrap();
            assert_eq!(arts[sink].as_deref(), Some(V(5)).as_ref());
            let total: usize = stats.executed.iter().map(|(_, n)| n).sum();
            assert_eq!(total, 4, "workers={workers}");
            assert_eq!(stats.remote_workers, 0);
            assert_eq!(stats.releases, 0);
            assert!(stats.remote_executed.is_empty());
        }
    }

    #[test]
    fn unretained_intermediates_are_retired() {
        let (mut g, sink) = diamond();
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[sink]);
        let retain = retain_only(g.len(), &[sink]);
        let (arts, _) = execute(g, 2, retain, None, None, &None).unwrap();
        assert_eq!(arts[sink].as_deref(), Some(V(5)).as_ref());
        // a, b, c each fed only the now-finished downstream tasks
        assert_eq!(arts[0], None);
        assert_eq!(arts[1], None);
        assert_eq!(arts[2], None);
    }

    #[test]
    fn cached_sink_runs_nothing() {
        let (mut g, sink) = diamond();
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        cache.put(CacheKey::of("d"), &Arc::new(V(5)));
        let (hits, pruned, to_run) = g.resolve(&mut cache, &[sink]);
        assert_eq!((hits, pruned, to_run), (1, 3, 0));
        let retain = retain_only(g.len(), &[sink]);
        let (arts, stats) = execute(g, 4, retain, None, None, &None).unwrap();
        assert_eq!(arts[sink].as_deref(), Some(V(5)).as_ref());
        assert!(stats.executed.is_empty());
    }

    #[test]
    fn task_error_aborts_run() {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let a = g.task(TaskKind::Train, "boom", CacheKey::of("boom"), vec![], |_| {
            Err(CoreError::Unsupported("nope".into()))
        });
        let b = g.task(TaskKind::Evaluate, "after", CacheKey::of("after"), vec![a], |_| Ok(V(1)));
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[b]);
        let retain = retain_only(g.len(), &[b]);
        assert!(execute(g, 2, retain, None, None, &None).is_err());
    }

    #[test]
    fn task_panic_becomes_error() {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let sink = g.task(TaskKind::Train, "p", CacheKey::of("p"), vec![], |_| panic!("kaboom"));
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[sink]);
        let retain = retain_only(g.len(), &[sink]);
        let err = execute(g, 2, retain, None, None, &None).unwrap_err();
        assert!(err.to_string().contains("kaboom"), "{err}");
    }

    #[derive(Debug, Clone, PartialEq)]
    struct P(i64);

    impl DiskCodec for P {
        fn encode(&self) -> Option<Vec<u8>> {
            Some(format!("p {}", self.0).into_bytes())
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let text = std::str::from_utf8(bytes).ok()?;
            text.strip_prefix("p ")?.trim().parse().ok().map(P)
        }
    }

    #[test]
    fn finished_artifacts_persist_even_when_retired_from_memory() {
        let dir = std::env::temp_dir().join(format!("cleanml-pool-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(dir.clone(), None);

        let mut g: TaskGraph<P> = TaskGraph::new();
        let a = g.task(TaskKind::Train, "a", CacheKey::of("a"), vec![], |_| Ok(P(7)));
        let b = g.task(TaskKind::Evaluate, "b", CacheKey::of("b"), vec![a], |d| Ok(P(d[0].0 + 1)));
        let mut cache: ArtifactCache<P> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[b]);
        let keys = vec![CacheKey::of("a"), CacheKey::of("b")];
        let retain = retain_only(g.len(), &[b]);
        let persist = Some(PersistSink { store: store.clone(), keys });
        let (arts, _) = execute(g, 2, retain, persist, None, &None).unwrap();

        // `a` was retired from memory after its last consumer…
        assert_eq!(arts[0], None);
        // …but both artifacts reached the disk store during the run.
        assert_eq!(store.load(CacheKey::of("a")).as_deref(), Some(&b"p 7"[..]));
        assert_eq!(store.load(CacheKey::of("b")).as_deref(), Some(&b"p 8"[..]));
        assert_eq!(store.writes(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ready_frontier_is_dispatched_heaviest_first() {
        // A resume-shaped frontier: independent ready tasks of mixed kinds.
        // With one worker there is no stealing, so the execution order *is*
        // the seeding policy: Train before Clean before Split before the
        // bookkeeping kinds, regardless of insertion order. (A fresh pool
        // has no runtime samples, so the static weights order the seeds.)
        let mut g: TaskGraph<V> = TaskGraph::new();
        let kinds = [
            TaskKind::Evaluate,
            TaskKind::Split,
            TaskKind::Train,
            TaskKind::Context,
            TaskKind::Clean,
            TaskKind::GenerateDataset,
        ];
        let ids: Vec<TaskId> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                g.task(kind, format!("t{i}"), CacheKey::of(&format!("t{i}")), vec![], move |_| {
                    Ok(V(i as i64))
                })
            })
            .collect();
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &ids);
        let retain = vec![true; g.len()];
        let (tx, rx) = std::sync::mpsc::channel();
        let (arts, _) = execute(g, 1, retain, None, None, &Some(tx)).unwrap();
        assert!(arts.iter().all(Option::is_some));
        let started: Vec<TaskKind> = rx
            .try_iter()
            .filter_map(|e| match e {
                EngineEvent::TaskStarted { kind, .. } => Some(kind),
                _ => None,
            })
            .collect();
        let expected = [
            TaskKind::Train,
            TaskKind::Clean,
            TaskKind::Split,
            TaskKind::GenerateDataset,
            TaskKind::Context,
            TaskKind::Evaluate,
        ];
        assert_eq!(started, expected, "seeding must order by descending cost weight");
    }

    #[test]
    fn observed_costs_reorder_the_frontier_mid_run() {
        // Satellite acceptance: the EWMA cost model re-weights dispatch
        // *during* a run. Statically Split (40) outweighs Evaluate (2);
        // here Evaluate tasks are observably slow (they sleep), so once
        // MIN_COST_SAMPLES of them have completed, a freshly released
        // Evaluate must dispatch before a freshly released Split.
        let mut g: TaskGraph<V> = TaskGraph::new();
        let slow: Vec<TaskId> = (0..MIN_COST_SAMPLES)
            .map(|i| {
                g.task(
                    TaskKind::Evaluate,
                    format!("slow{i}"),
                    CacheKey::of(&format!("slow{i}")),
                    vec![],
                    move |_| {
                        std::thread::sleep(Duration::from_millis(25));
                        Ok(V(i as i64))
                    },
                )
            })
            .collect();
        let gate =
            g.task(TaskKind::Reduce, "gate", CacheKey::of("gate"), slow.clone(), |_| Ok(V(0)));
        // Released together when the gate finishes: under static weights
        // Split would dispatch first; under observed costs Evaluate must.
        let late_split =
            g.task(TaskKind::Split, "late-split", CacheKey::of("late-split"), vec![gate], |_| {
                Ok(V(1))
            });
        let late_eval =
            g.task(TaskKind::Evaluate, "late-eval", CacheKey::of("late-eval"), vec![gate], |_| {
                Ok(V(2))
            });
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        let sinks = [late_split, late_eval];
        g.resolve(&mut cache, &sinks);
        let retain = retain_only(g.len(), &sinks);
        let (tx, rx) = std::sync::mpsc::channel();
        let (arts, _) = execute(g, 1, retain, None, None, &Some(tx)).unwrap();
        assert_eq!(arts[late_split].as_deref(), Some(V(1)).as_ref());
        assert_eq!(arts[late_eval].as_deref(), Some(V(2)).as_ref());
        let started: Vec<String> = rx
            .try_iter()
            .filter_map(|e| match e {
                EngineEvent::TaskStarted { label, .. } if label.starts_with("late-") => Some(label),
                _ => None,
            })
            .collect();
        assert_eq!(
            started,
            vec!["late-eval".to_string(), "late-split".to_string()],
            "observed Evaluate cost must outrank static Split weight mid-run"
        );
    }

    #[test]
    fn class_costs_refine_kind_aggregates() {
        // Satellite acceptance: the cost model is keyed per (kind, class)
        // — a Train on one dataset must not inherit another's runtime —
        // with kind-aggregate and static-prior fallbacks underneath.
        let costs = CostModel::default();
        let heavy = costs.class("eeg");
        let light = costs.class("university");
        assert!(Arc::ptr_eq(&heavy, &costs.class("eeg")), "classes are interned");

        // Nothing observed: both classes answer the static prior.
        let prior = TaskKind::Train.cost_weight() as u64 * 100;
        assert_eq!(costs.effective_weight(TaskKind::Train, Some(&heavy)), prior);
        assert_eq!(costs.effective_weight(TaskKind::Train, None), prior);

        // Settle the light class (which also settles the kind aggregate):
        // the still-unsettled heavy class falls back to the aggregate.
        for _ in 0..MIN_COST_SAMPLES {
            costs.record(TaskKind::Train, Some(&light), Duration::from_micros(200));
        }
        let kind_level = costs.effective_weight(TaskKind::Train, None);
        assert_eq!(kind_level, 200, "kind aggregate reflects the observed samples");
        assert_eq!(costs.effective_weight(TaskKind::Train, Some(&heavy)), kind_level);

        // Once the heavy class observes its own (much slower) Trains, the
        // two classes diverge within the same kind.
        for _ in 0..MIN_COST_SAMPLES {
            costs.record(TaskKind::Train, Some(&heavy), Duration::from_millis(50));
        }
        let w_heavy = costs.effective_weight(TaskKind::Train, Some(&heavy));
        let w_light = costs.effective_weight(TaskKind::Train, Some(&light));
        assert_eq!(w_light, 200);
        assert!(
            w_heavy > 100 * w_light,
            "per-dataset EWMAs must diverge within a kind: {w_heavy} vs {w_light}"
        );

        // Remote lease sizing: the floor holds for the fast class, while
        // the slow class's deadline stretches to 4x its observed EWMA.
        let floor = Duration::from_millis(5);
        assert_eq!(costs.lease_budget(TaskKind::Train, Some(&light), floor), floor);
        assert_eq!(
            costs.lease_budget(TaskKind::Train, Some(&heavy), floor),
            Duration::from_millis(200),
        );
        // Unobserved (kind, class) pairs never shrink below the floor.
        assert_eq!(costs.lease_budget(TaskKind::Clean, Some(&heavy), floor), floor);
    }

    #[test]
    fn wide_graph_saturates_many_workers() {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let leaves: Vec<TaskId> = (0..100)
            .map(|i| {
                g.task(
                    TaskKind::Train,
                    format!("leaf{i}"),
                    CacheKey::of(&format!("leaf{i}")),
                    vec![],
                    move |_| Ok(V(i as i64)),
                )
            })
            .collect();
        let sum = g.task(TaskKind::Reduce, "sum", CacheKey::of("sum"), leaves.clone(), |d| {
            Ok(V(d.iter().map(|v| v.0).sum()))
        });
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &[sum]);
        let retain = retain_only(g.len(), &[sum]);
        let (arts, _) = execute(g, 8, retain, None, None, &None).unwrap();
        assert_eq!(arts[sum].as_deref(), Some(V(4950)).as_ref());
    }

    // -- resident-pool semantics ------------------------------------------

    fn counting_graph(tag: &str, n_leaves: i64) -> (TaskGraph<V>, TaskId) {
        let mut g: TaskGraph<V> = TaskGraph::new();
        let leaves: Vec<TaskId> = (0..n_leaves)
            .map(|i| {
                g.task(
                    TaskKind::Train,
                    format!("{tag}-leaf{i}"),
                    CacheKey::of(&format!("{tag}-leaf{i}")),
                    vec![],
                    move |_| {
                        std::thread::sleep(Duration::from_millis(5));
                        Ok(V(i))
                    },
                )
            })
            .collect();
        let sum = g.task(
            TaskKind::Reduce,
            format!("{tag}-sum"),
            CacheKey::of(&format!("{tag}-sum")),
            leaves,
            |d| Ok(V(d.iter().map(|v| v.0).sum())),
        );
        (g, sum)
    }

    #[test]
    fn overlapping_submissions_share_in_flight_tasks() {
        let pool: Pool<V> = Pool::new(4, None);
        // Two submissions of the *same* graph, submitted back to back so
        // the second merges while the first is in flight: the leaves must
        // execute exactly once in total.
        let (mut g1, s1) = counting_graph("share", 12);
        let (mut g2, s2) = counting_graph("share", 12);
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g1.resolve(&mut cache, &[s1]);
        let mut cache2: ArtifactCache<V> = ArtifactCache::new(None);
        g2.resolve(&mut cache2, &[s2]);
        let h1 = pool.submit(g1, retain_only(13, &[s1]), None, None);
        let h2 = pool.submit(g2, retain_only(13, &[s2]), None, None);
        let (a1, st1) = h1.wait().expect("first submission");
        let (a2, st2) = h2.wait().expect("second submission");
        assert_eq!(a1[s1].as_deref(), Some(V(66)).as_ref());
        assert_eq!(a2[s2].as_deref(), Some(V(66)).as_ref());
        let trains = |s: &ExecStats| {
            s.executed.iter().find(|(k, _)| *k == TaskKind::Train).map_or(0, |(_, n)| *n)
        };
        assert_eq!(
            trains(&st1) + trains(&st2),
            12,
            "overlapping submissions must dedupe onto the same in-flight tasks: {st1:?} {st2:?}"
        );
    }

    #[test]
    fn cancel_releases_a_subgraph_without_disturbing_the_other() {
        let pool: Pool<V> = Pool::new(2, None);
        let (mut g1, s1) = counting_graph("keep", 16);
        let (mut g2, s2) = counting_graph("drop", 16);
        let mut c1: ArtifactCache<V> = ArtifactCache::new(None);
        g1.resolve(&mut c1, &[s1]);
        let mut c2: ArtifactCache<V> = ArtifactCache::new(None);
        g2.resolve(&mut c2, &[s2]);
        let h1 = pool.submit(g1, retain_only(17, &[s1]), None, None);
        let h2 = pool.submit(g2, retain_only(17, &[s2]), None, None);
        h2.cancel();
        let err = h2.wait().expect_err("cancelled submission must error");
        assert!(err.to_string().contains("cancelled"), "{err}");
        let (a1, _) = h1.wait().expect("surviving submission");
        assert_eq!(a1[s1].as_deref(), Some(V(120)).as_ref(), "cancel must not disturb the other");
    }

    #[test]
    fn warm_retention_revives_retired_artifacts_for_later_submissions() {
        let pool: Pool<V> = Pool::new(2, None);
        // First submission: leaf -> sink; the unretained leaf retires
        // into the warm LRU when the sink finishes.
        let mut g1: TaskGraph<V> = TaskGraph::new();
        let leaf1 =
            g1.task(TaskKind::Train, "warm-leaf", CacheKey::of("warm-leaf"), vec![], |_| Ok(V(7)));
        let sink1 =
            g1.task(TaskKind::Evaluate, "warm-a", CacheKey::of("warm-a"), vec![leaf1], |d| {
                Ok(V(d[0].0 + 1))
            });
        let mut c: ArtifactCache<V> = ArtifactCache::new(None);
        g1.resolve(&mut c, &[sink1]);
        let (a1, st1) = pool.submit(g1, retain_only(2, &[sink1]), None, None).wait().unwrap();
        assert_eq!(a1[sink1].as_deref(), Some(V(8)).as_ref());
        assert_eq!(st1.executed.iter().map(|(_, n)| n).sum::<usize>(), 2);

        // Second submission demands the same leaf under a new sink: the
        // leaf's artifact must come back from the warm LRU (V has no disk
        // codec, so there is no other source) — only the new sink runs.
        let mut g2: TaskGraph<V> = TaskGraph::new();
        let leaf2 =
            g2.task(TaskKind::Train, "warm-leaf", CacheKey::of("warm-leaf"), vec![], |_| Ok(V(7)));
        let sink2 =
            g2.task(TaskKind::Evaluate, "warm-b", CacheKey::of("warm-b"), vec![leaf2], |d| {
                Ok(V(d[0].0 * 10))
            });
        let mut c2: ArtifactCache<V> = ArtifactCache::new(None);
        g2.resolve(&mut c2, &[sink2]);
        let (a2, st2) = pool.submit(g2, retain_only(2, &[sink2]), None, None).wait().unwrap();
        assert_eq!(a2[sink2].as_deref(), Some(V(70)).as_ref());
        let trains =
            st2.executed.iter().find(|(k, _)| *k == TaskKind::Train).map_or(0, |(_, n)| *n);
        assert_eq!(trains, 0, "retired leaf must revive from the warm LRU, not re-run");
    }

    #[test]
    fn rearmed_evicted_entry_does_not_double_count_a_live_submission() {
        // Regression: S1 finishes but stays uncollected; its unretained
        // leaf retires into the warm LRU and is then *evicted* by a flood
        // of other retired artifacts. S2 re-demands the leaf, which must
        // be re-armed and re-executed — WITHOUT decrementing S1's
        // completed bookkeeping a second time (previously a usize
        // underflow in `complete_ok`).
        let pool: Pool<V> = Pool::new(1, None);

        let mut g1: TaskGraph<V> = TaskGraph::new();
        let l1 = g1
            .task(TaskKind::Train, "evict-leaf", CacheKey::of("evict-leaf"), vec![], |_| Ok(V(5)));
        let s1 = g1.task(TaskKind::Evaluate, "evict-a", CacheKey::of("evict-a"), vec![l1], |d| {
            Ok(V(d[0].0 + 1))
        });
        let mut c1: ArtifactCache<V> = ArtifactCache::new(None);
        g1.resolve(&mut c1, &[s1]);
        let h1 = pool.submit(g1, retain_only(2, &[s1]), None, None);
        while !h1.done() {
            std::thread::sleep(Duration::from_millis(5));
        }
        // h1 deliberately NOT collected yet: S1 stays live in the table.

        // Flood the warm LRU far past its cap so "evict-leaf" is evicted.
        let flood = crate::cache::DEFAULT_WARM_ENTRIES + 50;
        let (mut gf, sf) = counting_graph("flood", flood as i64);
        let mut cf: ArtifactCache<V> = ArtifactCache::new(None);
        gf.resolve(&mut cf, &[sf]);
        pool.submit(gf, retain_only(flood + 1, &[sf]), None, None).wait().expect("flood");

        // S2 re-demands the leaf under a new sink: re-armed, re-executed.
        let mut g2: TaskGraph<V> = TaskGraph::new();
        let l2 = g2
            .task(TaskKind::Train, "evict-leaf", CacheKey::of("evict-leaf"), vec![], |_| Ok(V(5)));
        let s2 = g2.task(TaskKind::Evaluate, "evict-b", CacheKey::of("evict-b"), vec![l2], |d| {
            Ok(V(d[0].0 * 10))
        });
        let mut c2: ArtifactCache<V> = ArtifactCache::new(None);
        g2.resolve(&mut c2, &[s2]);
        let (a2, st2) = pool.submit(g2, retain_only(2, &[s2]), None, None).wait().expect("S2");
        assert_eq!(a2[s2].as_deref(), Some(V(50)).as_ref());
        let trains =
            st2.executed.iter().find(|(k, _)| *k == TaskKind::Train).map_or(0, |(_, n)| *n);
        assert_eq!(trains, 1, "evicted leaf must re-execute for S2");

        // And S1 is still collectable, with its own accounting intact.
        let (a1, st1) = h1.wait().expect("S1 collects after the re-arm");
        assert_eq!(a1[s1].as_deref(), Some(V(6)).as_ref());
        assert_eq!(st1.executed.iter().map(|(_, n)| n).sum::<usize>(), 2);
    }

    #[test]
    fn sibling_consumers_share_one_input_allocation() {
        // The zero-copy contract: every consumer of a dependency receives
        // a handle to the SAME allocation — Arc::ptr_eq across siblings —
        // not a per-consumer deep copy.
        let pool: Pool<V> = Pool::new(2, None);
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        let mut g: TaskGraph<V> = TaskGraph::new();
        let base =
            g.task(TaskKind::GenerateDataset, "base", CacheKey::of("ptr-base"), vec![], |_| {
                Ok(V(3))
            });
        let consumers: Vec<TaskId> = (0..9)
            .map(|i| {
                let tx = tx.clone();
                g.task(
                    TaskKind::Train,
                    format!("c{i}"),
                    CacheKey::of(&format!("ptr-c{i}")),
                    vec![base],
                    move |d| {
                        tx.send(Arc::as_ptr(&d[0]) as usize).expect("send");
                        Ok(V(d[0].0 * 2))
                    },
                )
            })
            .collect();
        let mut cache: ArtifactCache<V> = ArtifactCache::new(None);
        g.resolve(&mut cache, &consumers);
        let (arts, _) =
            pool.submit(g, retain_only(10, &consumers), None, None).wait().expect("run");
        for &c in &consumers {
            assert_eq!(arts[c].as_deref(), Some(V(6)).as_ref());
        }
        drop(tx);
        let ptrs: Vec<usize> = rx.into_iter().collect();
        assert_eq!(ptrs.len(), 9);
        assert!(
            ptrs.iter().all(|&p| p == ptrs[0]),
            "all nine sibling Train tasks must share one decoded input: {ptrs:?}"
        );
    }

    #[test]
    fn sibling_trains_share_one_argsort_sidecar() {
        // The other half of the zero-copy contract: handle sharing makes
        // the matrix's lazily-built argsort sidecar per *cell*, not per
        // consumer — every sibling Train triggers the same OnceLock, so
        // the O(d · n log n) sort runs once however many models read it.
        use cleanml_dataset::FeatureMatrix;

        #[derive(Clone)]
        struct M(Arc<FeatureMatrix>);
        impl std::fmt::Debug for M {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "M")
            }
        }
        impl DiskCodec for M {
            fn encode(&self) -> Option<Vec<u8>> {
                None
            }
            fn decode(_: &[u8]) -> Option<Self> {
                None
            }
        }

        let pool: Pool<M> = Pool::new(2, None);
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        let mut g: TaskGraph<M> = TaskGraph::new();
        let base = g.task(TaskKind::Split, "cell", CacheKey::of("sidecar-cell"), vec![], |_| {
            let m = FeatureMatrix::from_parts(
                vec![2.0, 0.0, 1.0, 1.0, 2.0, 0.0, 1.0, 1.0],
                4,
                2,
                vec![0, 1, 0, 1],
                2,
            );
            Ok(M(Arc::new(m)))
        });
        let trains: Vec<TaskId> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                g.task(
                    TaskKind::Train,
                    format!("train{i}"),
                    CacheKey::of(&format!("sidecar-train{i}")),
                    vec![base],
                    move |d| {
                        tx.send(Arc::as_ptr(d[0].0.sorted_cols()) as usize).expect("send");
                        Ok(M(Arc::clone(&d[0].0)))
                    },
                )
            })
            .collect();
        let mut cache: ArtifactCache<M> = ArtifactCache::new(None);
        g.resolve(&mut cache, &trains);
        pool.submit(g, retain_only(5, &trains), None, None).wait().expect("run");
        drop(tx);
        let ptrs: Vec<usize> = rx.into_iter().collect();
        assert_eq!(ptrs.len(), 4);
        assert!(
            ptrs.iter().all(|&p| p == ptrs[0]),
            "argsort sidecar must be computed once per cell: {ptrs:?}"
        );
    }

    #[test]
    fn a_failure_poisons_only_the_demanding_submission() {
        let pool: Pool<V> = Pool::new(2, None);
        let mut g1: TaskGraph<V> = TaskGraph::new();
        let bad = g1.task(TaskKind::Train, "bad", CacheKey::of("fail-bad"), vec![], |_| {
            Err(CoreError::Unsupported("nope".into()))
        });
        let s1 =
            g1.task(TaskKind::Evaluate, "after", CacheKey::of("fail-after"), vec![bad], |_| {
                Ok(V(1))
            });
        let mut c1: ArtifactCache<V> = ArtifactCache::new(None);
        g1.resolve(&mut c1, &[s1]);

        let (mut g2, s2) = counting_graph("healthy", 8);
        let mut c2: ArtifactCache<V> = ArtifactCache::new(None);
        g2.resolve(&mut c2, &[s2]);

        let h1 = pool.submit(g1, retain_only(2, &[s1]), None, None);
        let h2 = pool.submit(g2, retain_only(9, &[s2]), None, None);
        assert!(h1.wait().is_err(), "failing submission must error");
        let (a2, _) = h2.wait().expect("independent submission must survive a failure");
        assert_eq!(a2[s2].as_deref(), Some(V(28)).as_ref());
    }
}
