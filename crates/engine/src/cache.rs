//! Content-addressed artifact store.
//!
//! Every task's inputs (dataset spec, seeds, method, model, budget, …) are
//! folded into a canonical string; its 128-bit FNV-1a digest is the task's
//! **content address**. Two layers sit behind one interface:
//!
//! * an in-memory map — deduplicates shared work inside a run (e.g. a base
//!   dataset used by three mislabel variants) and makes in-process re-runs
//!   free;
//! * an optional on-disk layer ([`DiskStore`]) under a run directory —
//!   persists every artifact with a stable serial form (grid cells, dataset
//!   contexts, splits, cleaned matrices and trained models), so a *resumed
//!   or repeated* study skips all finished work, at task granularity.
//!
//! The disk layer is a real store, not a directory of loose files:
//!
//! * **framed binary entries** — every `.art` file is a
//!   [`cleanml_dataset::codec`] binary payload wrapped in the versioned,
//!   checksummed artifact frame (magic, format version, payload length,
//!   FNV-1a checksum). [`DiskStore::load`] validates the frame before a
//!   decoder sees a single byte: truncated, corrupt, legacy-version or
//!   foreign files are deleted and reported as misses — the task simply
//!   re-runs — never a crash or a mangled artifact;
//! * **atomic writes** — artifacts are written to a process-unique temp
//!   file and `rename`d into place, so a concurrent reader (a second
//!   process sharing `--cache-dir`) can never observe a torn entry;
//! * **an index file** (`index.v2`) — the artifact format version plus
//!   sizes and logical last-access times per entry, rebuilt from a
//!   directory scan when stale or missing (e.g. after a kill), flushed
//!   atomically itself; a sidecar from another format generation is
//!   discarded wholesale;
//! * **size-capped LRU eviction** — with a byte budget configured
//!   (`--cache-max-bytes`), entries are touched on read and the
//!   oldest-accessed are deleted before a new write would exceed the cap,
//!   so the run directory stays bounded for arbitrarily long studies
//!   (per writing process: concurrent capped processes can combine to
//!   overshoot transiently, healed at the next open).
//!
//! Floats are serialized via their raw IEEE-754 bit patterns, so a warm
//! run reproduces byte-identical relations.

use cleanml_dataset::codec::{open_frame, seal_frame, FORMAT_VERSION};

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// 128-bit content address (two independent FNV-1a passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64, pub u64);

fn fnv1a(s: &str, mut h: u64, prime: u64) -> u64 {
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(prime);
    }
    h
}

impl CacheKey {
    /// Hashes a canonical task-input description.
    pub fn of(canonical: &str) -> CacheKey {
        CacheKey(
            fnv1a(canonical, 0xcbf2_9ce4_8422_2325, 0x100_0000_01b3),
            // second pass: different offset basis decorrelates the halves
            fnv1a(canonical, 0x6c62_272e_07bb_0142, 0x100_0000_01b3).rotate_left(1)
                ^ canonical.len() as u64,
        )
    }

    /// Parses the 32-hex-digit form produced by `Display` (artifact file
    /// stems). Non-ASCII input is rejected before slicing: a stray file
    /// with a multi-byte char straddling byte 16 must be a `None`, not a
    /// char-boundary panic during the directory scan.
    pub fn parse(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey(hi, lo))
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Binary serial form for artifacts that survive on disk. Artifacts that
/// return `None` from [`DiskCodec::encode`] live only in memory. The
/// payload is raw codec bytes; the store adds (and strips) the artifact
/// frame, so codecs never see header bytes.
pub trait DiskCodec: Sized {
    fn encode(&self) -> Option<Vec<u8>>;
    fn decode(bytes: &[u8]) -> Option<Self>;

    /// Whether a disk hit should also be inserted into the unbounded
    /// in-memory map. Heavy artifacts (tables, matrices, models) return
    /// `false`: they land in the bounded *resident* layer instead — one
    /// decoded allocation shared by every demanding handle — rather than
    /// accumulating in the memo for the engine's lifetime.
    fn promote_to_memory(&self) -> bool {
        true
    }

    /// Rough in-memory footprint of the decoded artifact, charged to the
    /// `resident_bytes` gauge while a disk-decoded heavy artifact stays
    /// parked in the resident layer. Charged once per decode — handles
    /// share the allocation, so shares add nothing.
    fn approx_bytes(&self) -> u64 {
        0
    }
}

/// Hit/miss counters, split by layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub memory_hits: usize,
    pub disk_hits: usize,
    pub misses: usize,
    pub disk_writes: usize,
    pub disk_evictions: usize,
}

impl CacheStats {
    pub fn hits(&self) -> usize {
        self.memory_hits + self.disk_hits
    }
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Entry payload size in bytes.
    size: u64,
    /// Logical last-access time (monotonic per store, persisted).
    access: u64,
}

#[derive(Debug, Default)]
struct IndexState {
    entries: HashMap<CacheKey, IndexEntry>,
    /// Logical clock; strictly increases across loads, stores and touches.
    clock: u64,
    /// Mutations since the last flush.
    dirty: usize,
}

impl IndexState {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.size).sum()
    }

    fn touch(&mut self, key: CacheKey) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&key) {
            e.access = clock;
            self.dirty += 1;
        }
    }
}

/// Mutations accumulated before the index file is rewritten. Touches lost
/// in a crash only age LRU ordering; the entry list itself is rebuilt from
/// a directory scan on the next open.
const FLUSH_EVERY: usize = 32;

/// The persistent, thread-safe artifact layer: one directory of
/// content-addressed `<key>.art` files plus an `index.v2` sidecar.
///
/// Shared (via `Arc`) between the [`ArtifactCache`] front-end and the
/// worker pool, which persists artifacts the moment tasks finish so a
/// killed run loses nothing that completed.
///
/// The store is also the coordinator side's serve/accept plane for remote
/// workers: a `Fetch {key}` that misses the in-memory slots is answered
/// from [`DiskStore::load`] (touching the LRU slot like any other use),
/// and a `Done` payload — already validated by a full artifact decode —
/// lands through [`DiskStore::store`]'s atomic write path before any
/// dependent task can observe it, so a partial or torn artifact can reach
/// neither a reader process nor a remote peer.
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
    state: Mutex<IndexState>,
    writes: AtomicUsize,
    evictions: AtomicUsize,
    tmp_seq: AtomicUsize,
}

impl DiskStore {
    const INDEX: &'static str = "index.v2";

    /// First line of the index sidecar; records the artifact format
    /// version, so an index written by a different format generation is
    /// discarded wholesale (its entries would describe undecodable files).
    fn index_magic() -> String {
        format!("cleanml-artifact-index v2 format {FORMAT_VERSION}")
    }

    /// Opens (or creates) the store under `dir`. A stale or missing index
    /// — the normal state after a killed run — is reconciled against a
    /// directory scan: entries without a file are dropped, files without
    /// an entry are adopted with the oldest possible access time. A
    /// sidecar left by the hex-text era (`index.v1`) is deleted outright.
    pub fn open(dir: PathBuf, max_bytes: Option<u64>) -> Arc<DiskStore> {
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::remove_file(dir.join("index.v1"));
        let mut state = Self::load_index(&dir.join(Self::INDEX)).unwrap_or_default();
        Self::reconcile(&dir, &mut state);
        let store = DiskStore {
            dir,
            max_bytes,
            state: Mutex::new(state),
            writes: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            tmp_seq: AtomicUsize::new(0),
        };
        // A fresh cap may be tighter than what a previous run left behind.
        store.enforce_cap_for(0);
        store.flush();
        Arc::new(store)
    }

    fn load_index(path: &Path) -> Option<IndexState> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        if lines.next()? != Self::index_magic() {
            return None;
        }
        let clock: u64 = lines.next()?.strip_prefix("clock ")?.parse().ok()?;
        let mut entries = HashMap::new();
        for line in lines {
            let mut f = line.split_whitespace();
            let key = CacheKey::parse(f.next()?)?;
            let size: u64 = f.next()?.parse().ok()?;
            let access: u64 = f.next()?.parse().ok()?;
            entries.insert(key, IndexEntry { size, access });
        }
        Some(IndexState { entries, clock, dirty: 0 })
    }

    /// Brings the index in line with the files actually present.
    fn reconcile(dir: &Path, state: &mut IndexState) {
        let mut present: HashMap<CacheKey, u64> = HashMap::new();
        if let Ok(rd) = std::fs::read_dir(dir) {
            for entry in rd.flatten() {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name.strip_suffix(".art") {
                    if let (Some(key), Ok(meta)) = (CacheKey::parse(stem), entry.metadata()) {
                        present.insert(key, meta.len());
                        continue;
                    }
                }
                // leftover temp file from a crashed writer
                if name.contains(".tmp-") {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        state.entries.retain(|k, _| present.contains_key(k));
        for (key, size) in present {
            // adopt unindexed files (written after the last index flush)
            // as least-recently-used, and trust the filesystem for sizes
            state.entries.entry(key).or_insert(IndexEntry { size, access: 0 }).size = size;
        }
        state.dirty += 1;
    }

    fn art_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.art"))
    }

    /// Reads an entry's payload, touching its LRU slot. The artifact frame
    /// is validated and stripped here: a missing file drops the index
    /// entry, and an unreadable, truncated, corrupt or legacy-version file
    /// is *deleted* (GC'd) and reported as a miss — the demanding task
    /// simply re-runs and overwrites it.
    pub fn load(&self, key: CacheKey) -> Option<Vec<u8>> {
        match std::fs::read(self.art_path(key)) {
            Ok(mut bytes) => match open_frame(&bytes) {
                Some(_) => {
                    // strip the validated header in place — no second
                    // allocation on the warm-resume hot path
                    bytes.drain(..cleanml_dataset::codec::FRAME_HEADER_LEN);
                    let mut state = self.state.lock().expect("index lock");
                    state.touch(key);
                    self.flush_if_due(state);
                    Some(bytes)
                }
                None => {
                    self.remove(key);
                    None
                }
            },
            Err(_) => {
                let mut state = self.state.lock().expect("index lock");
                state.entries.remove(&key);
                None
            }
        }
    }

    /// Persists the framed `payload` under `key` atomically (temp file +
    /// rename), evicting least-recently-used entries first when a byte cap
    /// is configured. Returns `true` when the entry was newly written; an
    /// existing entry is only touched. An entry larger than the whole cap
    /// is not stored.
    pub fn store(&self, key: CacheKey, payload: &[u8]) -> bool {
        let size = (cleanml_dataset::codec::FRAME_HEADER_LEN + payload.len()) as u64;
        if self.max_bytes.is_some_and(|cap| size > cap) {
            return false;
        }
        // The index lock is deliberately held across the file write and
        // rename below: eviction must happen before the incoming bytes
        // touch disk, and no concurrent store may write between the two,
        // or the directory could transiently exceed the byte cap. This
        // serializes persistence, but task compute dominates wall-clock by
        // orders of magnitude, and the strict bound is the contract.
        let mut state = self.state.lock().expect("index lock");
        if state.entries.contains_key(&key) {
            state.touch(key);
            self.flush_if_due(state);
            return false;
        }
        self.evict_until_fits(&mut state, size);

        // Seal only once we know the entry is new and fits: a duplicate
        // store (two engines sharing the directory, a resumed run
        // re-persisting) must not pay the payload copy + checksum.
        let framed = seal_frame(payload);
        // Unique temp name per process *and* per write: two processes (or
        // threads) racing on the same key each rename a complete file.
        let tmp = self.dir.join(format!(
            "{key}.tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let ok = std::fs::write(&tmp, &framed).is_ok()
            && std::fs::rename(&tmp, self.art_path(key)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        state.clock += 1;
        let access = state.clock;
        state.entries.insert(key, IndexEntry { size, access });
        state.dirty += 1;
        self.writes.fetch_add(1, Ordering::Relaxed);
        let t = crate::telemetry::global();
        if t.enabled() {
            t.store_writes.inc();
            t.store_written_bytes.add(size);
        }
        self.flush_if_due(state);
        true
    }

    /// Deletes an entry (used when a decode reveals corruption). Counted
    /// as GC in the telemetry registry, bytes included.
    pub fn remove(&self, key: CacheKey) {
        let _ = std::fs::remove_file(self.art_path(key));
        let mut state = self.state.lock().expect("index lock");
        if let Some(entry) = state.entries.remove(&key) {
            state.dirty += 1;
            let t = crate::telemetry::global();
            if t.enabled() {
                t.store_gc.inc();
                t.store_gc_bytes.add(entry.size);
            }
        }
    }

    /// Evicts oldest-accessed entries until `incoming` more bytes fit under
    /// the cap. Ties (e.g. freshly adopted files) break by key, so two
    /// processes sharing the directory evict in the same order.
    fn evict_until_fits(&self, state: &mut IndexState, incoming: u64) {
        let Some(cap) = self.max_bytes else { return };
        let t = crate::telemetry::global();
        let mut total = state.total_bytes();
        while total + incoming > cap && !state.entries.is_empty() {
            let victim = state
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.access, k.0, k.1))
                .map(|(k, e)| (*k, e.size))
                .expect("non-empty");
            let _ = std::fs::remove_file(self.art_path(victim.0));
            state.entries.remove(&victim.0);
            state.dirty += 1;
            total -= victim.1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if t.enabled() {
                t.store_evictions.inc();
                t.store_evicted_bytes.add(victim.1);
            }
        }
    }

    fn enforce_cap_for(&self, incoming: u64) {
        let mut state = self.state.lock().expect("index lock");
        self.evict_until_fits(&mut state, incoming);
    }

    fn flush_if_due(&self, state: std::sync::MutexGuard<'_, IndexState>) {
        if state.dirty >= FLUSH_EVERY {
            self.flush_locked(state);
        }
    }

    /// Atomically rewrites the index file.
    pub fn flush(&self) {
        let state = self.state.lock().expect("index lock");
        self.flush_locked(state);
    }

    fn flush_locked(&self, mut state: std::sync::MutexGuard<'_, IndexState>) {
        use std::fmt::Write as _;
        let mut text = format!("{}\nclock {}\n", Self::index_magic(), state.clock);
        let mut keys: Vec<&CacheKey> = state.entries.keys().collect();
        keys.sort(); // deterministic file content
        for key in keys {
            let e = state.entries[key];
            let _ = writeln!(text, "{key} {} {}", e.size, e.access);
        }
        let tmp = self.dir.join(format!(
            "{}.tmp-{}-{}",
            Self::INDEX,
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, text).is_ok()
            && std::fs::rename(&tmp, self.dir.join(Self::INDEX)).is_ok()
        {
            state.dirty = 0;
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Bytes of artifact payload currently indexed.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().expect("index lock").total_bytes()
    }

    /// Number of entries currently indexed.
    pub fn len(&self) -> usize {
        self.state.lock().expect("index lock").entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries written since the last [`DiskStore::reset_counters`].
    pub fn writes(&self) -> usize {
        self.writes.load(Ordering::Relaxed)
    }

    /// Entries evicted by the byte cap since the last reset.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn reset_counters(&self) {
        self.writes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Default number of *unpinned* warm artifacts [`Retention`] keeps
/// resident before LRU eviction kicks in.
pub const DEFAULT_WARM_ENTRIES: usize = 256;

/// Cross-submission in-memory retention for finished artifacts.
///
/// The single-run engine retired an artifact the moment its last consumer
/// finished — correct when one graph owns the process, wasteful for a
/// resident engine where the next submission may demand the same content
/// address seconds later. `Retention` generalizes that policy:
///
/// * **pins** — refcounts aggregated over *live submissions*: every active
///   submission pins the keys it needs to survive until collection (its
///   sinks). A pinned entry is never evicted, no matter the cap.
/// * **warm LRU** — retired artifacts (consumers done, nobody retaining)
///   are parked here instead of dropped. Unpinned entries are bounded by
///   an entry cap with least-recently-used eviction, so a long-lived
///   serving process holds a working set, not an unbounded history.
///
/// A later submission that dedupes onto an already-retired task recovers
/// the artifact from here without touching the disk store or re-running
/// the task body.
pub struct Retention<T> {
    pins: HashMap<CacheKey, usize>,
    warm: HashMap<CacheKey, (T, u64)>,
    clock: u64,
    cap: usize,
}

impl<T: Clone> Retention<T> {
    /// Creates a retention set keeping at most `cap` unpinned warm entries.
    pub fn new(cap: usize) -> Self {
        Retention { pins: HashMap::new(), warm: HashMap::new(), clock: 0, cap }
    }

    /// Registers one live submission's interest in `key`.
    pub fn pin(&mut self, key: CacheKey) {
        *self.pins.entry(key).or_insert(0) += 1;
    }

    /// Releases one submission's interest; the entry becomes evictable
    /// when the last pin drops.
    pub fn unpin(&mut self, key: CacheKey) {
        if let Some(n) = self.pins.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                self.pins.remove(&key);
                self.enforce_cap();
            }
        }
    }

    /// Parks a retired artifact. Unpinned entries beyond the cap evict
    /// least-recently-used first; pinned entries always fit.
    pub fn insert(&mut self, key: CacheKey, artifact: T) {
        self.clock += 1;
        let clock = self.clock;
        self.warm.insert(key, (artifact, clock));
        self.enforce_cap();
    }

    /// Recovers a warm artifact, touching its LRU slot.
    pub fn get(&mut self, key: CacheKey) -> Option<T> {
        self.clock += 1;
        let clock = self.clock;
        let (artifact, access) = self.warm.get_mut(&key)?;
        *access = clock;
        Some(artifact.clone())
    }

    /// Warm entries currently resident (pinned and unpinned).
    pub fn len(&self) -> usize {
        self.warm.len()
    }

    pub fn is_empty(&self) -> bool {
        self.warm.is_empty()
    }

    /// Live pin count for `key` (refcount over live submissions).
    pub fn pins(&self, key: CacheKey) -> usize {
        self.pins.get(&key).copied().unwrap_or(0)
    }

    fn enforce_cap(&mut self) {
        loop {
            let unpinned = self.warm.keys().filter(|k| !self.pins.contains_key(k)).count();
            if unpinned <= self.cap {
                return;
            }
            // oldest unpinned entry; key breaks ties deterministically
            let victim = self
                .warm
                .iter()
                .filter(|(k, _)| !self.pins.contains_key(*k))
                .min_by_key(|(k, (_, access))| (*access, k.0, k.1))
                .map(|(k, _)| *k)
                .expect("unpinned > cap >= 0 implies a victim");
            self.warm.remove(&victim);
            let t = crate::telemetry::global();
            if t.enabled() {
                t.warm_evictions.inc();
            }
        }
    }
}

/// The two-layer cache. Both in-memory layers hand out `Arc` handles:
/// a hit is a refcount bump, never a deep copy of the artifact.
pub struct ArtifactCache<A> {
    memory: HashMap<CacheKey, (Arc<A>, u64)>,
    /// Heavy disk-decoded artifacts (`promote_to_memory() == false`):
    /// decoded **once per process**, then shared by handle with every
    /// consumer. Bounded by an entry cap, but an entry with outstanding
    /// handles (`Arc::strong_count > 1`) is pinned and never evicted —
    /// its bytes are live anyway, so dropping our handle would only force
    /// the next consumer to decode a second copy.
    resident: HashMap<CacheKey, (Arc<A>, u64)>,
    clock: u64,
    /// Entry cap for the memory layer; least-recently-used entries evict
    /// beyond it, so a resident engine's memo cannot grow without bound.
    memo_cap: usize,
    resident_cap: usize,
    disk: Option<Arc<DiskStore>>,
    pub stats: CacheStats,
}

/// Default entry cap for [`ArtifactCache`]'s in-memory layer. Generous —
/// a full five-error-type study retains a few thousand artifacts — but
/// bounded, so a long-lived serving daemon answering varied query traffic
/// (every distinct config a distinct content address) evicts
/// least-recently-used memo entries instead of accreting them forever.
/// Evicting only ever costs a disk hit or a recompute, never correctness.
pub const DEFAULT_MEMO_ENTRIES: usize = 65_536;

/// Default entry cap for the resident layer of heavy decoded artifacts.
/// Entries with outstanding handles are pinned and do not count against
/// evictability; the cap bounds the *idle* decoded working set.
pub const DEFAULT_RESIDENT_ENTRIES: usize = 64;

impl<A: DiskCodec> ArtifactCache<A> {
    /// Creates a cache; `disk` enables an uncapped persistent layer under
    /// that directory.
    pub fn new(disk: Option<PathBuf>) -> Self {
        Self::with_store(disk.map(|d| DiskStore::open(d, None)))
    }

    /// Creates a cache over an existing (possibly shared, possibly
    /// size-capped) disk store.
    pub fn with_store(disk: Option<Arc<DiskStore>>) -> Self {
        ArtifactCache {
            memory: HashMap::new(),
            resident: HashMap::new(),
            clock: 0,
            memo_cap: DEFAULT_MEMO_ENTRIES,
            resident_cap: DEFAULT_RESIDENT_ENTRIES,
            disk,
            stats: CacheStats::default(),
        }
    }

    /// Overrides the memory-layer entry cap.
    pub fn with_memo_cap(mut self, cap: usize) -> Self {
        self.memo_cap = cap.max(1);
        self.enforce_memo_cap();
        self
    }

    /// Overrides the resident-layer entry cap.
    pub fn with_resident_cap(mut self, cap: usize) -> Self {
        self.resident_cap = cap.max(1);
        self
    }

    fn remember(&mut self, key: CacheKey, artifact: Arc<A>) {
        self.clock += 1;
        let clock = self.clock;
        self.memory.insert(key, (artifact, clock));
        self.enforce_memo_cap();
    }

    /// Parks a freshly decoded heavy artifact in the resident layer and
    /// charges its bytes to the `resident_bytes` gauge. Evicts the
    /// least-recently-used entry *without outstanding handles* when the
    /// cap is exceeded; pinned entries (handles alive) always fit.
    fn park_resident(&mut self, key: CacheKey, artifact: Arc<A>) {
        self.clock += 1;
        let clock = self.clock;
        let t = crate::telemetry::global();
        if t.enabled() {
            t.resident_bytes.add(artifact.approx_bytes() as i64);
        }
        self.resident.insert(key, (artifact, clock));
        loop {
            let evictable =
                self.resident.iter().filter(|(_, (a, _))| Arc::strong_count(a) == 1).count();
            if self.resident.len() <= self.resident_cap || evictable == 0 {
                return;
            }
            let victim = self
                .resident
                .iter()
                .filter(|(_, (a, _))| Arc::strong_count(a) == 1)
                .min_by_key(|(k, (_, access))| (*access, k.0, k.1))
                .map(|(k, _)| *k)
                .expect("evictable > 0 implies a victim");
            if let Some((gone, _)) = self.resident.remove(&victim) {
                if t.enabled() {
                    t.resident_bytes.add(-(gone.approx_bytes() as i64));
                }
            }
        }
    }

    fn enforce_memo_cap(&mut self) {
        while self.memory.len() > self.memo_cap {
            let victim = self
                .memory
                .iter()
                .min_by_key(|(k, (_, access))| (*access, k.0, k.1))
                .map(|(k, _)| *k)
                .expect("len > cap >= 1 implies a victim");
            self.memory.remove(&victim);
            let t = crate::telemetry::global();
            if t.enabled() {
                t.memo_evictions.inc();
            }
        }
    }

    /// The persistent layer, if any.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.disk.as_ref()
    }

    /// Resets only the statistics (kept across runs otherwise).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        if let Some(store) = &self.disk {
            store.reset_counters();
        }
    }

    /// Number of artifacts resident in memory.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    /// Looks `key` up in memory (memo, then resident), then on disk. Any
    /// in-memory hit is a handle share — a refcount bump on the one
    /// decoded allocation, never a deep copy. A disk hit is decoded once:
    /// promoted into the memo when the artifact opts in (small artifacts —
    /// see [`DiskCodec::promote_to_memory`]), parked in the bounded
    /// resident layer otherwise, so sibling consumers behind it share the
    /// decode instead of each paying it.
    pub fn get(&mut self, key: CacheKey) -> Option<Arc<A>> {
        let t = crate::telemetry::global();
        self.clock += 1;
        let clock = self.clock;
        if let Some((a, access)) = self.memory.get_mut(&key) {
            *access = clock;
            self.stats.memory_hits += 1;
            if t.enabled() {
                t.cache_memory_hits.inc();
                t.handle_shares.inc();
            }
            return Some(Arc::clone(a));
        }
        if let Some((a, access)) = self.resident.get_mut(&key) {
            *access = clock;
            self.stats.memory_hits += 1;
            if t.enabled() {
                t.cache_memory_hits.inc();
                t.handle_shares.inc();
                t.deep_copies_avoided.inc();
            }
            return Some(Arc::clone(a));
        }
        if let Some(store) = self.disk.clone() {
            if let Some(payload) = store.load(key) {
                if let Some(a) = A::decode(&payload) {
                    self.stats.disk_hits += 1;
                    if t.enabled() {
                        t.cache_disk_hits.inc();
                    }
                    let a = Arc::new(a);
                    if a.promote_to_memory() {
                        self.remember(key, Arc::clone(&a));
                    } else {
                        self.park_resident(key, Arc::clone(&a));
                    }
                    return Some(a);
                }
                // corrupt entry: drop it so the re-run overwrites
                store.remove(key);
            }
        }
        self.stats.misses += 1;
        if t.enabled() {
            t.cache_misses.inc();
        }
        None
    }

    /// Stores an artifact under its content address in both layers. Takes
    /// a handle: the memo keeps a share of the caller's allocation.
    pub fn put(&mut self, key: CacheKey, artifact: &Arc<A>) {
        if let (Some(store), Some(payload)) = (&self.disk, artifact.encode()) {
            if store.store(key, &payload) {
                self.stats.disk_writes += 1;
            }
        }
        self.remember(key, Arc::clone(artifact));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::codec::{push_f64, take_f64, Reader, FRAME_HEADER_LEN};

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(f64);

    impl DiskCodec for Blob {
        fn encode(&self) -> Option<Vec<u8>> {
            let mut out = vec![b'B'];
            push_f64(&mut out, self.0);
            Some(out)
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let mut r = Reader::new(bytes);
            cleanml_dataset::codec::expect(&mut r, b'B')?;
            let x = take_f64(&mut r)?;
            r.is_empty().then_some(Blob(x))
        }
    }

    /// On-disk size of a payload of `n` bytes.
    fn framed(n: usize) -> u64 {
        (FRAME_HEADER_LEN + n) as u64
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cleanml-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(CacheKey::of("train/EEG/3"), CacheKey::of("train/EEG/3"));
        assert_ne!(CacheKey::of("train/EEG/3"), CacheKey::of("train/EEG/4"));
        assert_ne!(CacheKey::of("a"), CacheKey::of("b"));
        assert_eq!(format!("{}", CacheKey(1, 2)).len(), 32);
        let k = CacheKey::of("round-trip");
        assert_eq!(CacheKey::parse(&k.to_string()), Some(k));
        assert_eq!(CacheKey::parse("xyz"), None);
    }

    #[test]
    fn memory_layer_round_trips() {
        let mut c: ArtifactCache<Blob> = ArtifactCache::new(None);
        let k = CacheKey::of("x");
        assert!(c.get(k).is_none());
        c.put(k, &Arc::new(Blob(0.5)));
        assert_eq!(c.get(k).as_deref(), Some(&Blob(0.5)));
        assert_eq!(c.stats.memory_hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.disk_writes, 0);
    }

    #[test]
    fn memory_hits_share_one_allocation() {
        let mut c: ArtifactCache<Blob> = ArtifactCache::new(None);
        let k = CacheKey::of("shared");
        let original = Arc::new(Blob(2.5));
        c.put(k, &original);
        let h1 = c.get(k).expect("hit");
        let h2 = c.get(k).expect("hit");
        assert!(Arc::ptr_eq(&h1, &h2), "hits must share the allocation");
        assert!(Arc::ptr_eq(&h1, &original), "memo keeps the caller's allocation");
    }

    /// A heavy artifact: opts out of memo promotion, so disk hits land in
    /// the resident layer.
    #[derive(Debug, Clone, PartialEq)]
    struct Heavy(f64);

    impl DiskCodec for Heavy {
        fn encode(&self) -> Option<Vec<u8>> {
            let mut out = vec![b'H'];
            push_f64(&mut out, self.0);
            Some(out)
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let mut r = Reader::new(bytes);
            cleanml_dataset::codec::expect(&mut r, b'H')?;
            let x = take_f64(&mut r)?;
            r.is_empty().then_some(Heavy(x))
        }
        fn promote_to_memory(&self) -> bool {
            false
        }
        fn approx_bytes(&self) -> u64 {
            1024
        }
    }

    #[test]
    fn heavy_disk_hit_decodes_once_and_stays_resident() {
        let dir = temp_dir("resident");
        let k = CacheKey::of("heavy");
        {
            let mut c: ArtifactCache<Heavy> = ArtifactCache::new(Some(dir.clone()));
            c.put(k, &Arc::new(Heavy(7.0)));
        }
        // fresh process image: first get pays the decode, the rest share it
        let mut c: ArtifactCache<Heavy> = ArtifactCache::new(Some(dir.clone()));
        let h1 = c.get(k).expect("disk hit");
        let h2 = c.get(k).expect("resident hit");
        let h3 = c.get(k).expect("resident hit");
        assert_eq!(c.stats.disk_hits, 1, "exactly one decode per process");
        assert_eq!(c.stats.memory_hits, 2);
        assert!(Arc::ptr_eq(&h1, &h2) && Arc::ptr_eq(&h2, &h3), "one shared allocation");
        assert_eq!(*h1, Heavy(7.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_layer_evicts_idle_entries_but_pins_live_handles() {
        let dir = temp_dir("resident-cap");
        let keys: Vec<CacheKey> = (0..4).map(|i| CacheKey::of(&format!("h{i}"))).collect();
        {
            let mut c: ArtifactCache<Heavy> = ArtifactCache::new(Some(dir.clone()));
            for (i, k) in keys.iter().enumerate() {
                c.put(*k, &Arc::new(Heavy(i as f64)));
            }
        }
        let store = DiskStore::open(dir.clone(), None);
        let mut c: ArtifactCache<Heavy> =
            ArtifactCache::with_store(Some(store)).with_resident_cap(2);
        // hold a live handle to h0: it must survive any eviction
        let pinned = c.get(keys[0]).expect("disk hit");
        for k in &keys[1..] {
            let _ = c.get(*k).expect("disk hit"); // handle dropped at once
        }
        assert_eq!(c.stats.disk_hits, 4);
        // h0 is pinned by `pinned`; idle entries were evicted down to cap
        let again = c.get(keys[0]).expect("still resident");
        assert!(Arc::ptr_eq(&pinned, &again), "live handle pins the entry");
        assert_eq!(c.stats.memory_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_layer_survives_a_fresh_cache() {
        let dir = temp_dir("fresh");
        let k = CacheKey::of("persisted");
        {
            let mut c: ArtifactCache<Blob> = ArtifactCache::new(Some(dir.clone()));
            c.put(k, &Arc::new(Blob(std::f64::consts::PI)));
            assert_eq!(c.stats.disk_writes, 1);
        }
        let mut fresh: ArtifactCache<Blob> = ArtifactCache::new(Some(dir.clone()));
        assert_eq!(fresh.get(k).as_deref(), Some(&Blob(std::f64::consts::PI)));
        assert_eq!(fresh.stats.disk_hits, 1);
        // unframed (e.g. hex-text era) entries are discarded, not trusted
        let bad_path = dir.join(format!("{}.art", CacheKey::of("bad")));
        std::fs::write(&bad_path, "cell v1 3fe0000000000000").unwrap();
        assert!(fresh.get(CacheKey::of("bad")).is_none());
        assert!(!bad_path.exists(), "invalid frame GC'd on load");
        // a well-framed payload that fails the *codec* is also discarded
        let undecodable = dir.join(format!("{}.art", CacheKey::of("undec")));
        std::fs::write(&undecodable, seal_frame(b"not a blob")).unwrap();
        let fresh2 = DiskStore::open(dir.clone(), None);
        let mut c: ArtifactCache<Blob> = ArtifactCache::with_store(Some(fresh2));
        assert!(c.get(CacheKey::of("undec")).is_none());
        assert!(!undecodable.exists(), "undecodable payload GC'd");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_legacy_version_frames_are_misses_and_gced() {
        let dir = temp_dir("frames");
        let store = DiskStore::open(dir.clone(), None);
        let k = CacheKey::of("entry");
        assert!(store.store(k, b"payload bytes"));
        let path = dir.join(format!("{k}.art"));

        // flip one payload bit on disk: checksum catches it, entry is GC'd
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(k).is_none(), "corrupt frame served");
        assert!(!path.exists(), "corrupt frame not GC'd");

        // a legacy-version frame (format bumped) is a miss, not a crash
        assert!(store.store(k, b"payload bytes"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = FORMAT_VERSION as u8 - 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(k).is_none(), "legacy version served");
        assert!(!path.exists(), "legacy entry not GC'd");

        // a truncated write (torn tail after a crash mid-rename on a
        // non-atomic filesystem) is likewise a miss
        assert!(store.store(k, b"payload bytes"));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load(k).is_none(), "truncated frame served");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_are_atomic_via_rename() {
        let dir = temp_dir("atomic");
        let store = DiskStore::open(dir.clone(), None);
        store.store(CacheKey::of("a"), b"payload");
        // no temp residue after a completed write
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_rebuilds_after_stale_or_missing_file() {
        let dir = temp_dir("rebuild");
        let (ka, kb) = (CacheKey::of("a"), CacheKey::of("b"));
        {
            let store = DiskStore::open(dir.clone(), None);
            store.store(ka, b"aaaa");
            store.store(kb, b"bbbbbb");
        } // drop flushes the index
          // simulate a kill after more writes than index flushes: an
          // unindexed file appears, an indexed one disappears
        std::fs::remove_file(dir.join(format!("{kb}.art"))).unwrap();
        let kc = CacheKey::of("c");
        std::fs::write(dir.join(format!("{kc}.art")), seal_frame(b"cc")).unwrap();
        std::fs::write(dir.join(format!("{kc}.tmp-999-0")), "torn").unwrap();

        let store = DiskStore::open(dir.clone(), None);
        assert_eq!(store.len(), 2, "a kept, b dropped, c adopted");
        assert_eq!(store.total_bytes(), framed(4) + framed(2));
        assert!(store.load(kb).is_none());
        assert_eq!(store.load(kc).as_deref(), Some(&b"cc"[..]));
        assert!(!dir.join(format!("{kc}.tmp-999-0")).exists(), "temp residue cleaned");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hex_text_era_directory_degrades_to_cold_cache() {
        // A run directory left by the v1 (hex-text) store: loose token
        // files and an index.v1 sidecar. Opening the v2 store must neither
        // crash nor serve any of it — every entry is a miss, GC'd on first
        // touch, and the stale sidecar is deleted.
        let dir = temp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let k = CacheKey::of("legacy-split");
        std::fs::write(dir.join(format!("{k}.art")), "split v2 T2 1 0 s78 n F").unwrap();
        std::fs::write(
            dir.join("index.v1"),
            format!("cleanml-artifact-index v1\nclock 3\n{k} 24 3\n"),
        )
        .unwrap();

        let store = DiskStore::open(dir.clone(), None);
        assert!(!dir.join("index.v1").exists(), "v1 sidecar deleted");
        assert_eq!(store.len(), 1, "file adopted by the scan");
        assert!(store.load(k).is_none(), "legacy entry must be a miss");
        assert_eq!(store.len(), 0, "legacy entry GC'd on load");
        assert!(!dir.join(format!("{k}.art")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_cap_and_touch_on_read() {
        let dir = temp_dir("lru");
        let cap = framed(4) * 2 + 2; // room for two entries, not three
        let store = DiskStore::open(dir.clone(), Some(cap));
        let (ka, kb, kc) = (CacheKey::of("a"), CacheKey::of("b"), CacheKey::of("c"));
        assert!(store.store(ka, b"aaaa"));
        assert!(store.store(kb, b"bbbb"));
        // touching `a` makes `b` the LRU entry
        assert_eq!(store.load(ka).as_deref(), Some(&b"aaaa"[..]));
        assert!(store.store(kc, b"cccc")); // third entry exceeds cap: evicts b
        assert_eq!(store.evictions(), 1);
        assert!(store.total_bytes() <= cap);
        assert!(store.load(kb).is_none(), "LRU entry evicted");
        assert_eq!(store.load(ka).as_deref(), Some(&b"aaaa"[..]), "recently read survives");
        assert_eq!(store.load(kc).as_deref(), Some(&b"cccc"[..]));
        // an entry larger than the whole cap is refused outright
        assert!(!store.store(CacheKey::of("huge"), &[b'x'; 256]));
        assert!(store.total_bytes() <= cap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_with_tighter_cap_shrinks_directory() {
        let dir = temp_dir("shrink");
        {
            let store = DiskStore::open(dir.clone(), None);
            for i in 0..8 {
                store.store(CacheKey::of(&format!("k{i}")), &[b'y'; 8]);
            }
            assert_eq!(store.total_bytes(), 8 * framed(8));
        }
        let store = DiskStore::open(dir.clone(), Some(3 * framed(8)));
        assert!(store.total_bytes() <= 3 * framed(8));
        assert!(store.len() <= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_layer_is_bounded_with_lru_eviction() {
        let mut c: ArtifactCache<Blob> = ArtifactCache::new(None).with_memo_cap(2);
        let (ka, kb, kc) = (CacheKey::of("ma"), CacheKey::of("mb"), CacheKey::of("mc"));
        c.put(ka, &Arc::new(Blob(1.0)));
        c.put(kb, &Arc::new(Blob(2.0)));
        assert!(c.get(ka).is_some()); // touch: b becomes LRU
        c.put(kc, &Arc::new(Blob(3.0)));
        assert_eq!(c.len(), 2, "memo stays under its entry cap");
        assert!(c.get(kb).is_none(), "LRU memo entry evicted");
        assert_eq!(c.get(ka).as_deref(), Some(&Blob(1.0)));
        assert_eq!(c.get(kc).as_deref(), Some(&Blob(3.0)));
    }

    #[test]
    fn retention_pins_survive_eviction_and_lru_orders_the_rest() {
        let mut r: Retention<Blob> = Retention::new(2);
        let (ka, kb, kc, kd) =
            (CacheKey::of("ra"), CacheKey::of("rb"), CacheKey::of("rc"), CacheKey::of("rd"));
        r.pin(ka);
        r.pin(ka); // two live submissions
        r.insert(ka, Blob(1.0));
        r.insert(kb, Blob(2.0));
        r.insert(kc, Blob(3.0));
        // touching b makes c the LRU unpinned entry
        assert!(r.get(kb).is_some());
        r.insert(kd, Blob(4.0)); // third unpinned entry: evicts c
        assert_eq!(r.len(), 3, "a pinned + b, d warm");
        assert!(r.get(kc).is_none(), "LRU unpinned entry evicted");
        assert_eq!(r.get(ka), Some(Blob(1.0)), "pinned entry never evicted");

        // one submission releases its pin: still pinned by the other
        r.unpin(ka);
        assert_eq!(r.pins(ka), 1);
        r.insert(CacheKey::of("re"), Blob(5.0)); // evicts an unpinned entry
        assert_eq!(r.get(ka), Some(Blob(1.0)));

        // last pin drops: `a` becomes evictable like any warm entry, and
        // the cap is re-enforced immediately (3 unpinned > cap 2)
        r.unpin(ka);
        assert_eq!(r.pins(ka), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn store_is_idempotent_per_key() {
        let dir = temp_dir("idem");
        let store = DiskStore::open(dir.clone(), None);
        let k = CacheKey::of("once");
        assert!(store.store(k, b"v"));
        assert!(!store.store(k, b"v"), "second write is a touch, not a write");
        assert_eq!(store.writes(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
