//! Content-addressed artifact cache.
//!
//! Every task's inputs (dataset spec, seeds, method, model, budget, …) are
//! folded into a canonical string; its 128-bit FNV-1a digest is the task's
//! **content address**. Two layers sit behind one interface:
//!
//! * an in-memory map — deduplicates shared work inside a run (e.g. a base
//!   dataset used by three mislabel variants) and makes in-process re-runs
//!   free;
//! * an optional on-disk layer under a run directory — persists the
//!   artifacts that have a stable serial form (grid cells and dataset
//!   contexts), so a *resumed or repeated* study skips every finished
//!   training task.
//!
//! Floats are serialized via their IEEE-754 bit patterns, so a warm run
//! reproduces byte-identical relations.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

/// 128-bit content address (two independent FNV-1a passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64, pub u64);

fn fnv1a(s: &str, mut h: u64, prime: u64) -> u64 {
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(prime);
    }
    h
}

impl CacheKey {
    /// Hashes a canonical task-input description.
    pub fn of(canonical: &str) -> CacheKey {
        CacheKey(
            fnv1a(canonical, 0xcbf2_9ce4_8422_2325, 0x100_0000_01b3),
            // second pass: different offset basis decorrelates the halves
            fnv1a(canonical, 0x6c62_272e_07bb_0142, 0x100_0000_01b3).rotate_left(1)
                ^ canonical.len() as u64,
        )
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Serial form for artifacts that survive on disk. Artifacts that return
/// `None` from [`DiskCodec::encode`] live only in memory.
pub trait DiskCodec: Sized {
    fn encode(&self) -> Option<String>;
    fn decode(text: &str) -> Option<Self>;
}

/// Hit/miss counters, split by layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub memory_hits: usize,
    pub disk_hits: usize,
    pub misses: usize,
    pub disk_writes: usize,
}

impl CacheStats {
    pub fn hits(&self) -> usize {
        self.memory_hits + self.disk_hits
    }
}

/// The two-layer cache.
pub struct ArtifactCache<A> {
    memory: HashMap<CacheKey, A>,
    disk: Option<PathBuf>,
    pub stats: CacheStats,
}

impl<A: Clone + DiskCodec> ArtifactCache<A> {
    /// Creates a cache; `disk` enables the persistent layer under that
    /// directory (created on demand).
    pub fn new(disk: Option<PathBuf>) -> Self {
        ArtifactCache { memory: HashMap::new(), disk, stats: CacheStats::default() }
    }

    /// Resets only the statistics (kept across runs otherwise).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of artifacts resident in memory.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    fn disk_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.disk.as_ref().map(|d| d.join(format!("{key}.art")))
    }

    /// Looks `key` up in memory, then on disk. A disk hit is promoted into
    /// memory.
    pub fn get(&mut self, key: CacheKey) -> Option<A> {
        if let Some(a) = self.memory.get(&key) {
            self.stats.memory_hits += 1;
            return Some(a.clone());
        }
        if let Some(path) = self.disk_path(key) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Some(a) = A::decode(&text) {
                    self.stats.disk_hits += 1;
                    self.memory.insert(key, a.clone());
                    return Some(a);
                }
                // corrupt entry: drop it so the re-run overwrites
                let _ = std::fs::remove_file(&path);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores an artifact under its content address in both layers.
    pub fn put(&mut self, key: CacheKey, artifact: &A) {
        if let (Some(path), Some(text)) = (self.disk_path(key), artifact.encode()) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if std::fs::write(&path, text).is_ok() {
                self.stats.disk_writes += 1;
            }
        }
        self.memory.insert(key, artifact.clone());
    }
}

/// Helpers for the IEEE-754 round-trip encoding used by [`DiskCodec`]
/// implementations.
pub fn f64_to_field(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

pub fn f64_from_field(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(f64);

    impl DiskCodec for Blob {
        fn encode(&self) -> Option<String> {
            Some(format!("blob {}", f64_to_field(self.0)))
        }
        fn decode(text: &str) -> Option<Self> {
            let rest = text.strip_prefix("blob ")?;
            f64_from_field(rest.trim()).map(Blob)
        }
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(CacheKey::of("train/EEG/3"), CacheKey::of("train/EEG/3"));
        assert_ne!(CacheKey::of("train/EEG/3"), CacheKey::of("train/EEG/4"));
        assert_ne!(CacheKey::of("a"), CacheKey::of("b"));
        assert_eq!(format!("{}", CacheKey(1, 2)).len(), 32);
    }

    #[test]
    fn memory_layer_round_trips() {
        let mut c: ArtifactCache<Blob> = ArtifactCache::new(None);
        let k = CacheKey::of("x");
        assert!(c.get(k).is_none());
        c.put(k, &Blob(0.5));
        assert_eq!(c.get(k), Some(Blob(0.5)));
        assert_eq!(c.stats.memory_hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.disk_writes, 0);
    }

    #[test]
    fn disk_layer_survives_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("cleanml-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let k = CacheKey::of("persisted");
        {
            let mut c: ArtifactCache<Blob> = ArtifactCache::new(Some(dir.clone()));
            c.put(k, &Blob(std::f64::consts::PI));
            assert_eq!(c.stats.disk_writes, 1);
        }
        let mut fresh: ArtifactCache<Blob> = ArtifactCache::new(Some(dir.clone()));
        assert_eq!(fresh.get(k), Some(Blob(std::f64::consts::PI)));
        assert_eq!(fresh.stats.disk_hits, 1);
        // corrupt entries are discarded, not trusted
        std::fs::write(dir.join(format!("{}.art", CacheKey::of("bad"))), "garbage").unwrap();
        assert!(fresh.get(CacheKey::of("bad")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_fields_round_trip_exactly() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, std::f64::consts::E, -1e300] {
            assert_eq!(f64_from_field(&f64_to_field(x)), Some(x));
        }
    }
}
