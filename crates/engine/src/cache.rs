//! Content-addressed artifact store.
//!
//! Every task's inputs (dataset spec, seeds, method, model, budget, …) are
//! folded into a canonical string; its 128-bit FNV-1a digest is the task's
//! **content address**. Two layers sit behind one interface:
//!
//! * an in-memory map — deduplicates shared work inside a run (e.g. a base
//!   dataset used by three mislabel variants) and makes in-process re-runs
//!   free;
//! * an optional on-disk layer ([`DiskStore`]) under a run directory —
//!   persists every artifact with a stable serial form (grid cells, dataset
//!   contexts, splits, cleaned matrices and trained models), so a *resumed
//!   or repeated* study skips all finished work, at task granularity.
//!
//! The disk layer is a real store, not a directory of loose files:
//!
//! * **atomic writes** — artifacts are written to a process-unique temp
//!   file and `rename`d into place, so a concurrent reader (a second
//!   process sharing `--cache-dir`) can never observe a torn entry;
//! * **an index file** (`index.v1`) — sizes and logical last-access times
//!   per entry, rebuilt from a directory scan when stale or missing (e.g.
//!   after a kill), flushed atomically itself;
//! * **size-capped LRU eviction** — with a byte budget configured
//!   (`--cache-max-bytes`), entries are touched on read and the
//!   oldest-accessed are deleted before a new write would exceed the cap,
//!   so the run directory stays bounded for arbitrarily long studies
//!   (per writing process: concurrent capped processes can combine to
//!   overshoot transiently, healed at the next open).
//!
//! Floats are serialized via their IEEE-754 bit patterns, so a warm run
//! reproduces byte-identical relations.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// 128-bit content address (two independent FNV-1a passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64, pub u64);

fn fnv1a(s: &str, mut h: u64, prime: u64) -> u64 {
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(prime);
    }
    h
}

impl CacheKey {
    /// Hashes a canonical task-input description.
    pub fn of(canonical: &str) -> CacheKey {
        CacheKey(
            fnv1a(canonical, 0xcbf2_9ce4_8422_2325, 0x100_0000_01b3),
            // second pass: different offset basis decorrelates the halves
            fnv1a(canonical, 0x6c62_272e_07bb_0142, 0x100_0000_01b3).rotate_left(1)
                ^ canonical.len() as u64,
        )
    }

    /// Parses the 32-hex-digit form produced by `Display` (artifact file
    /// stems). Non-ASCII input is rejected before slicing: a stray file
    /// with a multi-byte char straddling byte 16 must be a `None`, not a
    /// char-boundary panic during the directory scan.
    pub fn parse(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey(hi, lo))
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Serial form for artifacts that survive on disk. Artifacts that return
/// `None` from [`DiskCodec::encode`] live only in memory.
pub trait DiskCodec: Sized {
    fn encode(&self) -> Option<String>;
    fn decode(text: &str) -> Option<Self>;

    /// Whether a disk hit should also be inserted into the unbounded
    /// in-memory map. Heavy artifacts (tables, matrices, models) return
    /// `false`: they are prefilled into the demanding graph node and
    /// retired after their last consumer, instead of accumulating for the
    /// engine's lifetime.
    fn promote_to_memory(&self) -> bool {
        true
    }
}

/// Hit/miss counters, split by layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub memory_hits: usize,
    pub disk_hits: usize,
    pub misses: usize,
    pub disk_writes: usize,
    pub disk_evictions: usize,
}

impl CacheStats {
    pub fn hits(&self) -> usize {
        self.memory_hits + self.disk_hits
    }
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// Entry payload size in bytes.
    size: u64,
    /// Logical last-access time (monotonic per store, persisted).
    access: u64,
}

#[derive(Debug, Default)]
struct IndexState {
    entries: HashMap<CacheKey, IndexEntry>,
    /// Logical clock; strictly increases across loads, stores and touches.
    clock: u64,
    /// Mutations since the last flush.
    dirty: usize,
}

impl IndexState {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.size).sum()
    }

    fn touch(&mut self, key: CacheKey) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&key) {
            e.access = clock;
            self.dirty += 1;
        }
    }
}

/// Mutations accumulated before the index file is rewritten. Touches lost
/// in a crash only age LRU ordering; the entry list itself is rebuilt from
/// a directory scan on the next open.
const FLUSH_EVERY: usize = 32;

/// The persistent, thread-safe artifact layer: one directory of
/// content-addressed `<key>.art` files plus an `index.v1` sidecar.
///
/// Shared (via `Arc`) between the [`ArtifactCache`] front-end and the
/// worker pool, which persists artifacts the moment tasks finish so a
/// killed run loses nothing that completed.
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
    state: Mutex<IndexState>,
    writes: AtomicUsize,
    evictions: AtomicUsize,
    tmp_seq: AtomicUsize,
}

impl DiskStore {
    const INDEX: &'static str = "index.v1";
    const INDEX_MAGIC: &'static str = "cleanml-artifact-index v1";

    /// Opens (or creates) the store under `dir`. A stale or missing index
    /// — the normal state after a killed run — is reconciled against a
    /// directory scan: entries without a file are dropped, files without
    /// an entry are adopted with the oldest possible access time.
    pub fn open(dir: PathBuf, max_bytes: Option<u64>) -> Arc<DiskStore> {
        let _ = std::fs::create_dir_all(&dir);
        let mut state = Self::load_index(&dir.join(Self::INDEX)).unwrap_or_default();
        Self::reconcile(&dir, &mut state);
        let store = DiskStore {
            dir,
            max_bytes,
            state: Mutex::new(state),
            writes: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            tmp_seq: AtomicUsize::new(0),
        };
        // A fresh cap may be tighter than what a previous run left behind.
        store.enforce_cap_for(0);
        store.flush();
        Arc::new(store)
    }

    fn load_index(path: &Path) -> Option<IndexState> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        if lines.next()? != Self::INDEX_MAGIC {
            return None;
        }
        let clock: u64 = lines.next()?.strip_prefix("clock ")?.parse().ok()?;
        let mut entries = HashMap::new();
        for line in lines {
            let mut f = line.split_whitespace();
            let key = CacheKey::parse(f.next()?)?;
            let size: u64 = f.next()?.parse().ok()?;
            let access: u64 = f.next()?.parse().ok()?;
            entries.insert(key, IndexEntry { size, access });
        }
        Some(IndexState { entries, clock, dirty: 0 })
    }

    /// Brings the index in line with the files actually present.
    fn reconcile(dir: &Path, state: &mut IndexState) {
        let mut present: HashMap<CacheKey, u64> = HashMap::new();
        if let Ok(rd) = std::fs::read_dir(dir) {
            for entry in rd.flatten() {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(stem) = name.strip_suffix(".art") {
                    if let (Some(key), Ok(meta)) = (CacheKey::parse(stem), entry.metadata()) {
                        present.insert(key, meta.len());
                        continue;
                    }
                }
                // leftover temp file from a crashed writer
                if name.contains(".tmp-") {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        state.entries.retain(|k, _| present.contains_key(k));
        for (key, size) in present {
            // adopt unindexed files (written after the last index flush)
            // as least-recently-used, and trust the filesystem for sizes
            state.entries.entry(key).or_insert(IndexEntry { size, access: 0 }).size = size;
        }
        state.dirty += 1;
    }

    fn art_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{key}.art"))
    }

    /// Reads an entry, touching its LRU slot. A missing or unreadable file
    /// drops the index entry.
    pub fn load(&self, key: CacheKey) -> Option<String> {
        match std::fs::read_to_string(self.art_path(key)) {
            Ok(text) => {
                let mut state = self.state.lock().expect("index lock");
                state.touch(key);
                self.flush_if_due(state);
                Some(text)
            }
            Err(_) => {
                let mut state = self.state.lock().expect("index lock");
                state.entries.remove(&key);
                None
            }
        }
    }

    /// Persists `text` under `key` atomically (temp file + rename), evicting
    /// least-recently-used entries first when a byte cap is configured.
    /// Returns `true` when the entry was newly written; an existing entry is
    /// only touched. An entry larger than the whole cap is not stored.
    pub fn store(&self, key: CacheKey, text: &str) -> bool {
        let size = text.len() as u64;
        if self.max_bytes.is_some_and(|cap| size > cap) {
            return false;
        }
        // The index lock is deliberately held across the file write and
        // rename below: eviction must happen before the incoming bytes
        // touch disk, and no concurrent store may write between the two,
        // or the directory could transiently exceed the byte cap. This
        // serializes persistence, but task compute dominates wall-clock by
        // orders of magnitude, and the strict bound is the contract.
        let mut state = self.state.lock().expect("index lock");
        if state.entries.contains_key(&key) {
            state.touch(key);
            self.flush_if_due(state);
            return false;
        }
        self.evict_until_fits(&mut state, size);

        // Unique temp name per process *and* per write: two processes (or
        // threads) racing on the same key each rename a complete file.
        let tmp = self.dir.join(format!(
            "{key}.tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let ok =
            std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, self.art_path(key)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        state.clock += 1;
        let access = state.clock;
        state.entries.insert(key, IndexEntry { size, access });
        state.dirty += 1;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.flush_if_due(state);
        true
    }

    /// Deletes an entry (used when a decode reveals corruption).
    pub fn remove(&self, key: CacheKey) {
        let _ = std::fs::remove_file(self.art_path(key));
        let mut state = self.state.lock().expect("index lock");
        if state.entries.remove(&key).is_some() {
            state.dirty += 1;
        }
    }

    /// Evicts oldest-accessed entries until `incoming` more bytes fit under
    /// the cap. Ties (e.g. freshly adopted files) break by key, so two
    /// processes sharing the directory evict in the same order.
    fn evict_until_fits(&self, state: &mut IndexState, incoming: u64) {
        let Some(cap) = self.max_bytes else { return };
        let mut total = state.total_bytes();
        while total + incoming > cap && !state.entries.is_empty() {
            let victim = state
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.access, k.0, k.1))
                .map(|(k, e)| (*k, e.size))
                .expect("non-empty");
            let _ = std::fs::remove_file(self.art_path(victim.0));
            state.entries.remove(&victim.0);
            state.dirty += 1;
            total -= victim.1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn enforce_cap_for(&self, incoming: u64) {
        let mut state = self.state.lock().expect("index lock");
        self.evict_until_fits(&mut state, incoming);
    }

    fn flush_if_due(&self, state: std::sync::MutexGuard<'_, IndexState>) {
        if state.dirty >= FLUSH_EVERY {
            self.flush_locked(state);
        }
    }

    /// Atomically rewrites the index file.
    pub fn flush(&self) {
        let state = self.state.lock().expect("index lock");
        self.flush_locked(state);
    }

    fn flush_locked(&self, mut state: std::sync::MutexGuard<'_, IndexState>) {
        use std::fmt::Write as _;
        let mut text = format!("{}\nclock {}\n", Self::INDEX_MAGIC, state.clock);
        let mut keys: Vec<&CacheKey> = state.entries.keys().collect();
        keys.sort(); // deterministic file content
        for key in keys {
            let e = state.entries[key];
            let _ = writeln!(text, "{key} {} {}", e.size, e.access);
        }
        let tmp = self.dir.join(format!(
            "{}.tmp-{}-{}",
            Self::INDEX,
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, text).is_ok()
            && std::fs::rename(&tmp, self.dir.join(Self::INDEX)).is_ok()
        {
            state.dirty = 0;
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Bytes of artifact payload currently indexed.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().expect("index lock").total_bytes()
    }

    /// Number of entries currently indexed.
    pub fn len(&self) -> usize {
        self.state.lock().expect("index lock").entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries written since the last [`DiskStore::reset_counters`].
    pub fn writes(&self) -> usize {
        self.writes.load(Ordering::Relaxed)
    }

    /// Entries evicted by the byte cap since the last reset.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn reset_counters(&self) {
        self.writes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The two-layer cache.
pub struct ArtifactCache<A> {
    memory: HashMap<CacheKey, A>,
    disk: Option<Arc<DiskStore>>,
    pub stats: CacheStats,
}

impl<A: Clone + DiskCodec> ArtifactCache<A> {
    /// Creates a cache; `disk` enables an uncapped persistent layer under
    /// that directory.
    pub fn new(disk: Option<PathBuf>) -> Self {
        Self::with_store(disk.map(|d| DiskStore::open(d, None)))
    }

    /// Creates a cache over an existing (possibly shared, possibly
    /// size-capped) disk store.
    pub fn with_store(disk: Option<Arc<DiskStore>>) -> Self {
        ArtifactCache { memory: HashMap::new(), disk, stats: CacheStats::default() }
    }

    /// The persistent layer, if any.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.disk.as_ref()
    }

    /// Resets only the statistics (kept across runs otherwise).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        if let Some(store) = &self.disk {
            store.reset_counters();
        }
    }

    /// Number of artifacts resident in memory.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    /// Looks `key` up in memory, then on disk. A disk hit is promoted into
    /// memory when the artifact opts in (small artifacts only — see
    /// [`DiskCodec::promote_to_memory`]).
    pub fn get(&mut self, key: CacheKey) -> Option<A> {
        if let Some(a) = self.memory.get(&key) {
            self.stats.memory_hits += 1;
            return Some(a.clone());
        }
        if let Some(store) = &self.disk {
            if let Some(text) = store.load(key) {
                if let Some(a) = A::decode(&text) {
                    self.stats.disk_hits += 1;
                    if a.promote_to_memory() {
                        self.memory.insert(key, a.clone());
                    }
                    return Some(a);
                }
                // corrupt entry: drop it so the re-run overwrites
                store.remove(key);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores an artifact under its content address in both layers.
    pub fn put(&mut self, key: CacheKey, artifact: &A) {
        if let (Some(store), Some(text)) = (&self.disk, artifact.encode()) {
            if store.store(key, &text) {
                self.stats.disk_writes += 1;
            }
        }
        self.memory.insert(key, artifact.clone());
    }
}

/// Helpers for the IEEE-754 round-trip encoding used by [`DiskCodec`]
/// implementations.
pub fn f64_to_field(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

pub fn f64_from_field(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(f64);

    impl DiskCodec for Blob {
        fn encode(&self) -> Option<String> {
            Some(format!("blob {}", f64_to_field(self.0)))
        }
        fn decode(text: &str) -> Option<Self> {
            let rest = text.strip_prefix("blob ")?;
            f64_from_field(rest.trim()).map(Blob)
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cleanml-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(CacheKey::of("train/EEG/3"), CacheKey::of("train/EEG/3"));
        assert_ne!(CacheKey::of("train/EEG/3"), CacheKey::of("train/EEG/4"));
        assert_ne!(CacheKey::of("a"), CacheKey::of("b"));
        assert_eq!(format!("{}", CacheKey(1, 2)).len(), 32);
        let k = CacheKey::of("round-trip");
        assert_eq!(CacheKey::parse(&k.to_string()), Some(k));
        assert_eq!(CacheKey::parse("xyz"), None);
    }

    #[test]
    fn memory_layer_round_trips() {
        let mut c: ArtifactCache<Blob> = ArtifactCache::new(None);
        let k = CacheKey::of("x");
        assert!(c.get(k).is_none());
        c.put(k, &Blob(0.5));
        assert_eq!(c.get(k), Some(Blob(0.5)));
        assert_eq!(c.stats.memory_hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.disk_writes, 0);
    }

    #[test]
    fn disk_layer_survives_a_fresh_cache() {
        let dir = temp_dir("fresh");
        let k = CacheKey::of("persisted");
        {
            let mut c: ArtifactCache<Blob> = ArtifactCache::new(Some(dir.clone()));
            c.put(k, &Blob(std::f64::consts::PI));
            assert_eq!(c.stats.disk_writes, 1);
        }
        let mut fresh: ArtifactCache<Blob> = ArtifactCache::new(Some(dir.clone()));
        assert_eq!(fresh.get(k), Some(Blob(std::f64::consts::PI)));
        assert_eq!(fresh.stats.disk_hits, 1);
        // corrupt entries are discarded, not trusted
        std::fs::write(dir.join(format!("{}.art", CacheKey::of("bad"))), "garbage").unwrap();
        assert!(fresh.get(CacheKey::of("bad")).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_are_atomic_via_rename() {
        let dir = temp_dir("atomic");
        let store = DiskStore::open(dir.clone(), None);
        store.store(CacheKey::of("a"), "payload");
        // no temp residue after a completed write
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_rebuilds_after_stale_or_missing_file() {
        let dir = temp_dir("rebuild");
        let (ka, kb) = (CacheKey::of("a"), CacheKey::of("b"));
        {
            let store = DiskStore::open(dir.clone(), None);
            store.store(ka, "aaaa");
            store.store(kb, "bbbbbb");
        } // drop flushes the index
          // simulate a kill after more writes than index flushes: an
          // unindexed file appears, an indexed one disappears
        std::fs::remove_file(dir.join(format!("{kb}.art"))).unwrap();
        let kc = CacheKey::of("c");
        std::fs::write(dir.join(format!("{kc}.art")), "cc").unwrap();
        std::fs::write(dir.join(format!("{kc}.tmp-999-0")), "torn").unwrap();

        let store = DiskStore::open(dir.clone(), None);
        assert_eq!(store.len(), 2, "a kept, b dropped, c adopted");
        assert_eq!(store.total_bytes(), 4 + 2);
        assert!(store.load(kb).is_none());
        assert_eq!(store.load(kc).as_deref(), Some("cc"));
        assert!(!dir.join(format!("{kc}.tmp-999-0")).exists(), "temp residue cleaned");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_cap_and_touch_on_read() {
        let dir = temp_dir("lru");
        let store = DiskStore::open(dir.clone(), Some(10));
        let (ka, kb, kc) = (CacheKey::of("a"), CacheKey::of("b"), CacheKey::of("c"));
        assert!(store.store(ka, "aaaa")); // 4 bytes
        assert!(store.store(kb, "bbbb")); // 8 bytes total
                                          // touching `a` makes `b` the LRU entry
        assert_eq!(store.load(ka).as_deref(), Some("aaaa"));
        assert!(store.store(kc, "cccc")); // would be 12 > 10: evicts b
        assert_eq!(store.evictions(), 1);
        assert!(store.total_bytes() <= 10);
        assert!(store.load(kb).is_none(), "LRU entry evicted");
        assert_eq!(store.load(ka).as_deref(), Some("aaaa"), "recently read survives");
        assert_eq!(store.load(kc).as_deref(), Some("cccc"));
        // an entry larger than the whole cap is refused outright
        assert!(!store.store(CacheKey::of("huge"), &"x".repeat(64)));
        assert!(store.total_bytes() <= 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_with_tighter_cap_shrinks_directory() {
        let dir = temp_dir("shrink");
        {
            let store = DiskStore::open(dir.clone(), None);
            for i in 0..8 {
                store.store(CacheKey::of(&format!("k{i}")), &"y".repeat(8));
            }
            assert_eq!(store.total_bytes(), 64);
        }
        let store = DiskStore::open(dir.clone(), Some(24));
        assert!(store.total_bytes() <= 24);
        assert!(store.len() <= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_is_idempotent_per_key() {
        let dir = temp_dir("idem");
        let store = DiskStore::open(dir.clone(), None);
        let k = CacheKey::of("once");
        assert!(store.store(k, "v"));
        assert!(!store.store(k, "v"), "second write is a touch, not a write");
        assert_eq!(store.writes(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_fields_round_trip_exactly() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, std::f64::consts::E, -1e300] {
            assert_eq!(f64_from_field(&f64_to_field(x)), Some(x));
        }
    }
}
