//! The HTTP results gateway end to end against a live engine:
//!
//! * `POST /studies` submits a spec through the resident core and
//!   returns an id; polling `GET /studies/:id` reaches `done`;
//! * `GET /studies/:id/r1` pages out rows **byte-identical** to the
//!   corresponding `CleanMlDb::r1_csv` slices — whole-relation pulls,
//!   limit/offset reassembly, and filtered/ordered selections all agree
//!   with the typed [`Select`] applied to the serial reference run;
//! * bearer auth refuses missing and wrong tokens on every `/studies`
//!   route with 401 before anything touches the registry, while
//!   `/metrics` stays open;
//! * unknown ids 404, bad query strings 400, and the per-route
//!   telemetry counters account for all of it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use cleanml_core::database::{csv_line, relation_columns};
use cleanml_core::schema::ErrorType;
use cleanml_core::{run_study, ExperimentConfig, Relation};
use cleanml_engine::{parse_query, Engine, EngineConfig, Select};

const TOKEN: &str = "integration-s3cret";

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { n_splits: 2, parallel: false, ..ExperimentConfig::quick() }
}

fn gateway_engine(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        listen: Some("127.0.0.1:0".into()),
        http_token: Some(TOKEN.into()),
        ..Default::default()
    })
}

/// One bounded HTTP exchange: request out, full response (head + body)
/// back as a string.
fn exchange(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to hub");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    stream.flush().expect("flush");
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn get(addr: SocketAddr, path: &str, token: Option<&str>) -> String {
    let auth = match token {
        Some(t) => format!("Authorization: Bearer {t}\r\n"),
        None => String::new(),
    };
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: cleanml\r\n{auth}Connection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, token: Option<&str>, body: &str) -> String {
    let auth = match token {
        Some(t) => format!("Authorization: Bearer {t}\r\n"),
        None => String::new(),
    };
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: cleanml\r\n{auth}\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Splits an HTTP/1.1 response into owned (status line, body).
fn split_response(response: &str) -> (String, String) {
    let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

/// Pulls `"key":<digits>` out of a flat JSON body without a parser.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("{key} missing in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} not a number in {body}"))
}

#[test]
fn gateway_submits_polls_and_pages_rows_byte_identical_to_csv() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let serial = run_study(&ets, &cfg).expect("serial reference study");

    let engine = gateway_engine(2);
    let addr = engine.remote_addr().expect("hub bound");

    // -- auth: refused before the registry sees anything ---------------
    for response in [
        get(addr, "/studies", None),
        get(addr, "/studies", Some("wrong-token")),
        get(addr, "/studies/1/r1", None),
        post(addr, "/studies", None, "errors=inconsistencies"),
    ] {
        let (status, body) = split_response(&response);
        assert!(status.starts_with("HTTP/1.1 401"), "{status}: {body}");
        assert!(response.contains("WWW-Authenticate: Bearer"), "{response}");
    }
    // /metrics stays open — no token required.
    let (status, _) = split_response(&get(addr, "/metrics", None));
    assert!(status.starts_with("HTTP/1.1 200"), "open /metrics: {status}");

    // -- submit --------------------------------------------------------
    // The spec mirrors tiny_cfg: quick profile pinned to 2 splits.
    let response =
        post(addr, "/studies", Some(TOKEN), "errors=inconsistencies&profile=quick&splits=2");
    let (status, body) = split_response(&response);
    assert!(status.starts_with("HTTP/1.1 201"), "submit: {status}: {body}");
    let id = json_u64(&body, "id");
    assert!(id >= 1, "ids are monotonic from 1: {body}");

    // Malformed specs fail closed with 400.
    let (status, _) = split_response(&post(addr, "/studies", Some(TOKEN), "errors=bogus"));
    assert!(status.starts_with("HTTP/1.1 400"), "bad error type: {status}");
    let (status, _) = split_response(&post(addr, "/studies", Some(TOKEN), "profile=quick"));
    assert!(status.starts_with("HTTP/1.1 400"), "missing errors: {status}");

    // -- poll to done --------------------------------------------------
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let response = get(addr, &format!("/studies/{id}"), Some(TOKEN));
        let (status, body) = split_response(&response);
        assert!(status.starts_with("HTTP/1.1 200"), "status poll: {status}: {body}");
        if body.contains("\"state\":\"done\"") {
            let done = json_u64(&body, "done");
            let to_run = json_u64(&body, "to_run");
            assert_eq!(done, to_run, "finished study must report full progress: {body}");
            break;
        }
        assert!(!body.contains("\"state\":\"failed\""), "study failed: {body}");
        assert!(Instant::now() < deadline, "study did not finish in time");
        std::thread::sleep(Duration::from_millis(100));
    }

    // The submission also shows up in the list route.
    let (status, body) = split_response(&get(addr, "/studies", Some(TOKEN)));
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(body.contains(&format!("\"id\":{id}")), "list misses study {id}: {body}");

    // -- whole-relation pulls are byte-identical to the CSVs -----------
    let expected = [serial.r1_csv(), serial.r2_csv(), serial.r3_csv()];
    for (table, want) in ["r1", "r2", "r3"].iter().zip(&expected) {
        let response = get(addr, &format!("/studies/{id}/{table}"), Some(TOKEN));
        let (status, body) = split_response(&response);
        assert!(status.starts_with("HTTP/1.1 200"), "{table}: {status}");
        assert!(response.contains("text/csv"), "bare rows default to CSV: {response}");
        assert_eq!(&body, want, "{table} must match the serial CSV byte-for-byte");
    }

    // -- limit/offset paging reassembles the exact CSV -----------------
    let full = serial.r1_csv();
    let rows: Vec<&str> = full.lines().skip(1).collect();
    assert!(rows.len() >= 4, "quick study too small to page: {} rows", rows.len());
    let half = rows.len() / 2;
    let page1 = get(addr, &format!("/studies/{id}/r1.csv?limit={half}"), Some(TOKEN));
    let page2 = get(addr, &format!("/studies/{id}/r1.csv?limit=10000&offset={half}"), Some(TOKEN));
    let (_, body1) = split_response(&page1);
    let (_, body2) = split_response(&page2);
    // Every page carries the header; drop it from the second page.
    let tail = body2.split_once('\n').expect("page 2 has a header").1;
    assert_eq!(format!("{body1}{tail}"), full, "paged slices must reassemble the CSV");

    // -- filtered + ordered selection matches the typed Select ---------
    let query = "model=logistic_regression&order=p_two&limit=10&offset=2";
    let values = serial.relation_values(Relation::R1);
    let select = Select::from_pairs(Relation::R1, &parse_query(query).unwrap()).unwrap();
    let (page, _) = select.apply(&values);
    let (columns, _) = relation_columns(Relation::R1);
    let mut want = columns.join(",");
    want.push('\n');
    for row in &page {
        want.push_str(&csv_line(row));
    }
    let response = get(addr, &format!("/studies/{id}/r1.csv?{query}"), Some(TOKEN));
    let (status, body) = split_response(&response);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_eq!(body, want, "filtered page must equal Select over the serial rows");

    // The JSON rendering of the same selection reports the page shape
    // and carries one object per row.
    let response = get(addr, &format!("/studies/{id}/r1.json?{query}"), Some(TOKEN));
    let (status, body) = split_response(&response);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_eq!(json_u64(&body, "offset"), 2, "{body}");
    assert_eq!(body.matches("\"dataset\":").count(), page.len(), "{body}");

    // -- failure modes -------------------------------------------------
    let (status, _) = split_response(&get(addr, "/studies/9999/r1", Some(TOKEN)));
    assert!(status.starts_with("HTTP/1.1 404"), "unknown id: {status}");
    let (status, _) = split_response(&get(addr, "/studies/9999", Some(TOKEN)));
    assert!(status.starts_with("HTTP/1.1 404"), "unknown id status: {status}");
    let response = get(addr, &format!("/studies/{id}/r1?bogus=1"), Some(TOKEN));
    let (status, _) = split_response(&response);
    assert!(status.starts_with("HTTP/1.1 400"), "unknown filter column: {status}");
    let response = get(addr, &format!("/studies/{id}/r1?limit=999999"), Some(TOKEN));
    let (status, _) = split_response(&response);
    assert!(status.starts_with("HTTP/1.1 400"), "limit beyond cap: {status}");
    let (status, _) = split_response(&get(addr, "/studies?x=1", Some(TOKEN)));
    assert!(status.starts_with("HTTP/1.1 400"), "list takes no query: {status}");

    // -- the route counters saw all of it ------------------------------
    let scrape = get(addr, "/metrics", None);
    for family in [
        "cleanml_http_route_requests_total{route=\"submit\"}",
        "cleanml_http_route_requests_total{route=\"status\"}",
        "cleanml_http_route_requests_total{route=\"rows\"}",
        "cleanml_http_route_requests_total{route=\"studies\"}",
        "cleanml_http_unauthorized_total",
    ] {
        let line = scrape
            .lines()
            .find(|l| l.starts_with(family))
            .unwrap_or_else(|| panic!("{family} missing:\n{scrape}"));
        let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value > 0, "{family} never incremented:\n{scrape}");
    }
}
