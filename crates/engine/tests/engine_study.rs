//! End-to-end engine guarantees: determinism across worker counts,
//! equivalence with the serial runner, and warm-cache resumption that
//! re-trains nothing.

use std::path::PathBuf;
use std::sync::mpsc;

use cleanml_core::schema::ErrorType;
use cleanml_core::{run_study, CleanMlDb, ExperimentConfig};
use cleanml_engine::{CellQuery, Engine, EngineConfig, EngineEvent, TaskKind};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { n_splits: 2, parallel: false, ..ExperimentConfig::quick() }
}

fn assert_identical(a: &CleanMlDb, b: &CleanMlDb, what: &str) {
    assert_eq!(a.r1, b.r1, "{what}: R1 differs");
    assert_eq!(a.r2, b.r2, "{what}: R2 differs");
    assert_eq!(a.r3, b.r3, "{what}: R3 differs");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cleanml-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn one_and_eight_workers_match_the_serial_path() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];

    let serial = run_study(&ets, &cfg).expect("serial study");

    let mut one = Engine::new(EngineConfig { workers: 1, cache_dir: None, ..Default::default() });
    let (db_one, report_one) = one.run_study_with_report(&ets, &cfg).expect("1-worker study");

    let mut eight = Engine::new(EngineConfig { workers: 8, cache_dir: None, ..Default::default() });
    let (db_eight, report_eight) = eight.run_study_with_report(&ets, &cfg).expect("8-worker study");

    assert_identical(&serial, &db_one, "serial vs 1 worker");
    assert_identical(&db_one, &db_eight, "1 worker vs 8 workers");

    // Both engine runs executed the same DAG from a cold cache.
    assert_eq!(report_one.total, report_eight.total);
    assert_eq!(report_one.executed_total(), report_eight.executed_total());
    assert!(report_one.executed(TaskKind::Train) > 0, "cold run must train");
    assert_eq!(report_one.workers, 1);
    assert_eq!(report_eight.workers, 8);
}

#[test]
fn warm_disk_cache_resumes_with_zero_training() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let dir = temp_dir("warm");

    // Cold run: populates the run directory.
    let mut cold = Engine::new(EngineConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_cold, report_cold) = cold.run_study_with_report(&ets, &cfg).expect("cold study");
    assert!(report_cold.executed(TaskKind::Train) > 0);
    assert!(cold.cache_stats().disk_writes > 0, "cells and contexts must persist");

    // Warm run in a *fresh* engine (new process semantics): every cell and
    // context is served from disk; no dataset is regenerated, no model is
    // trained, no cell is re-evaluated — only the grid reduction runs.
    let mut warm = Engine::new(EngineConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_warm, report_warm) = warm.run_study_with_report(&ets, &cfg).expect("warm study");
    assert_identical(&db_cold, &db_warm, "cold vs warm");

    assert_eq!(report_warm.executed(TaskKind::Train), 0, "warm run re-trained");
    assert_eq!(report_warm.executed(TaskKind::Evaluate), 0);
    assert_eq!(report_warm.executed(TaskKind::GenerateDataset), 0);
    assert_eq!(report_warm.executed(TaskKind::Split), 0);
    assert_eq!(report_warm.executed(TaskKind::Clean), 0);
    // Everything demanded besides the reduce sinks came from the cache:
    // 100% hits over the non-reduce frontier.
    let grids = report_warm.executed(TaskKind::Reduce);
    assert!(grids > 0);
    assert_eq!(report_warm.executed_total(), grids);
    assert_eq!(
        report_warm.cache_hits + report_warm.pruned + grids,
        report_warm.total,
        "every non-reduce task was a cache hit or pruned"
    );
    assert!(warm.cache_stats().disk_hits > 0);

    // Third run on the same engine: the in-memory layer now holds the
    // grids themselves, so *nothing* executes at all.
    let (db_mem, report_mem) = warm.run_study_with_report(&ets, &cfg).expect("memory study");
    assert_identical(&db_cold, &db_mem, "cold vs in-memory");
    assert_eq!(report_mem.executed_total(), 0, "in-memory rerun ran tasks");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_and_singleton_evaluate_agree_cell_for_cell() {
    let cfg = tiny_cfg();
    let et = ErrorType::Inconsistencies;

    // Full study: every Evaluate runs fused — one batch per
    // (split, cleaning method) carrying all models.
    let mut full = Engine::new(EngineConfig { workers: 2, cache_dir: None, ..Default::default() });
    let (db_full, _) = full.run_study_with_report(&[et], &cfg).expect("full study");

    // The same cell through a cold 1×1 query on a fresh engine: subset
    // grids keep the singleton Evaluate path, so this exercises the
    // other codepath end to end (no shared cache to hide behind).
    let query = CellQuery {
        error_type: et,
        dataset: "University".into(),
        detection: "OpenRefine".into(),
        repair: "Merge".into(),
        model: "Logistic Regression".into(),
    };
    let single = Engine::new(EngineConfig { workers: 2, cache_dir: None, ..Default::default() });
    let sub = single.submit_query(&query, &cfg).expect("known cell");
    let (db_cell, report) = sub.wait().expect("query run");
    assert!(
        report.executed(TaskKind::Evaluate) > 0,
        "a cold query must execute singleton Evaluates"
    );

    // Cell-granular rows (R1) must agree on the raw evidence. Flags are
    // excluded on purpose: BY correction runs over each database's own
    // row family, which legitimately differs between a 1×1 query and the
    // full study.
    assert!(!db_cell.r1.is_empty());
    for row in &db_cell.r1 {
        let matched = db_full
            .r1
            .iter()
            .find(|r| {
                r.dataset == row.dataset
                    && r.detection == row.detection
                    && r.repair == row.repair
                    && r.model == row.model
                    && r.scenario == row.scenario
            })
            .expect("full study contains the queried cell");
        assert_eq!(
            matched.evidence, row.evidence,
            "batched and singleton Evaluate disagree on {:?} scenario {:?}",
            row.model, row.scenario
        );
    }
}

/// Sum of artifact payload bytes currently in a run directory.
fn art_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    // artifact payloads and their in-flight temp files; the
                    // index sidecar is bookkeeping, not cached payload
                    !name.starts_with("index.v2")
                        && (name.ends_with(".art") || name.contains(".tmp-"))
                })
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// The acceptance scenario: a study killed mid-run (simulated by the exact
/// disk state such a kill leaves — finished Clean/Train artifacts present,
/// unfinished cells absent, index stale) resumes with *zero* retraining and
/// reproduces the uninterrupted run's relations bit for bit.
#[test]
fn killed_run_resumes_without_retraining() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let dir = temp_dir("killed");

    let serial = run_study(&ets, &cfg).expect("serial study");

    let mut cold = Engine::new(EngineConfig {
        workers: 4,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_cold, report_cold) = cold.run_study_with_report(&ets, &cfg).expect("cold study");
    assert_identical(&serial, &db_cold, "serial vs cold");
    assert!(report_cold.executed(TaskKind::Train) > 0);
    drop(cold);

    // Simulate the kill: every Evaluate artifact vanishes (those tasks had
    // not finished), and the index file is stale (never flushed after the
    // final writes) — the store must rebuild it from the directory scan.
    // Evaluate batches and their fanned-out singleton cells are recognized
    // by their payload dispatch tags inside the frame.
    let mut dropped_batches = 0usize;
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "art") {
            let bytes = std::fs::read(&path).unwrap();
            let payload = cleanml_dataset::codec::open_frame(&bytes).expect("stored frame valid");
            match payload.first() {
                Some(&b'B') => {
                    std::fs::remove_file(&path).unwrap();
                    dropped_batches += 1;
                }
                Some(&b'C') => std::fs::remove_file(&path).unwrap(),
                _ => {}
            }
        }
    }
    assert!(dropped_batches > 0, "study must have persisted evaluate batches");
    let _ = std::fs::remove_file(dir.join("index.v2"));

    let mut resumed = Engine::new(EngineConfig {
        workers: 4,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_resumed, report) = resumed.run_study_with_report(&ets, &cfg).expect("resumed study");

    // The acceptance criterion: zero (dataset, error, model, split) cells
    // are retrained — models, cleaned matrices and splits all come back
    // from the artifact store; only the lost evaluations and the grid
    // reductions execute.
    assert_eq!(report.executed(TaskKind::Train), 0, "resume retrained a model");
    assert_eq!(report.executed(TaskKind::Clean), 0, "resume re-cleaned");
    assert_eq!(report.executed(TaskKind::Split), 0, "resume re-split");
    assert_eq!(report.executed(TaskKind::GenerateDataset), 0, "resume regenerated data");
    assert_eq!(report.executed(TaskKind::Evaluate), dropped_batches, "exactly the lost batches");
    assert!(report.executed(TaskKind::Reduce) > 0);

    // Relations are bit-identical to the uninterrupted serial run, so the
    // CSVs rendered from them are byte-identical.
    assert_identical(&serial, &db_resumed, "serial vs resumed");

    let _ = std::fs::remove_dir_all(&dir);
}

/// With `cache_max_bytes` set, the run completes correctly and the run
/// directory (artifacts + temp files) never exceeds the cap — checked
/// continuously from the event stream while workers are writing.
#[test]
fn byte_capped_cache_stays_bounded() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let dir = temp_dir("capped");
    let cap: u64 = 48 * 1024;

    let (tx, rx) = mpsc::channel();
    let watch_dir = dir.clone();
    let watcher = std::thread::spawn(move || {
        let mut max_seen = 0u64;
        for event in rx {
            if let EngineEvent::TaskFinished { .. } = event {
                max_seen = max_seen.max(art_bytes(&watch_dir));
            }
        }
        max_seen
    });

    let mut engine = Engine::new(EngineConfig {
        workers: 4,
        cache_dir: Some(dir.clone()),
        cache_max_bytes: Some(cap),
        ..Default::default()
    })
    .with_events(tx);
    let db = engine.run_study(&ets, &cfg).expect("capped study");
    let stats = engine.cache_stats();
    assert!(stats.disk_evictions > 0, "cap must actually bite: {stats:?}");
    assert!(engine.disk_store().unwrap().total_bytes() <= cap);
    drop(engine);
    let max_seen = watcher.join().expect("watcher");
    assert!(max_seen <= cap, "run directory exceeded the cap: {max_seen} > {cap}");
    assert!(art_bytes(&dir) <= cap);

    // and the capped run still produces the exact study result
    let serial = run_study(&ets, &cfg).expect("serial study");
    assert_identical(&serial, &db, "serial vs capped");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Two engines sharing one cache directory concurrently (two-process
/// semantics): atomic writes mean neither can observe a torn artifact, and
/// both produce the exact study relations.
#[test]
fn concurrent_engines_share_a_cache_dir_safely() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let dir = temp_dir("shared");

    let run = |dir: std::path::PathBuf| {
        std::thread::spawn(move || {
            let mut engine = Engine::new(EngineConfig {
                workers: 2,
                cache_dir: Some(dir),
                ..Default::default()
            });
            engine.run_study(&[ErrorType::Inconsistencies], &cfg).expect("shared-dir study")
        })
    };
    let (a, b) = (run(dir.clone()), run(dir.clone()));
    let db_a = a.join().expect("engine a");
    let db_b = b.join().expect("engine b");

    let serial = run_study(&ets, &cfg).expect("serial study");
    assert_identical(&serial, &db_a, "serial vs engine a");
    assert_identical(&serial, &db_b, "serial vs engine b");

    // the directory is left fully warm: a third engine re-trains nothing
    let mut warm = Engine::new(EngineConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_warm, report) = warm.run_study_with_report(&ets, &cfg).expect("warm study");
    assert_identical(&serial, &db_warm, "serial vs warm");
    assert_eq!(report.executed_total(), report.executed(TaskKind::Reduce));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm store whose entries have been corrupted (bit flips, truncations)
/// or replaced by hex-text-era files degrades to cache misses: the study
/// re-runs the affected tasks, produces bit-identical relations, and GCs
/// every bad entry — no panic, no hang, no mangled artifact.
#[test]
fn corrupt_and_legacy_store_entries_degrade_to_misses() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let dir = temp_dir("corrupt");

    let mut cold = Engine::new(EngineConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_cold, _) = cold.run_study_with_report(&ets, &cfg).expect("cold study");
    drop(cold);

    // Vandalize the store: rotate through a bit flip mid-payload, a
    // truncation, and a hex-text-era replacement. Fanned-out singleton
    // cells (payload tag 'C') are skipped: a full-study graph only demands
    // the fused batches, so an unread singleton copy would survive the
    // resume unrepaired by design.
    let mut vandalized = 0usize;
    for (i, entry) in std::fs::read_dir(&dir).unwrap().flatten().enumerate() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "art") {
            continue;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        if cleanml_dataset::codec::open_frame(&bytes)
            .is_some_and(|payload| payload.first() == Some(&b'C'))
        {
            continue;
        }
        match i % 3 {
            0 => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x10;
                std::fs::write(&path, &bytes).unwrap();
            }
            1 => {
                bytes.truncate(bytes.len() / 2);
                std::fs::write(&path, &bytes).unwrap();
            }
            _ => {
                std::fs::write(&path, "trained v1 3fe0000000000000 const 0 2").unwrap();
            }
        }
        vandalized += 1;
    }
    assert!(vandalized > 0, "cold run must have persisted artifacts");

    let mut resumed = Engine::new(EngineConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_resumed, report) = resumed.run_study_with_report(&ets, &cfg).expect("resumed study");
    assert_identical(&db_cold, &db_resumed, "cold vs corrupt-store resume");
    assert!(report.executed_total() > 0, "corrupt entries must re-run, not serve");

    // Every surviving entry is once again a valid frame.
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "art") {
            let bytes = std::fs::read(&path).unwrap();
            assert!(
                cleanml_dataset::codec::open_frame(&bytes).is_some(),
                "store left with an invalid frame: {}",
                path.display()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_events_cover_the_run() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let (tx, rx) = mpsc::channel();
    let mut engine =
        Engine::new(EngineConfig { workers: 2, cache_dir: None, ..Default::default() })
            .with_events(tx);
    let (_, report) = engine.run_study_with_report(&ets, &cfg).expect("study");

    let events: Vec<EngineEvent> = rx.try_iter().collect();
    let mut saw_graph = false;
    let mut started = 0usize;
    let mut finished = 0usize;
    let mut run_finished = false;
    for e in &events {
        match e {
            EngineEvent::GraphReady { total, to_run, .. } => {
                saw_graph = true;
                assert_eq!(*total, report.total);
                assert_eq!(*to_run, report.executed_total());
            }
            EngineEvent::TaskStarted { .. } => started += 1,
            EngineEvent::TaskFinished { ok, .. } => {
                assert!(ok);
                finished += 1;
            }
            EngineEvent::RunFinished => run_finished = true,
            other => panic!("local-only run emitted a remote event: {other:?}"),
        }
    }
    assert!(saw_graph, "GraphReady not emitted");
    assert!(run_finished, "RunFinished not emitted");
    assert_eq!(finished, report.executed_total());
    assert_eq!(started, finished);
}
