//! End-to-end engine guarantees: determinism across worker counts,
//! equivalence with the serial runner, and warm-cache resumption that
//! re-trains nothing.

use std::path::PathBuf;
use std::sync::mpsc;

use cleanml_core::schema::ErrorType;
use cleanml_core::{run_study, CleanMlDb, ExperimentConfig};
use cleanml_engine::{Engine, EngineConfig, EngineEvent, TaskKind};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { n_splits: 2, parallel: false, ..ExperimentConfig::quick() }
}

fn assert_identical(a: &CleanMlDb, b: &CleanMlDb, what: &str) {
    assert_eq!(a.r1, b.r1, "{what}: R1 differs");
    assert_eq!(a.r2, b.r2, "{what}: R2 differs");
    assert_eq!(a.r3, b.r3, "{what}: R3 differs");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cleanml-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn one_and_eight_workers_match_the_serial_path() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];

    let serial = run_study(&ets, &cfg).expect("serial study");

    let mut one = Engine::new(EngineConfig { workers: 1, cache_dir: None });
    let (db_one, report_one) = one.run_study_with_report(&ets, &cfg).expect("1-worker study");

    let mut eight = Engine::new(EngineConfig { workers: 8, cache_dir: None });
    let (db_eight, report_eight) = eight.run_study_with_report(&ets, &cfg).expect("8-worker study");

    assert_identical(&serial, &db_one, "serial vs 1 worker");
    assert_identical(&db_one, &db_eight, "1 worker vs 8 workers");

    // Both engine runs executed the same DAG from a cold cache.
    assert_eq!(report_one.total, report_eight.total);
    assert_eq!(report_one.executed_total(), report_eight.executed_total());
    assert!(report_one.executed(TaskKind::Train) > 0, "cold run must train");
    assert_eq!(report_one.workers, 1);
    assert_eq!(report_eight.workers, 8);
}

#[test]
fn warm_disk_cache_resumes_with_zero_training() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let dir = temp_dir("warm");

    // Cold run: populates the run directory.
    let mut cold = Engine::new(EngineConfig { workers: 2, cache_dir: Some(dir.clone()) });
    let (db_cold, report_cold) = cold.run_study_with_report(&ets, &cfg).expect("cold study");
    assert!(report_cold.executed(TaskKind::Train) > 0);
    assert!(cold.cache_stats().disk_writes > 0, "cells and contexts must persist");

    // Warm run in a *fresh* engine (new process semantics): every cell and
    // context is served from disk; no dataset is regenerated, no model is
    // trained, no cell is re-evaluated — only the grid reduction runs.
    let mut warm = Engine::new(EngineConfig { workers: 2, cache_dir: Some(dir.clone()) });
    let (db_warm, report_warm) = warm.run_study_with_report(&ets, &cfg).expect("warm study");
    assert_identical(&db_cold, &db_warm, "cold vs warm");

    assert_eq!(report_warm.executed(TaskKind::Train), 0, "warm run re-trained");
    assert_eq!(report_warm.executed(TaskKind::Evaluate), 0);
    assert_eq!(report_warm.executed(TaskKind::GenerateDataset), 0);
    assert_eq!(report_warm.executed(TaskKind::Split), 0);
    assert_eq!(report_warm.executed(TaskKind::Clean), 0);
    // Everything demanded besides the reduce sinks came from the cache:
    // 100% hits over the non-reduce frontier.
    let grids = report_warm.executed(TaskKind::Reduce);
    assert!(grids > 0);
    assert_eq!(report_warm.executed_total(), grids);
    assert_eq!(
        report_warm.cache_hits + report_warm.pruned + grids,
        report_warm.total,
        "every non-reduce task was a cache hit or pruned"
    );
    assert!(warm.cache_stats().disk_hits > 0);

    // Third run on the same engine: the in-memory layer now holds the
    // grids themselves, so *nothing* executes at all.
    let (db_mem, report_mem) = warm.run_study_with_report(&ets, &cfg).expect("memory study");
    assert_identical(&db_cold, &db_mem, "cold vs in-memory");
    assert_eq!(report_mem.executed_total(), 0, "in-memory rerun ran tasks");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_events_cover_the_run() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let (tx, rx) = mpsc::channel();
    let mut engine = Engine::new(EngineConfig { workers: 2, cache_dir: None }).with_events(tx);
    let (_, report) = engine.run_study_with_report(&ets, &cfg).expect("study");

    let events: Vec<EngineEvent> = rx.try_iter().collect();
    let mut saw_graph = false;
    let mut started = 0usize;
    let mut finished = 0usize;
    let mut run_finished = false;
    for e in &events {
        match e {
            EngineEvent::GraphReady { total, to_run, .. } => {
                saw_graph = true;
                assert_eq!(*total, report.total);
                assert_eq!(*to_run, report.executed_total());
            }
            EngineEvent::TaskStarted { .. } => started += 1,
            EngineEvent::TaskFinished { ok, .. } => {
                assert!(ok);
                finished += 1;
            }
            EngineEvent::RunFinished => run_finished = true,
        }
    }
    assert!(saw_graph, "GraphReady not emitted");
    assert!(run_finished, "RunFinished not emitted");
    assert_eq!(finished, report.executed_total());
    assert_eq!(started, finished);
}
