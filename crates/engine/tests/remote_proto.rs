//! Adversarial property tests for the remote-protocol codec: every message
//! round-trips exactly; bit flips, truncations and oversized length tokens
//! fail closed as decode errors — never a panic, and (because the
//! coordinator only stores a `Done` payload after it decodes to a whole
//! artifact) never a partial artifact anywhere near the store.

use proptest::prelude::*;

use cleanml_cleaning::ErrorType;
use cleanml_core::ExperimentConfig;
use cleanml_engine::remote::proto::{recv, send};
use cleanml_engine::remote::{Message, StudySpec, MAX_MESSAGE_BYTES, PROTOCOL_VERSION};
use cleanml_engine::{CacheKey, TaskKind};

fn arb_key() -> impl Strategy<Value = CacheKey> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| CacheKey(a, b))
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

fn arb_kind() -> impl Strategy<Value = TaskKind> {
    (0usize..TaskKind::ALL.len()).prop_map(|i| TaskKind::ALL[i])
}

/// Every protocol message variant, with adversarially interesting field
/// content (empty strings, empty payloads, max ids).
fn arb_message() -> impl Strategy<Value = Message> {
    ((0usize..11, any::<u64>()), (arb_key(), arb_payload()), ("[a-z0-9 ]{0,12}", arb_kind()))
        .prop_map(|((variant, id), (key, payload), (text, kind))| match variant {
            0 => Message::Hello { version: id as u16, name: text },
            1 => Message::Welcome { spec: payload },
            2 => Message::Reject { reason: text },
            3 => Message::Lease { id, key, kind, deadline_ms: id.rotate_left(7) },
            4 => Message::Fetch { key },
            5 => Message::Artifact { key, payload },
            6 => Message::NoArtifact { key },
            7 => Message::Done { id, payload },
            8 => Message::Failed { id, error: text },
            9 => Message::Heartbeat,
            _ => Message::Bye,
        })
}

proptest! {
    /// Payload codec and framed transport both round-trip every variant.
    #[test]
    fn messages_round_trip(msg in arb_message()) {
        let bytes = msg.encode();
        let decoded = Message::decode(&bytes);
        prop_assert_eq!(decoded.as_ref(), Some(&msg));
        let mut wire = Vec::new();
        send(&mut wire, &msg).expect("send to a Vec");
        let got = recv(&mut wire.as_slice()).expect("recv what was sent");
        prop_assert_eq!(got, msg);
    }

    /// Any single bit flip anywhere in a framed message is rejected: the
    /// header fields are validated and the payload is checksummed, so a
    /// corrupted wire byte poisons the connection instead of smuggling a
    /// wrong message through.
    #[test]
    fn single_bit_flips_fail_closed(msg in arb_message(), pos in any::<u64>(), bit in 0usize..8) {
        let mut wire = Vec::new();
        send(&mut wire, &msg).expect("send");
        let pos = (pos % wire.len() as u64) as usize;
        wire[pos] ^= 1 << bit;
        prop_assert!(recv(&mut wire.as_slice()).is_err(), "flip at {}:{} served", pos, bit);
    }

    /// Every truncation of a framed message is an error (and every
    /// truncation of a bare payload decodes to `None`), never a panic and
    /// never a partial message.
    #[test]
    fn truncations_fail_closed(msg in arb_message(), cut in any::<u64>()) {
        let bytes = msg.encode();
        if !bytes.is_empty() {
            let cut_payload = (cut % bytes.len() as u64) as usize;
            prop_assert_eq!(Message::decode(&bytes[..cut_payload]), None);
        }
        let mut wire = Vec::new();
        send(&mut wire, &msg).expect("send");
        let cut_wire = (cut % wire.len() as u64) as usize;
        prop_assert!(recv(&mut &wire[..cut_wire]).is_err());
        // trailing junk is rejected too — message boundaries are exact
        wire.push(0);
        prop_assert!(Message::decode(&wire[22..]).is_none());
    }

    /// A length token claiming more bytes than exist — up to usize::MAX —
    /// is a clean decode error *before* any allocation, both inside a
    /// message payload and in the frame header.
    #[test]
    fn oversized_length_tokens_fail_closed(id in any::<u64>(), declared in any::<u64>()) {
        // inside the payload: a Done whose length token overshoots
        let mut payload = vec![b'D'];
        push_varint(&mut payload, id);
        push_varint(&mut payload, declared.max(1));
        prop_assert_eq!(Message::decode(&payload), None);

        // in the frame header: a declared payload beyond the cap
        let mut wire = Vec::new();
        send(&mut wire, &Message::Heartbeat).expect("send");
        let huge = MAX_MESSAGE_BYTES + 1 + (declared % 1024);
        wire[6..14].copy_from_slice(&huge.to_le_bytes());
        prop_assert!(recv(&mut wire.as_slice()).is_err());
    }

    /// The study spec survives the wire bit-exactly for *arbitrary* float
    /// bit patterns (NaNs, infinities, -0.0, subnormals) and seeds — the
    /// worker's rebuilt graph must address-match the coordinator's or
    /// every lease would be refused.
    #[test]
    fn study_spec_round_trips_any_bit_pattern(
        test_fraction in any::<f64>(),
        alpha in any::<f64>(),
        base_seed in any::<u64>(),
        n_splits in 0usize..1000,
        n_candidates in 0usize..100,
        cv_folds in 0usize..100,
        parallel in any::<bool>(),
        et_picks in prop::collection::vec(0usize..5, 0..8),
    ) {
        let all = ErrorType::all();
        let spec = StudySpec {
            error_types: et_picks.iter().map(|&i| all[i]).collect(),
            cfg: ExperimentConfig {
                n_splits,
                test_fraction,
                search: cleanml_ml::cv::SearchBudget { n_candidates, cv_folds },
                alpha,
                base_seed,
                parallel,
            },
        };
        let back = StudySpec::decode(&spec.encode()).expect("spec decode");
        prop_assert_eq!(&back.error_types, &spec.error_types);
        prop_assert_eq!(back.cfg.test_fraction.to_bits(), test_fraction.to_bits());
        prop_assert_eq!(back.cfg.alpha.to_bits(), alpha.to_bits());
        prop_assert_eq!(back.cfg.n_splits, n_splits);
        prop_assert_eq!(back.cfg.search.n_candidates, n_candidates);
        prop_assert_eq!(back.cfg.search.cv_folds, cv_folds);
        prop_assert_eq!(back.cfg.base_seed, base_seed);
        prop_assert_eq!(back.cfg.parallel, parallel);

        // and a truncated spec inside a Welcome still fails closed
        let bytes = spec.encode();
        let cut = (base_seed % bytes.len() as u64) as usize;
        prop_assert_eq!(StudySpec::decode(&bytes[..cut]).map(|s| s.encode()), None);
    }
}

/// LEB128, as the codec writes it (test-local copy so the test does not
/// trust the code under test to build its adversarial inputs).
fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[test]
fn hello_version_is_current() {
    // a reminder to bump PROTOCOL_VERSION on any wire-visible change
    assert_eq!(PROTOCOL_VERSION, 2);
}
