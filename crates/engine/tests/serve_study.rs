//! The resident-engine (serving core) guarantees:
//!
//! * N concurrent submissions against one `Engine` produce CSVs
//!   byte-identical to N serial `run_study` invocations, and overlapping
//!   submissions dedupe into the *same* in-flight tasks — the overlap
//!   trains exactly once, provably from the executed-task counts;
//! * a repeated submission executes zero `Train` tasks (warm in-memory
//!   reuse, not just a disk hit);
//! * cancelling one submission mid-run releases its subgraph without
//!   disturbing another submission's byte-identical output;
//! * the serving protocol end to end over real loopback TCP: `Submit` a
//!   study (cold, then warm) and a single cell, stream `Status`, receive
//!   `ResultCsv` — the wire CSV byte-matches the canonical rendering and
//!   the warm report shows zero training.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cleanml_core::schema::ErrorType;
use cleanml_core::{run_study, CleanMlDb, ExperimentConfig};
use cleanml_engine::remote::{proto, Message, Request, ServeReport, StudySpec};
use cleanml_engine::{Engine, EngineConfig, RunReport, TaskKind};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { n_splits: 2, parallel: false, ..ExperimentConfig::quick() }
}

/// The canonical CSV rendering (headers included) — exactly what the
/// serving layer ships and the `study` binary writes.
fn csv_of(db: &CleanMlDb) -> String {
    format!("{}{}{}", db.r1_csv(), db.r2_csv(), db.r3_csv())
}

fn trains(report: &RunReport) -> usize {
    report.executed(TaskKind::Train) + report.remote(TaskKind::Train)
}

#[test]
fn concurrent_submissions_are_serial_identical_and_train_once() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];

    let serial = run_study(&ets, &cfg).expect("serial study");
    let serial_csv = csv_of(&serial);

    // Baseline: how much a single cold run trains.
    let mut baseline = Engine::new(EngineConfig { workers: 4, ..Default::default() });
    let (_, base_report) = baseline.run_study_with_report(&ets, &cfg).expect("baseline");
    assert!(trains(&base_report) > 0, "a cold study must train");

    // Two submissions of the same study, merged into one resident engine
    // back to back, so the second rides the first's in-flight tasks.
    let engine = Engine::new(EngineConfig { workers: 4, ..Default::default() });
    let s1 = engine.submit_study(&ets, &cfg);
    let s2 = engine.submit_study(&ets, &cfg);
    let (db1, r1) = s1.wait().expect("first submission");
    let (db2, r2) = s2.wait().expect("second submission");

    assert_eq!(csv_of(&db1), serial_csv, "submission 1 vs serial");
    assert_eq!(csv_of(&db2), serial_csv, "submission 2 vs serial");
    assert_eq!(
        trains(&r1) + trains(&r2),
        trains(&base_report),
        "the overlap must dedupe into the same in-flight Train tasks: {r1:?} {r2:?}"
    );
    assert_eq!(
        r1.executed_total() + r2.executed_total(),
        base_report.executed_total(),
        "every task of the shared DAG executed exactly once"
    );

    // A third, repeated submission answers from the warm in-memory memo:
    // zero Train tasks — zero tasks at all.
    let s3 = engine.submit_study(&ets, &cfg);
    let (db3, r3) = s3.wait().expect("warm submission");
    assert_eq!(csv_of(&db3), serial_csv, "warm submission vs serial");
    assert_eq!(trains(&r3), 0, "warm submission retrained: {r3:?}");
    assert_eq!(r3.executed_total(), 0, "warm submission executed tasks: {r3:?}");
}

#[test]
fn cancel_mid_run_leaves_the_other_submission_byte_identical() {
    let cfg = tiny_cfg();
    let keep_ets = [ErrorType::Inconsistencies];

    let serial = run_study(&keep_ets, &cfg).expect("serial study");

    let engine = Engine::new(EngineConfig { workers: 2, ..Default::default() });
    let keep = engine.submit_study(&keep_ets, &cfg);
    // A disjoint study whose subgraph is exclusively its own.
    let doomed = engine.submit_study(&[ErrorType::Duplicates], &cfg);
    std::thread::sleep(Duration::from_millis(50));
    doomed.cancel();
    let err = doomed.wait().expect_err("cancelled submission must error");
    assert!(err.to_string().contains("cancelled"), "{err}");

    let (db, report) = keep.wait().expect("surviving submission");
    assert_eq!(csv_of(&db), csv_of(&serial), "cancel disturbed the surviving submission");
    assert!(trains(&report) > 0);
}

// -- the serving protocol over real loopback TCP ---------------------------

/// Drives one `Submit` conversation to completion; returns the CSV text
/// and decoded report, or the server's error string.
fn client_request(addr: SocketAddr, request: &Request) -> Result<(String, ServeReport), String> {
    let stream = TcpStream::connect(addr).expect("connect to resident engine");
    let _ = stream.set_nodelay(true);
    proto::send(&mut &stream, &Message::Submit { request: request.encode() })
        .expect("submit request");
    let mut saw_status = false;
    loop {
        match proto::recv(&mut &stream).expect("server reply") {
            Message::Status { .. } => saw_status = true,
            Message::Heartbeat => {}
            Message::ResultCsv { csv, report } => {
                assert!(saw_status, "the server must stream progress before the result");
                let csv = String::from_utf8(csv).expect("CSV is UTF-8");
                let report = ServeReport::decode(&report).expect("report decodes");
                return Ok((csv, report));
            }
            Message::ServeError { error } => return Err(error),
            other => panic!("unexpected serving message: {other:?}"),
        }
    }
}

fn report_trains(report: &ServeReport) -> u64 {
    let count = |v: &[(TaskKind, u64)]| {
        v.iter().find(|(k, _)| *k == TaskKind::Train).map_or(0, |&(_, n)| n)
    };
    count(&report.executed) + count(&report.remote_executed)
}

#[test]
fn serving_clients_get_byte_identical_csvs_and_warm_cell_answers() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];

    let serial = run_study(&ets, &cfg).expect("serial study");
    let serial_csv = csv_of(&serial);

    let engine = Engine::new(EngineConfig {
        workers: 4,
        listen: Some("127.0.0.1:0".into()),
        ..Default::default()
    });
    let addr = engine.remote_addr().expect("hub bound");
    let study = Request::Study(StudySpec { error_types: ets.to_vec(), cfg });

    // Cold: the engine computes; the wire CSV is the canonical rendering.
    let (cold_csv, cold_report) = client_request(addr, &study).expect("cold study request");
    assert_eq!(cold_csv, serial_csv, "wire CSV vs serial rendering");
    assert!(report_trains(&cold_report) > 0, "cold serve must train: {cold_report:?}");

    // Warm: byte-identical bytes, zero training, zero executed tasks —
    // the in-memory memo answered, not a re-run against the disk store.
    let (warm_csv, warm_report) = client_request(addr, &study).expect("warm study request");
    assert_eq!(warm_csv, cold_csv, "warm response must be byte-identical");
    assert_eq!(report_trains(&warm_report), 0, "warm serve retrained: {warm_report:?}");
    assert!(warm_report.executed.is_empty(), "warm serve executed tasks: {warm_report:?}");
    assert!(warm_report.memory_hits > 0, "warm serve must hit the memo");

    // A single-cell query shares content addresses with the study just
    // served, so it too answers without training; only its 1×1 grid
    // reduction runs.
    let cell = Request::Cell {
        spec: StudySpec { error_types: ets.to_vec(), cfg },
        dataset: "University".into(),
        detection: "OpenRefine".into(),
        repair: "Merge".into(),
        model: "Logistic Regression".into(),
    };
    let (cell_csv, cell_report) = client_request(addr, &cell).expect("cell request");
    assert!(
        cell_csv.contains("University,Inconsistencies,OpenRefine,Merge,Logistic Regression"),
        "cell CSV must contain the requested cell's R1 rows:\n{cell_csv}"
    );
    assert_eq!(report_trains(&cell_report), 0, "warm cell query retrained: {cell_report:?}");

    // Unknown requests fail with a protocol-level error, not a hang.
    let bad = Request::Cell {
        spec: StudySpec { error_types: ets.to_vec(), cfg },
        dataset: "Atlantis".into(),
        detection: "OpenRefine".into(),
        repair: "Merge".into(),
        model: "Logistic Regression".into(),
    };
    let err = client_request(addr, &bad).expect_err("unknown dataset must be refused");
    assert!(err.contains("unknown dataset"), "{err}");
}
