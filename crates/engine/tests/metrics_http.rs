//! The `/metrics` plane on the shared listener:
//!
//! * a plain HTTP `GET /metrics` against a live engine's hub returns
//!   Prometheus text — `# TYPE` lines, per-kind task-latency histograms
//!   with cumulative buckets, cache hit/miss counters;
//! * hostile first contact fails closed: garbage magic, malformed
//!   request lines and oversized request heads are dropped without a
//!   panic and without touching the task pool, while well-formed
//!   requests for unknown routes earn an explicit 404;
//! * after every such rejection the same engine still computes a study
//!   with byte-identical results.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cleanml_core::schema::ErrorType;
use cleanml_core::{run_study, ExperimentConfig};
use cleanml_engine::{Engine, EngineConfig};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { n_splits: 2, parallel: false, ..ExperimentConfig::quick() }
}

fn hub_engine(workers: usize) -> Engine {
    Engine::new(EngineConfig { workers, listen: Some("127.0.0.1:0".into()), ..Default::default() })
}

/// Writes raw bytes to the hub and reads until the server closes. The
/// responder always closes after one exchange, so EOF terminates every
/// conversation — including the silent rejections.
fn raw_exchange(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect to hub");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    // The server may close mid-write on oversized requests; that is the
    // behaviour under test, not a failure.
    let _ = stream.write_all(request);
    let _ = stream.flush();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let req = format!("GET {path} HTTP/1.1\r\nHost: cleanml\r\nConnection: close\r\n\r\n");
    String::from_utf8_lossy(&raw_exchange(addr, req.as_bytes())).into_owned()
}

#[test]
fn metrics_scrape_returns_prometheus_text_with_task_histograms() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let mut engine = hub_engine(2);
    let addr = engine.remote_addr().expect("hub bound");

    // Execute real work first so the scrape shows a live registry, not
    // an all-zero one.
    engine.run_study_with_report(&ets, &cfg).expect("study run");

    let response = http_get(addr, "/metrics");
    let (head, body) = response.split_once("\r\n\r\n").expect("HTTP head/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "status line: {head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "exposition content type: {head}"
    );

    // Counter families with # TYPE lines and executed work.
    assert!(body.contains("# TYPE cleanml_tasks_executed_total counter"), "{body}");
    assert!(
        body.contains(r#"cleanml_tasks_executed_total{kind="train",site="local"}"#),
        "per-kind executed counter missing:\n{body}"
    );
    assert!(body.contains("# TYPE cleanml_cache_hits_total counter"), "{body}");
    assert!(body.contains(r#"cleanml_cache_hits_total{layer="memory"}"#), "{body}");
    assert!(body.contains("cleanml_cache_misses_total"), "{body}");
    assert!(body.contains("# TYPE cleanml_leases_active gauge"), "{body}");
    assert!(body.contains("# TYPE cleanml_submissions_total counter"), "{body}");

    // Per-kind latency histogram: buckets end at +Inf and the +Inf count
    // equals the _count sample (cumulativeness is proven bucket-by-bucket
    // in the unit tests; here we prove the wire rendering agrees).
    assert!(body.contains("# TYPE cleanml_task_seconds histogram"), "{body}");
    let inf = body
        .lines()
        .find(|l| l.starts_with(r#"cleanml_task_seconds_bucket{kind="train",le="+Inf"}"#))
        .expect("train +Inf bucket");
    let count = body
        .lines()
        .find(|l| l.starts_with(r#"cleanml_task_seconds_count{kind="train"}"#))
        .expect("train count sample");
    let value = |l: &str| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap();
    assert_eq!(value(inf), value(count), "+Inf bucket vs count");
    assert!(value(count) > 0, "the study trained; the histogram must have observations");

    // The scrape itself is counted.
    let again = http_get(addr, "/metrics");
    assert!(again.contains("cleanml_http_requests_total"), "{again}");
}

#[test]
fn hostile_first_contact_fails_closed_and_the_pool_still_serves() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let serial = run_study(&ets, &cfg).expect("serial study");

    let mut engine = hub_engine(2);
    let addr = engine.remote_addr().expect("hub bound");

    // Garbage magic: neither CMAF nor "GET " — dropped without a reply.
    let reply = raw_exchange(addr, b"XYZW garbage that is neither frame nor http\r\n");
    assert!(reply.is_empty(), "garbage magic must be dropped silently: {reply:?}");

    // POST now classifies as HTTP (the gateway accepts POST /studies),
    // but /metrics is not a POST route: a well-formed head earns a 404.
    let reply = raw_exchange(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 404"), "POST /metrics: {reply}");

    // Unknown method: dropped without a reply.
    let reply = raw_exchange(addr, b"PUT /metrics HTTP/1.1\r\n\r\n");
    assert!(reply.is_empty(), "PUT must be dropped silently");

    // Malformed request line (three tokens required).
    let reply = raw_exchange(addr, b"GET /metrics\r\n\r\n");
    assert!(reply.is_empty(), "malformed request line must be dropped");

    // Oversized head: far past the responder's byte cap, never
    // terminated — the server must cut the connection, not buffer it.
    let mut oversized = Vec::from(&b"GET /"[..]);
    oversized.extend(std::iter::repeat_n(b'a', 64 * 1024));
    let reply = raw_exchange(addr, &oversized);
    assert!(reply.is_empty(), "oversized head must be dropped");

    // Oversized head whose terminator *does* arrive: equally hostile.
    // Regression — the old loop only applied the cap while the
    // terminator was missing, so this request used to be served.
    let mut terminated = Vec::from(&b"GET /metrics HTTP/1.1\r\nX-Pad: "[..]);
    terminated.extend(std::iter::repeat_n(b'a', 64 * 1024));
    terminated.extend_from_slice(b"\r\n\r\n");
    let reply = raw_exchange(addr, &terminated);
    assert!(reply.is_empty(), "oversized-but-terminated head must be dropped");

    // A query string on /metrics is ignored, not 404ed. Regression —
    // the old request-line parser kept `?foo=1` glued to the path.
    let reply = http_get(addr, "/metrics?foo=1");
    assert!(reply.starts_with("HTTP/1.1 200"), "GET /metrics?foo=1: {reply}");

    // Unknown path: a well-formed GET earns an explicit 404.
    let reply = http_get(addr, "/health");
    assert!(reply.starts_with("HTTP/1.1 404"), "unknown path: {reply}");

    // None of the above touched the pool: the engine still computes the
    // study, byte-identical to the serial path.
    let (db, report) = engine.run_study_with_report(&ets, &cfg).expect("study after abuse");
    assert_eq!(
        format!("{}{}{}", db.r1_csv(), db.r2_csv(), db.r3_csv()),
        format!("{}{}{}", serial.r1_csv(), serial.r2_csv(), serial.r3_csv()),
        "hostile connections disturbed the study results"
    );
    assert!(report.executed_total() > 0, "cold study must execute tasks");

    // And the metrics plane survived too, now counting its rejections.
    // The accounting invariant holds: every request that reached the
    // listener is either rejected, unrouted, unauthorized or routed.
    let scrape = http_get(addr, "/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200"), "{scrape}");
    let sample = |name: &str| -> u64 {
        scrape
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("sample {name} missing:\n{scrape}"))
    };
    let requests = sample("cleanml_http_requests_total ");
    let rejected = sample("cleanml_http_rejected_total ");
    let not_found = sample("cleanml_http_not_found_total ");
    let unauthorized = sample("cleanml_http_unauthorized_total ");
    let routed: u64 = scrape
        .lines()
        .filter(|l| l.starts_with("cleanml_http_route_requests_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    // The final scrape itself is in flight while rendering: it has been
    // counted as a request and routed before the body renders.
    assert!(rejected >= 4, "garbage + PUT + malformed + 2 oversized: {scrape}");
    assert!(not_found >= 2, "POST /metrics and GET /health: {scrape}");
    assert_eq!(
        requests,
        rejected + not_found + unauthorized + routed,
        "accounting invariant broken:\n{scrape}"
    );
}
