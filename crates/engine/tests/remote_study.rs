//! The distributed-execution guarantees, proven over an in-process
//! loopback harness: real `std::net` TCP sockets on 127.0.0.1, worker
//! sessions running on plain threads — no child processes, so the suite
//! can kill "machines" by dropping connections and still assert on both
//! sides' internal state.
//!
//! The headline property mirrors the engine's serial-equivalence contract,
//! extended across the wire: a study executed by any mix of local threads
//! and remote workers — including a worker killed mid-lease and a worker
//! whose lease expires — produces CSVs byte-identical to the serial path.

use std::fmt::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use cleanml_core::schema::ErrorType;
use cleanml_core::{run_study, CleanMlDb, ExperimentConfig};
use cleanml_engine::remote::{run_worker, FaultPlan, WorkerSummary};
use cleanml_engine::{Engine, EngineConfig, EngineEvent, TaskKind};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { n_splits: 2, parallel: false, ..ExperimentConfig::quick() }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cleanml-remote-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders the full relational database the way the `study` binary dumps
/// it, so "byte-identical CSVs" is asserted literally, not inferred from
/// `PartialEq` (under which `-0.0 == 0.0` would hide a formatting
/// divergence).
fn csv_of(db: &CleanMlDb) -> String {
    let mut out = String::new();
    for r in &db.r1 {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{:e},{:e},{:e},{},{},{}",
            r.dataset,
            r.error_type.name(),
            r.detection.name(),
            r.repair.name(),
            r.model.name(),
            r.scenario,
            r.flag,
            r.evidence.p_two,
            r.evidence.p_upper,
            r.evidence.p_lower,
            r.evidence.mean_before,
            r.evidence.mean_after,
            r.evidence.n_splits,
        );
    }
    for r in &db.r2 {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:e},{},{}",
            r.dataset,
            r.error_type.name(),
            r.detection.name(),
            r.repair.name(),
            r.scenario,
            r.flag,
            r.evidence.p_two,
            r.evidence.mean_before,
            r.evidence.mean_after,
        );
    }
    for r in &db.r3 {
        let _ = writeln!(
            out,
            "{},{},{},{},{:e},{},{}",
            r.dataset,
            r.error_type.name(),
            r.scenario,
            r.flag,
            r.evidence.p_two,
            r.evidence.mean_before,
            r.evidence.mean_after,
        );
    }
    out
}

/// Connects a worker session to `addr` on its own thread.
fn spawn_worker(
    addr: SocketAddr,
    name: &'static str,
    faults: FaultPlan,
) -> JoinHandle<std::io::Result<WorkerSummary>> {
    std::thread::spawn(move || {
        let stream = TcpStream::connect(addr)?;
        run_worker(stream, name, &faults)
    })
}

fn remote_engine(workers: usize, lease_timeout: Duration, cache_dir: Option<PathBuf>) -> Engine {
    Engine::new(EngineConfig {
        workers,
        cache_dir,
        listen: Some("127.0.0.1:0".into()),
        lease_timeout,
        ..Default::default()
    })
}

/// The three-way equivalence: serial path, N-thread local pool, and a
/// 1-thread coordinator with two remote workers all produce identical
/// `EvalGrid`-derived relations, and the distributed run's accounting adds
/// up — local + remote executed counts cover exactly the to-run frontier.
#[test]
fn serial_local_pool_and_remote_workers_agree() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];
    let dir = temp_dir("equiv");

    let serial = run_study(&ets, &cfg).expect("serial study");

    let mut local = Engine::new(EngineConfig { workers: 4, ..Default::default() });
    let (db_local, report_local) = local.run_study_with_report(&ets, &cfg).expect("local study");

    let mut coord = remote_engine(1, Duration::from_secs(5), Some(dir.clone()));
    let addr = coord.remote_addr().expect("hub bound");
    let w1 = spawn_worker(addr, "loopback-1", FaultPlan::default());
    let w2 = spawn_worker(addr, "loopback-2", FaultPlan::default());
    let (db_remote, report) = coord.run_study_with_report(&ets, &cfg).expect("distributed study");
    drop(coord); // closes the hub; no worker can be left waiting
    let s1 = w1.join().expect("worker 1 thread").expect("worker 1 session");
    let s2 = w2.join().expect("worker 2 thread").expect("worker 2 session");

    assert_eq!(csv_of(&serial), csv_of(&db_local), "serial vs local pool");
    assert_eq!(csv_of(&serial), csv_of(&db_remote), "serial vs remote workers");

    // Accounting: the same DAG ran, every to-run task executed exactly
    // once, and the provenance split is complete.
    assert_eq!(report.total, report_local.total);
    assert_eq!(report.executed_total(), report_local.executed_total());
    let to_run = report.total - report.cache_hits - report.pruned;
    assert_eq!(report.local_total() + report.remote_total(), to_run);
    assert_eq!(report.remote_workers, 2, "both workers handshook");
    assert!(report.remote_total() > 0, "remote workers must have executed tasks");
    assert_eq!(s1.completed + s2.completed, report.remote_total(), "worker-side accounting");
    assert!(s1.fetched + s2.fetched > 0, "inputs travelled by content address");

    // Remote-shipped artifacts landed in the shared store: a fresh local
    // engine on the same directory resumes with zero retraining.
    let mut warm = Engine::new(EngineConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let (db_warm, report_warm) = warm.run_study_with_report(&ets, &cfg).expect("warm study");
    assert_eq!(csv_of(&serial), csv_of(&db_warm), "serial vs warm resume");
    assert_eq!(report_warm.executed(TaskKind::Train), 0, "warm resume retrained");
    assert_eq!(report_warm.executed(TaskKind::Clean), 0);
    assert_eq!(report_warm.executed(TaskKind::Split), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The fault-injection scenario of the acceptance criteria: two loopback
/// workers, one killed mid-lease (its connection drops right after the
/// coordinator emitted `TaskStarted` for the lease). The coordinator must
/// re-lease every orphaned task and finish with CSVs byte-identical to the
/// serial run.
#[test]
fn worker_killed_mid_lease_costs_only_its_in_flight_task() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];

    let serial = run_study(&ets, &cfg).expect("serial study");

    let (tx, rx) = mpsc::channel();
    let mut coord = remote_engine(1, Duration::from_secs(5), None).with_events(tx);
    let addr = coord.remote_addr().expect("hub bound");
    // One healthy worker; one completes a task, then vanishes upon its
    // second lease — the loopback equivalent of `kill -9` mid-lease.
    let healthy = spawn_worker(addr, "survivor", FaultPlan::default());
    let doomed = spawn_worker(
        addr,
        "crash-dummy",
        FaultPlan { die_on_lease: Some(2), ..Default::default() },
    );
    let (db, report) = coord.run_study_with_report(&ets, &cfg).expect("faulted study");
    drop(coord);
    let _ = healthy.join().expect("healthy thread");
    let doomed_summary = doomed.join().expect("doomed thread").expect("doomed session");

    assert_eq!(csv_of(&serial), csv_of(&db), "a worker death must not change a single byte");
    assert_eq!(doomed_summary.completed, 1, "the doomed worker finished its first lease");
    assert!(report.releases >= 1, "the orphaned lease re-entered the frontier: {report:?}");
    assert_eq!(report.remote_workers, 2);

    let events: Vec<EngineEvent> = rx.try_iter().collect();
    let joined = events.iter().filter(|e| matches!(e, EngineEvent::WorkerJoined { .. })).count();
    let expired: Vec<(usize, TaskKind)> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::LeaseExpired { worker, id, kind } if worker == "crash-dummy" => {
                Some((*id, *kind))
            }
            _ => None,
        })
        .collect();
    assert_eq!(joined, 2, "both workers joined");
    assert_eq!(expired.len(), 1, "exactly the in-flight lease was orphaned: {expired:?}");
    // …and the orphaned task was started again (re-leased or run locally):
    let (orphan_id, _) = expired[0];
    let restarts = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::TaskStarted { id, .. } if *id == orphan_id))
        .count();
    assert_eq!(restarts, 2, "orphaned task must start exactly twice");
}

/// A worker that goes silent (stalls past the deadline with heartbeats
/// muted) loses its lease to the deadline, not to a disconnect — and the
/// run still completes byte-identically.
#[test]
fn silent_worker_expires_at_the_lease_deadline() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];

    let serial = run_study(&ets, &cfg).expect("serial study");

    let (tx, rx) = mpsc::channel();
    let mut coord = remote_engine(2, Duration::from_millis(250), None).with_events(tx);
    let addr = coord.remote_addr().expect("hub bound");
    let mute = spawn_worker(
        addr,
        "tarpit",
        FaultPlan {
            stall: Some(Duration::from_millis(1500)),
            mute_heartbeats: true,
            ..Default::default()
        },
    );
    let (db, report) = coord.run_study_with_report(&ets, &cfg).expect("study with tarpit");
    drop(coord);
    let _ = mute.join().expect("tarpit thread"); // io error is fine: its socket was severed

    assert_eq!(csv_of(&serial), csv_of(&db), "an expired lease must not change results");
    assert!(report.releases >= 1, "the stalled lease must expire: {report:?}");
    assert!(
        rx.try_iter().any(
            |e| matches!(e, EngineEvent::LeaseExpired { ref worker, .. } if worker == "tarpit")
        ),
        "LeaseExpired must be emitted"
    );
}

/// The positive half of the deadline story: a healthy worker heartbeats a
/// quarter-deadline apart, so a lease several times longer than the
/// timeout survives — long `Train` bodies never expire just for being
/// slow.
#[test]
fn heartbeats_keep_slow_but_alive_leases_valid() {
    let cfg = tiny_cfg();
    let ets = [ErrorType::Inconsistencies];

    let serial = run_study(&ets, &cfg).expect("serial study");

    let mut coord = remote_engine(2, Duration::from_millis(1500), None);
    let addr = coord.remote_addr().expect("hub bound");
    let slow = spawn_worker(
        addr,
        "slowpoke",
        FaultPlan { stall: Some(Duration::from_millis(3000)), ..Default::default() },
    );
    let (db, report) = coord.run_study_with_report(&ets, &cfg).expect("study with slowpoke");
    drop(coord);
    let summary = slow.join().expect("slowpoke thread").expect("slowpoke session");

    assert_eq!(csv_of(&serial), csv_of(&db), "slow worker vs serial");
    assert!(summary.completed >= 1, "the slow worker's lease must survive via heartbeats");
    assert!(report.remote_total() >= 1);
}
