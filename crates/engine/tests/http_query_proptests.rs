//! Adversarial property tests for the gateway's hand-rolled query
//! layer: the percent-decoding query-string parser, the typed
//! [`Select`] builder, and the submit-spec parser. The contract under
//! test is *fail-closed, never panic*: any byte soup either parses into
//! bounded, well-formed pairs or is rejected outright — and everything
//! a strict encoder produces round-trips losslessly.

use cleanml_core::Relation;
use cleanml_engine::{parse_query, percent_decode, Select};
use proptest::prelude::*;

/// Percent-encodes one key or value the way a strict client would:
/// unreserved ASCII passes through, spaces become `+`, everything else
/// (including multi-byte UTF-8) is `%XX`-escaped per byte.
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for &b in s.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b'~' => out.push(b as char),
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

proptest! {
    /// Whatever the value, `encode → parse` recovers it exactly —
    /// including spaces (as `+`), separators, percent signs and
    /// multi-byte UTF-8. 40 chars of at most 3 encoded bytes each stay
    /// far inside the value cap.
    #[test]
    fn percent_encoding_round_trips(
        key in "[a-z][a-z0-9_]{0,7}",
        value in "[a-zA-Z0-9 %&=+#/.~é€]{0,40}",
    ) {
        let raw = format!("{}={}", percent_encode(&key), percent_encode(&value));
        let pairs = parse_query(&raw).expect("strictly encoded query must parse");
        prop_assert_eq!(pairs, vec![(key, value)]);
    }

    /// The decoder never panics on printable soup, and acceptance
    /// implies the input held no raw separator that could have re-split
    /// the query string.
    #[test]
    fn decoder_never_panics_and_containment_holds(s in "[ -~]{0,64}") {
        if percent_decode(&s).is_some() {
            for raw in ['&', '=', '#', ' '] {
                prop_assert!(!s.contains(raw), "raw {:?} accepted in {:?}", raw, s);
            }
        }
    }

    /// Arbitrary printable soup never panics the query parser, and
    /// whatever it accepts respects every bound.
    #[test]
    fn query_parser_is_total_and_bounded(s in "[ -~]{0,200}") {
        if let Some(pairs) = parse_query(&s) {
            prop_assert!(pairs.len() <= 32);
            for (k, v) in &pairs {
                prop_assert!(!k.is_empty() && k.len() <= 64, "key bound: {:?}", k);
                prop_assert!(v.len() <= 512, "value bound: {:?}", v);
            }
        }
    }

    /// Oversized inputs always fail closed: too many pairs, too-long
    /// keys, too-long values — no clamping, no truncation.
    #[test]
    fn oversized_queries_fail_closed(
        pairs in 33usize..80,
        klen in 65usize..120,
        vlen in 513usize..700,
    ) {
        let many: Vec<String> = (0..pairs).map(|i| format!("k{i}=v")).collect();
        prop_assert_eq!(parse_query(&many.join("&")), None);
        prop_assert_eq!(parse_query(&format!("{}=v", "k".repeat(klen))), None);
        prop_assert_eq!(parse_query(&format!("k={}", "v".repeat(vlen))), None);
    }

    /// `Select::from_pairs` is total over whatever the parser lets
    /// through: it either builds a typed select or returns an error —
    /// and applying any accepted select to junk rows of the right arity
    /// never panics and respects the page bounds.
    #[test]
    fn select_is_total_over_parsed_queries(s in "[ -~]{0,120}", n_rows in 0usize..8) {
        let Some(pairs) = parse_query(&s) else { return Ok(()) };
        for relation in [Relation::R1, Relation::R2, Relation::R3] {
            if let Ok(select) = Select::from_pairs(relation, &pairs) {
                prop_assert!(select.limit <= 10_000, "limit cap leaked: {}", select.limit);
                let width = match relation {
                    Relation::R1 => 13,
                    Relation::R2 => 9,
                    Relation::R3 => 7,
                };
                let rows: Vec<Vec<String>> = (0..n_rows)
                    .map(|i| (0..width).map(|j| format!("cell{i}x{j}")).collect())
                    .collect();
                let (page, total) = select.apply(&rows);
                prop_assert!(total <= rows.len());
                prop_assert!(page.len() <= select.limit.min(total));
            }
        }
    }
}
