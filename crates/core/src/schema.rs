//! The CleanML relational schema (paper §III, Table 1).
//!
//! Three relations organize every experiment:
//!
//! * **R1** (vanilla) — key `(dataset, error type, detection, repair,
//!   ML model, scenario)`.
//! * **R2** (with model selection) — drops the model attribute; the best
//!   model per split is chosen on validation performance.
//! * **R3** (with model *and* cleaning-method selection) — further drops
//!   detection/repair.
//!
//! Every row carries the paper's `flag` (P/N/S) plus the three t-test
//! p-values it was derived from, so the Benjamini–Yekutieli procedure can be
//! re-run over a whole relation.

use std::fmt;

pub use cleanml_cleaning::{CleaningMethod, Detection, ErrorType, Repair};
pub use cleanml_ml::ModelKind as Model;
pub use cleanml_stats::Flag;

/// Where cleaning is applied (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// Model development: compare case B (dirty-train model) with case D
    /// (clean-train model), both evaluated on the cleaned test set.
    BD,
    /// Model deployment: one clean-train model evaluated on the dirty test
    /// set (case C) vs. the cleaned test set (case D).
    CD,
}

impl Scenario {
    /// Scenarios applicable to an error type: missing values support only BD
    /// (paper Table 5 — deleting test rows is not acceptable in deployment).
    pub fn for_error(error_type: ErrorType) -> &'static [Scenario] {
        match error_type {
            ErrorType::MissingValues => &[Scenario::BD],
            _ => &[Scenario::BD, Scenario::CD],
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            match self {
                Scenario::BD => "BD",
                Scenario::CD => "CD",
            }
        )
    }
}

/// Statistical evidence attached to every relation row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evidence {
    /// Two-tailed, upper-tailed and lower-tailed p-values.
    pub p_two: f64,
    pub p_upper: f64,
    pub p_lower: f64,
    /// Mean of the metric *before* cleaning (case B or C).
    pub mean_before: f64,
    /// Mean of the metric *after* cleaning (case D).
    pub mean_after: f64,
    /// Number of train/test splits aggregated.
    pub n_splits: usize,
}

/// One tuple of relation R1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row1 {
    pub dataset: String,
    pub error_type: ErrorType,
    pub detection: Detection,
    pub repair: Repair,
    pub model: Model,
    pub scenario: Scenario,
    pub flag: Flag,
    pub evidence: Evidence,
}

/// One tuple of relation R2 (model selected per split).
#[derive(Debug, Clone, PartialEq)]
pub struct Row2 {
    pub dataset: String,
    pub error_type: ErrorType,
    pub detection: Detection,
    pub repair: Repair,
    pub scenario: Scenario,
    pub flag: Flag,
    pub evidence: Evidence,
}

/// One tuple of relation R3 (model + cleaning method selected per split).
#[derive(Debug, Clone, PartialEq)]
pub struct Row3 {
    pub dataset: String,
    pub error_type: ErrorType,
    pub scenario: Scenario,
    pub flag: Flag,
    pub evidence: Evidence,
}

/// Experiment specification for R1 (paper Table 6, s1).
#[derive(Debug, Clone, PartialEq)]
pub struct Spec1 {
    pub dataset: String,
    pub error_type: ErrorType,
    pub detection: Detection,
    pub repair: Repair,
    pub model: Model,
    pub scenario: Scenario,
}

/// Experiment specification for R2 (paper Table 6, s2).
#[derive(Debug, Clone, PartialEq)]
pub struct Spec2 {
    pub dataset: String,
    pub error_type: ErrorType,
    pub detection: Detection,
    pub repair: Repair,
    pub scenario: Scenario,
}

/// Experiment specification for R3 (paper Table 6, s3).
#[derive(Debug, Clone, PartialEq)]
pub struct Spec3 {
    pub dataset: String,
    pub error_type: ErrorType,
    pub scenario: Scenario,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_per_error_type() {
        assert_eq!(Scenario::for_error(ErrorType::MissingValues), &[Scenario::BD]);
        assert_eq!(Scenario::for_error(ErrorType::Outliers), &[Scenario::BD, Scenario::CD]);
        assert_eq!(Scenario::BD.to_string(), "BD");
        assert_eq!(Scenario::CD.to_string(), "CD");
    }
}
