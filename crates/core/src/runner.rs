//! The experiment runner: paper §IV-A's four-step protocol over an
//! evaluation grid.
//!
//! For one dataset and error type, [`evaluate_grid`] executes, per split:
//!
//! 1. **Split** — 70/30, seeded (identical partition for dirty and clean).
//! 2. **Clean** — every cleaning method of the Table 2 catalogue is fit on
//!    the training partition and applied to both partitions.
//! 3. **Train** — for every model family: one model on the dirty training
//!    set (shared across methods — it doesn't depend on the repair) and one
//!    on each method's cleaned training set, each with the configured
//!    hyper-parameter search and a validation score.
//! 4. **Evaluate** — case B (dirty-train model on cleaned test), case C
//!    (clean-train model on dirty test) and case D (clean-train model on
//!    cleaned test).
//!
//! The resulting [`EvalGrid`] contains everything needed to derive the R1,
//! R2 and R3 relations *without re-running any training*: R1 reads cells
//! directly, R2 selects the best model per split by validation score, R3
//! additionally selects the cleaning method (paper §IV-A, modifications for
//! s2/s3).
//!
//! Missing values follow the paper's special protocol (Table 5): the
//! "dirty" training set is the deletion-repaired one, and only scenario BD
//! exists.

use cleanml_cleaning::{CleaningMethod, ErrorType};
use cleanml_datagen::GeneratedDataset;
use cleanml_dataset::{Encoder, Table};
use cleanml_ml::{FittedModel, Metric, ModelKind, PAPER_MODELS};
use cleanml_stats::{flag_from_tests, paired_t_test, Flag};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::schema::{Evidence, Row1, Row2, Row3, Scenario, Spec1};
use crate::tasks::{self, DatasetContext, TrainedModel};

/// Result alias for study execution.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Measurements for one (split, method, model) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellEval {
    /// Validation score of the model trained on the dirty training set.
    pub val_dirty: f64,
    /// Validation score of the model trained on the cleaned training set.
    pub val_clean: f64,
    /// Case B: dirty-train model on the cleaned test set.
    pub acc_b: f64,
    /// Case C: clean-train model on the dirty test set (absent for missing
    /// values, where only scenario BD exists).
    pub acc_c: Option<f64>,
    /// Case D: clean-train model on the cleaned test set.
    pub acc_d: f64,
}

/// The full evaluation grid for one dataset × error type.
#[derive(Debug, Clone)]
pub struct EvalGrid {
    pub dataset: String,
    pub error_type: ErrorType,
    pub methods: Vec<CleaningMethod>,
    pub models: Vec<ModelKind>,
    pub metric: Metric,
    pub n_splits: usize,
    /// `cells[split][method][model]`.
    cells: Vec<Vec<Vec<CellEval>>>,
}

/// The scoring metric for a dataset: accuracy, or F1 of the minority class
/// for imbalanced datasets (paper §IV-A step 4).
pub fn metric_for(data: &GeneratedDataset) -> Result<Metric> {
    if !data.imbalanced {
        return Ok(Metric::Accuracy);
    }
    let classes = label_classes(&data.dirty)?;
    let counts = data.dirty.class_counts()?;
    // Map ids to names, find minority, then its index in the sorted classes.
    let label_col = data.dirty.label_index()?;
    let col = data.dirty.column(label_col)?;
    let minority = counts
        .iter()
        .min_by_key(|&&(_, n)| n)
        .and_then(|&(id, _)| col.dict_str(id))
        .ok_or_else(|| CoreError::Stats("no classes observed".into()))?;
    let positive = classes.iter().position(|c| c == minority).expect("minority class is observed");
    Ok(Metric::F1 { positive })
}

/// Sorted label-class vocabulary of a table.
pub fn label_classes(table: &Table) -> Result<Vec<String>> {
    let label_col = table.label_index()?;
    let col = table.column(label_col)?;
    let counts = col.category_counts();
    let mut classes: Vec<String> = counts
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(id, _)| col.dict_str(id as u32).expect("observed id").to_owned())
        .collect();
    classes.sort();
    Ok(classes)
}

/// Evaluates one split; returns `cells[method][model]`.
///
/// This is the serial composition of the pure task units in
/// [`crate::tasks`] — the engine schedules exactly the same units across a
/// worker pool, so both paths produce identical cells.
fn eval_split(
    data: &GeneratedDataset,
    error_type: ErrorType,
    methods: &[CleaningMethod],
    models: &[ModelKind],
    ctx: &DatasetContext,
    cfg: &ExperimentConfig,
    split: usize,
) -> Result<Vec<Vec<CellEval>>> {
    let split_art = tasks::make_split(data, error_type, ctx, cfg, split)?;
    let fit_seed = cfg.fit_seed(split);

    // Dirty-side models are method-independent: fit once.
    let dirty_models: Vec<TrainedModel> = models
        .iter()
        .enumerate()
        .map(|(ki, &kind)| tasks::train_dirty(kind, ki, &split_art, ctx, cfg, fit_seed))
        .collect::<Result<_>>()?;

    let mut out = Vec::with_capacity(methods.len());
    for (mi, method) in methods.iter().enumerate() {
        let clean = tasks::make_clean(method, mi, error_type, &split_art, ctx, fit_seed)?;
        let mut row = Vec::with_capacity(models.len());
        for (ki, &kind) in models.iter().enumerate() {
            let clean_model =
                tasks::train_clean(kind, ki, mi, models.len(), &clean, ctx, cfg, fit_seed)?;
            row.push(tasks::evaluate_cell(&dirty_models[ki], &clean_model, &clean, ctx)?);
        }
        out.push(row);
    }
    Ok(out)
}

/// Runs the full grid for one dataset × error type with the Table 2 method
/// catalogue and the paper's seven models.
pub fn evaluate_grid(
    data: &GeneratedDataset,
    error_type: ErrorType,
    cfg: &ExperimentConfig,
) -> Result<EvalGrid> {
    evaluate_grid_with(data, error_type, &CleaningMethod::catalogue(error_type), &PAPER_MODELS, cfg)
}

/// Runs the grid with explicit method/model subsets (used by the focused
/// single-experiment API and the ablation benches).
pub fn evaluate_grid_with(
    data: &GeneratedDataset,
    error_type: ErrorType,
    methods: &[CleaningMethod],
    models: &[ModelKind],
    cfg: &ExperimentConfig,
) -> Result<EvalGrid> {
    if methods.is_empty() || models.is_empty() {
        return Err(CoreError::Unsupported("empty method or model list".into()));
    }
    let ctx = tasks::dataset_context(data)?;

    let cells: Vec<Vec<Vec<CellEval>>> = if cfg.parallel && cfg.n_splits > 1 {
        // One thread per split; the paper's 20 splits are comfortably within
        // OS scheduling limits and each is CPU-bound and independent.
        let results: Vec<Result<Vec<Vec<CellEval>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.n_splits)
                .map(|s| {
                    let ctx = &ctx;
                    scope.spawn(move || eval_split(data, error_type, methods, models, ctx, cfg, s))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("split thread panicked")).collect()
        });
        results.into_iter().collect::<Result<Vec<_>>>()?
    } else {
        (0..cfg.n_splits)
            .map(|s| eval_split(data, error_type, methods, models, &ctx, cfg, s))
            .collect::<Result<Vec<_>>>()?
    };

    Ok(EvalGrid {
        dataset: data.name.clone(),
        error_type,
        methods: methods.to_vec(),
        models: models.to_vec(),
        metric: ctx.metric,
        n_splits: cfg.n_splits,
        cells,
    })
}

impl EvalGrid {
    /// Assembles a grid from externally computed cells
    /// (`cells[split][method][model]`) — the engine's reduction step.
    pub fn from_parts(
        dataset: String,
        error_type: ErrorType,
        methods: Vec<CleaningMethod>,
        models: Vec<ModelKind>,
        metric: Metric,
        cells: Vec<Vec<Vec<CellEval>>>,
    ) -> Result<Self> {
        let n_splits = cells.len();
        if n_splits == 0 || methods.is_empty() || models.is_empty() {
            return Err(CoreError::Unsupported("empty grid dimensions".into()));
        }
        for per_split in &cells {
            if per_split.len() != methods.len()
                || per_split.iter().any(|row| row.len() != models.len())
            {
                return Err(CoreError::Unsupported(
                    "cells shape does not match methods × models".into(),
                ));
            }
        }
        Ok(EvalGrid { dataset, error_type, methods, models, metric, n_splits, cells })
    }
}

fn evidence(before: &[f64], after: &[f64]) -> Result<(Flag, Evidence)> {
    let t = paired_t_test(after, before)?;
    let flag = flag_from_tests(&t, cleanml_stats::ALPHA);
    Ok((
        flag,
        Evidence {
            p_two: t.p_two,
            p_upper: t.p_upper,
            p_lower: t.p_lower,
            mean_before: before.iter().sum::<f64>() / before.len() as f64,
            mean_after: after.iter().sum::<f64>() / after.len() as f64,
            n_splits: before.len(),
        },
    ))
}

impl EvalGrid {
    /// Cell accessor (`split`, `method`, `model`).
    pub fn cell(&self, split: usize, method: usize, model: usize) -> &CellEval {
        &self.cells[split][method][model]
    }

    /// Scenarios this grid supports.
    pub fn scenarios(&self) -> &'static [Scenario] {
        Scenario::for_error(self.error_type)
    }

    /// Derives all R1 rows (one per method × model × scenario).
    pub fn r1_rows(&self) -> Result<Vec<Row1>> {
        let mut rows = Vec::new();
        for (mi, method) in self.methods.iter().enumerate() {
            for (ki, &model) in self.models.iter().enumerate() {
                for &scenario in self.scenarios() {
                    let mut before = Vec::with_capacity(self.n_splits);
                    let mut after = Vec::with_capacity(self.n_splits);
                    for s in 0..self.n_splits {
                        let c = self.cell(s, mi, ki);
                        match scenario {
                            Scenario::BD => {
                                before.push(c.acc_b);
                                after.push(c.acc_d);
                            }
                            Scenario::CD => {
                                before.push(c.acc_c.expect("CD exists for this error type"));
                                after.push(c.acc_d);
                            }
                        }
                    }
                    let (flag, evidence) = evidence_pairs(&before, &after)?;
                    rows.push(Row1 {
                        dataset: self.dataset.clone(),
                        error_type: self.error_type,
                        detection: method.detection,
                        repair: method.repair,
                        model,
                        scenario,
                        flag,
                        evidence,
                    });
                }
            }
        }
        Ok(rows)
    }

    /// Derives all R2 rows (model selected per split by validation score).
    pub fn r2_rows(&self) -> Result<Vec<Row2>> {
        let mut rows = Vec::new();
        for (mi, method) in self.methods.iter().enumerate() {
            for &scenario in self.scenarios() {
                let mut before = Vec::with_capacity(self.n_splits);
                let mut after = Vec::with_capacity(self.n_splits);
                for s in 0..self.n_splits {
                    let best_dirty = self.argmax_model(s, mi, |c| c.val_dirty);
                    let best_clean = self.argmax_model(s, mi, |c| c.val_clean);
                    let cd = self.cell(s, mi, best_dirty);
                    let cc = self.cell(s, mi, best_clean);
                    match scenario {
                        Scenario::BD => {
                            before.push(cd.acc_b);
                            after.push(cc.acc_d);
                        }
                        Scenario::CD => {
                            before.push(cc.acc_c.expect("CD exists"));
                            after.push(cc.acc_d);
                        }
                    }
                }
                let (flag, evidence) = evidence_pairs(&before, &after)?;
                rows.push(Row2 {
                    dataset: self.dataset.clone(),
                    error_type: self.error_type,
                    detection: method.detection,
                    repair: method.repair,
                    scenario,
                    flag,
                    evidence,
                });
            }
        }
        Ok(rows)
    }

    /// Derives all R3 rows (model + cleaning method selected per split).
    pub fn r3_rows(&self) -> Result<Vec<Row3>> {
        let mut rows = Vec::new();
        for &scenario in self.scenarios() {
            let mut before = Vec::with_capacity(self.n_splits);
            let mut after = Vec::with_capacity(self.n_splits);
            for s in 0..self.n_splits {
                // Select (method, model) with the best clean-side validation.
                let (best_mi, best_ki) = self.argmax_method_model(s);
                let best_dirty = self.argmax_model(s, best_mi, |c| c.val_dirty);
                let chosen = self.cell(s, best_mi, best_ki);
                match scenario {
                    Scenario::BD => {
                        before.push(self.cell(s, best_mi, best_dirty).acc_b);
                        after.push(chosen.acc_d);
                    }
                    Scenario::CD => {
                        before.push(chosen.acc_c.expect("CD exists"));
                        after.push(chosen.acc_d);
                    }
                }
            }
            let (flag, evidence) = evidence_pairs(&before, &after)?;
            rows.push(Row3 {
                dataset: self.dataset.clone(),
                error_type: self.error_type,
                scenario,
                flag,
                evidence,
            });
        }
        Ok(rows)
    }

    fn argmax_model(&self, split: usize, method: usize, key: impl Fn(&CellEval) -> f64) -> usize {
        (0..self.models.len())
            .max_by(|&a, &b| {
                key(self.cell(split, method, a))
                    .partial_cmp(&key(self.cell(split, method, b)))
                    .expect("finite scores")
                    .then(b.cmp(&a)) // ties -> earlier model (paper listing order)
            })
            .expect("non-empty models")
    }

    fn argmax_method_model(&self, split: usize) -> (usize, usize) {
        let mut best = (0usize, 0usize);
        let mut best_val = f64::NEG_INFINITY;
        for mi in 0..self.methods.len() {
            for ki in 0..self.models.len() {
                let v = self.cell(split, mi, ki).val_clean;
                if v > best_val {
                    best_val = v;
                    best = (mi, ki);
                }
            }
        }
        best
    }
}

fn evidence_pairs(before: &[f64], after: &[f64]) -> Result<(Flag, Evidence)> {
    evidence(before, after)
}

/// Result of selecting and scoring the best model family on a train/test
/// table pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestEval {
    /// Winning model family.
    pub kind: ModelKind,
    /// Its validation score on the training table.
    pub val: f64,
    /// Its test-table score.
    pub acc: f64,
}

/// Selects the best model family from `pool` by validation score on `train`
/// (paper §IV-A, s2 modification) and scores it on `test`.
pub fn best_model_eval(
    train: &Table,
    test: &Table,
    pool: &[ModelKind],
    metric: Metric,
    classes: &[String],
    cfg: &ExperimentConfig,
    seed: u64,
) -> Result<BestEval> {
    if pool.is_empty() {
        return Err(CoreError::Unsupported("empty model pool".into()));
    }
    let enc = Encoder::fit_with_classes(train, classes)?;
    let train_m = enc.transform(train)?;
    let test_m = enc.transform(test)?;
    let mut best: Option<(ModelKind, f64, FittedModel)> = None;
    for (ki, &kind) in pool.iter().enumerate() {
        let trained = tasks::fit_scored(kind, &train_m, cfg, metric, seed.wrapping_add(ki as u64))?;
        if best.as_ref().is_none_or(|(_, bv, _)| trained.val > *bv) {
            best = Some((kind, trained.val, trained.model));
        }
    }
    let (kind, val, model) = best.expect("pool non-empty");
    let acc = tasks::score_model(&model, &test_m, metric)?;
    Ok(BestEval { kind, val, acc })
}

/// Outcome of a single focused experiment (the facade's quickstart API).
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    pub flag: Flag,
    pub evidence: Evidence,
    /// Per-split `(before, after)` metric pairs (paper Table 10).
    pub pairs: Vec<(f64, f64)>,
}

/// Runs one R1 experiment specification end to end (paper Example 4.1).
pub fn run_r1_experiment(
    data: &GeneratedDataset,
    spec: &Spec1,
    cfg: &ExperimentConfig,
) -> Result<ExperimentOutcome> {
    if !Scenario::for_error(spec.error_type).contains(&spec.scenario) {
        return Err(CoreError::Unsupported(format!(
            "scenario {} not defined for {}",
            spec.scenario, spec.error_type
        )));
    }
    let method = CleaningMethod {
        error_type: spec.error_type,
        detection: spec.detection,
        repair: spec.repair,
    };
    let grid = evaluate_grid_with(data, spec.error_type, &[method], &[spec.model], cfg)?;
    let mut pairs = Vec::with_capacity(cfg.n_splits);
    for s in 0..cfg.n_splits {
        let c = grid.cell(s, 0, 0);
        let before = match spec.scenario {
            Scenario::BD => c.acc_b,
            Scenario::CD => c.acc_c.expect("validated above"),
        };
        pairs.push((before, c.acc_d));
    }
    let before: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let after: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let (flag, evidence) = evidence_pairs(&before, &after)?;
    Ok(ExperimentOutcome { flag, evidence, pairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_cleaning::{Detection, Repair};
    use cleanml_datagen::{generate, spec_by_name};

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig { n_splits: 4, parallel: false, ..ExperimentConfig::quick() }
    }

    #[test]
    fn metric_selection() {
        let eeg = generate(spec_by_name("EEG").unwrap(), 1);
        assert_eq!(metric_for(&eeg).unwrap(), Metric::Accuracy);
        let credit = generate(spec_by_name("Credit").unwrap(), 1);
        assert!(matches!(metric_for(&credit).unwrap(), Metric::F1 { .. }));
    }

    #[test]
    fn single_experiment_outliers() {
        let data = generate(spec_by_name("EEG").unwrap(), 42);
        let spec = Spec1 {
            dataset: "EEG".into(),
            error_type: ErrorType::Outliers,
            detection: Detection::Iqr,
            repair: Repair::ImputeMean,
            model: ModelKind::LogisticRegression,
            scenario: Scenario::BD,
        };
        let out = run_r1_experiment(&data, &spec, &quick_cfg()).unwrap();
        assert_eq!(out.pairs.len(), 4);
        for (b, d) in &out.pairs {
            assert!((0.0..=1.0).contains(b) && (0.0..=1.0).contains(d));
        }
    }

    #[test]
    fn cd_rejected_for_missing_values() {
        let data = generate(spec_by_name("Titanic").unwrap(), 42);
        let spec = Spec1 {
            dataset: "Titanic".into(),
            error_type: ErrorType::MissingValues,
            detection: Detection::Empty,
            repair: Repair::MeanMode,
            model: ModelKind::NaiveBayes,
            scenario: Scenario::CD,
        };
        assert!(matches!(
            run_r1_experiment(&data, &spec, &quick_cfg()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn grid_row_counts() {
        let data = generate(spec_by_name("Sensor").unwrap(), 7);
        let methods = CleaningMethod::catalogue(ErrorType::Outliers);
        let models = [ModelKind::DecisionTree, ModelKind::NaiveBayes];
        let cfg = quick_cfg();
        let grid =
            evaluate_grid_with(&data, ErrorType::Outliers, &methods[..2], &models, &cfg).unwrap();
        // 2 methods × 2 models × 2 scenarios
        assert_eq!(grid.r1_rows().unwrap().len(), 8);
        // 2 methods × 2 scenarios
        assert_eq!(grid.r2_rows().unwrap().len(), 4);
        // 2 scenarios
        assert_eq!(grid.r3_rows().unwrap().len(), 2);
    }

    #[test]
    fn grid_missing_values_bd_only() {
        let data = generate(spec_by_name("Titanic").unwrap(), 3);
        let methods = &CleaningMethod::catalogue(ErrorType::MissingValues)[..2];
        let models = [ModelKind::NaiveBayes];
        let cfg = quick_cfg();
        let grid =
            evaluate_grid_with(&data, ErrorType::MissingValues, methods, &models, &cfg).unwrap();
        let rows = grid.r1_rows().unwrap();
        assert_eq!(rows.len(), 2); // 2 methods × 1 model × BD only
        assert!(rows.iter().all(|r| r.scenario == Scenario::BD));
        // cells carry no acc_c
        assert!(grid.cell(0, 0, 0).acc_c.is_none());
    }

    #[test]
    fn deterministic_grid() {
        let data = generate(spec_by_name("Sensor").unwrap(), 5);
        let methods = [CleaningMethod::catalogue(ErrorType::Outliers)[0]];
        let models = [ModelKind::DecisionTree];
        let cfg = quick_cfg();
        let g1 = evaluate_grid_with(&data, ErrorType::Outliers, &methods, &models, &cfg).unwrap();
        let g2 = evaluate_grid_with(&data, ErrorType::Outliers, &methods, &models, &cfg).unwrap();
        for s in 0..cfg.n_splits {
            assert_eq!(g1.cell(s, 0, 0), g2.cell(s, 0, 0));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = generate(spec_by_name("Sensor").unwrap(), 9);
        let methods = [CleaningMethod::catalogue(ErrorType::Outliers)[0]];
        let models = [ModelKind::NaiveBayes];
        let seq = ExperimentConfig { parallel: false, ..quick_cfg() };
        let par = ExperimentConfig { parallel: true, ..quick_cfg() };
        let g1 = evaluate_grid_with(&data, ErrorType::Outliers, &methods, &models, &seq).unwrap();
        let g2 = evaluate_grid_with(&data, ErrorType::Outliers, &methods, &models, &par).unwrap();
        for s in 0..seq.n_splits {
            assert_eq!(g1.cell(s, 0, 0), g2.cell(s, 0, 0));
        }
    }

    #[test]
    fn empty_grid_rejected() {
        let data = generate(spec_by_name("Sensor").unwrap(), 9);
        assert!(evaluate_grid_with(&data, ErrorType::Outliers, &[], &[], &quick_cfg()).is_err());
    }
}
