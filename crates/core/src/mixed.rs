//! Cleaning mixed error types vs. a single error type (paper §VII-A,
//! Table 17).
//!
//! For a dataset carrying several error types, the cleaning-method space for
//! "clean everything" is the Cartesian product of each error type's Table 2
//! catalogue. Per split, both sides select their best (methods, model)
//! combination by validation score — exactly the R3 selection strategy —
//! and the paired t-test over splits yields one flag per
//! `(dataset, single error type)` comparison: **P** means cleaning all error
//! types beat cleaning only the single one.
//!
//! Combined methods are applied sequentially in a canonical order —
//! inconsistencies → duplicates → missing values → outliers — so that
//! spelling merges help duplicate detection and deduplication precedes
//! imputation statistics.

use cleanml_cleaning::{clean_pair, CleaningMethod, ErrorType};
use cleanml_datagen::GeneratedDataset;
use cleanml_dataset::Table;
use cleanml_ml::{ModelKind, PAPER_MODELS};
use cleanml_stats::{flag_from_tests, paired_t_test, Flag};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::runner::{best_model_eval, label_classes, metric_for, Result};
use crate::schema::Evidence;

/// Canonical application order for combined cleaning.
pub const MIXED_ORDER: [ErrorType; 4] = [
    ErrorType::Inconsistencies,
    ErrorType::Duplicates,
    ErrorType::MissingValues,
    ErrorType::Outliers,
];

/// Applies a sequence of cleaning methods to a train/test pair.
pub fn clean_sequence(
    methods: &[CleaningMethod],
    train: &Table,
    test: &Table,
    seed: u64,
) -> Result<(Table, Table)> {
    let mut tr = train.clone();
    let mut te = test.clone();
    for (i, m) in methods.iter().enumerate() {
        let out = clean_pair(m, &tr, &te, seed.wrapping_add(i as u64))?;
        tr = out.train;
        te = out.test;
    }
    Ok((tr, te))
}

/// Cartesian product of per-error-type catalogues (each truncated to
/// `cap` methods), ordered by [`MIXED_ORDER`].
pub fn mixed_method_space(error_types: &[ErrorType], cap: usize) -> Vec<Vec<CleaningMethod>> {
    let ordered: Vec<ErrorType> =
        MIXED_ORDER.iter().copied().filter(|et| error_types.contains(et)).collect();
    let mut combos: Vec<Vec<CleaningMethod>> = vec![Vec::new()];
    for et in ordered {
        let methods: Vec<CleaningMethod> =
            CleaningMethod::catalogue(et).into_iter().take(cap.max(1)).collect();
        let mut next = Vec::with_capacity(combos.len() * methods.len());
        for combo in &combos {
            for &m in &methods {
                let mut c = combo.clone();
                c.push(m);
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// One Table 17 comparison result.
#[derive(Debug, Clone)]
pub struct MixedComparison {
    pub dataset: String,
    pub mixed_types: Vec<ErrorType>,
    pub single_type: ErrorType,
    pub flag: Flag,
    pub evidence: Evidence,
}

/// Compares cleaning *all* of `data`'s error types against cleaning only
/// `single`, with per-split best-method/best-model selection on both sides.
///
/// `cap` truncates each error type's catalogue to bound the Cartesian
/// product (`usize::MAX` for the paper-faithful full space).
pub fn compare_mixed_vs_single(
    data: &GeneratedDataset,
    single: ErrorType,
    cap: usize,
    cfg: &ExperimentConfig,
) -> Result<MixedComparison> {
    if !data.error_types.contains(&single) {
        return Err(CoreError::Unsupported(format!("{} does not carry {}", data.name, single)));
    }
    if data.error_types.len() < 2 {
        return Err(CoreError::Unsupported(format!(
            "{} has a single error type; nothing to mix",
            data.name
        )));
    }
    let metric = metric_for(data)?;
    let classes = label_classes(&data.dirty)?;
    let pool: &[ModelKind] = &PAPER_MODELS;

    let single_space = mixed_method_space(&[single], cap);
    let mixed_space = mixed_method_space(&data.error_types, cap);

    let mut single_accs = Vec::with_capacity(cfg.n_splits);
    let mut mixed_accs = Vec::with_capacity(cfg.n_splits);
    for s in 0..cfg.n_splits {
        let (train0, test0) = data.dirty.split(cfg.test_fraction, cfg.split_seed(s))?;
        let seed = cfg.fit_seed(s);

        let best_in = |space: &[Vec<CleaningMethod>]| -> Result<f64> {
            let mut best: Option<(f64, f64)> = None; // (val, acc)
            for (ci, combo) in space.iter().enumerate() {
                let (tr, te) =
                    clean_sequence(combo, &train0, &test0, seed.wrapping_add(ci as u64))?;
                let eval = best_model_eval(
                    &tr,
                    &te,
                    pool,
                    metric,
                    &classes,
                    cfg,
                    seed.wrapping_add(ci as u64),
                )?;
                if best.is_none_or(|(bv, _)| eval.val > bv) {
                    best = Some((eval.val, eval.acc));
                }
            }
            Ok(best.expect("non-empty method space").1)
        };

        single_accs.push(best_in(&single_space)?);
        mixed_accs.push(best_in(&mixed_space)?);
    }

    let t = paired_t_test(&mixed_accs, &single_accs)?;
    let flag = flag_from_tests(&t, cfg.alpha);
    Ok(MixedComparison {
        dataset: data.name.clone(),
        mixed_types: data.error_types.clone(),
        single_type: single,
        flag,
        evidence: Evidence {
            p_two: t.p_two,
            p_upper: t.p_upper,
            p_lower: t.p_lower,
            mean_before: single_accs.iter().sum::<f64>() / single_accs.len() as f64,
            mean_after: mixed_accs.iter().sum::<f64>() / mixed_accs.len() as f64,
            n_splits: cfg.n_splits,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_datagen::{generate, spec_by_name};

    #[test]
    fn method_space_cardinality() {
        let space = mixed_method_space(&[ErrorType::MissingValues, ErrorType::Outliers], 3);
        assert_eq!(space.len(), 9);
        for combo in &space {
            assert_eq!(combo.len(), 2);
            // canonical order: missing values before outliers
            assert_eq!(combo[0].error_type, ErrorType::MissingValues);
            assert_eq!(combo[1].error_type, ErrorType::Outliers);
        }
        let full = mixed_method_space(&[ErrorType::MissingValues], usize::MAX);
        assert_eq!(full.len(), 7);
    }

    #[test]
    fn clean_sequence_composes() {
        let data = generate(spec_by_name("Credit").unwrap(), 3);
        let (train, test) = data.dirty.split(0.3, 1).unwrap();
        let combo = vec![
            CleaningMethod::catalogue(ErrorType::MissingValues)[0],
            CleaningMethod::catalogue(ErrorType::Outliers)[0],
        ];
        let (tr, te) = clean_sequence(&combo, &train, &test, 0).unwrap();
        assert_eq!(tr.n_missing_cells(), 0);
        assert_eq!(te.n_missing_cells(), 0);
    }

    #[test]
    fn single_error_dataset_rejected() {
        let data = generate(spec_by_name("EEG").unwrap(), 3);
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        assert!(matches!(
            compare_mixed_vs_single(&data, ErrorType::Outliers, 1, &cfg),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn wrong_single_type_rejected() {
        let data = generate(spec_by_name("Credit").unwrap(), 3);
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        assert!(compare_mixed_vs_single(&data, ErrorType::Duplicates, 1, &cfg).is_err());
    }

    #[test]
    fn credit_comparison_runs() {
        let data = generate(spec_by_name("Credit").unwrap(), 3);
        let cfg = ExperimentConfig { n_splits: 3, parallel: false, ..ExperimentConfig::quick() };
        let cmp = compare_mixed_vs_single(&data, ErrorType::Outliers, 1, &cfg).unwrap();
        assert_eq!(cmp.dataset, "Credit");
        assert_eq!(cmp.single_type, ErrorType::Outliers);
        assert_eq!(cmp.evidence.n_splits, 3);
        assert!((0.0..=1.0).contains(&cmp.evidence.mean_after));
    }
}
