//! Error type for study execution.

use std::fmt;

/// Errors raised while running experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    Dataset(cleanml_dataset::DatasetError),
    Cleaning(cleanml_cleaning::CleaningError),
    Ml(String),
    Stats(String),
    /// The requested experiment does not exist in the study (e.g. CD
    /// scenario for missing values).
    Unsupported(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dataset(e) => write!(f, "dataset error: {e}"),
            CoreError::Cleaning(e) => write!(f, "cleaning error: {e}"),
            CoreError::Ml(m) => write!(f, "model error: {m}"),
            CoreError::Stats(m) => write!(f, "statistics error: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported experiment: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<cleanml_dataset::DatasetError> for CoreError {
    fn from(e: cleanml_dataset::DatasetError) -> Self {
        CoreError::Dataset(e)
    }
}

impl From<cleanml_cleaning::CleaningError> for CoreError {
    fn from(e: cleanml_cleaning::CleaningError) -> Self {
        CoreError::Cleaning(e)
    }
}

impl From<cleanml_ml::MlError> for CoreError {
    fn from(e: cleanml_ml::MlError) -> Self {
        CoreError::Ml(e.to_string())
    }
}

impl From<cleanml_stats::TTestError> for CoreError {
    fn from(e: cleanml_stats::TTestError) -> Self {
        CoreError::Stats(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: CoreError = cleanml_dataset::DatasetError::MissingLabel.into();
        assert!(e.to_string().contains("label"));
        let e: CoreError = cleanml_ml::MlError::EmptyTrainingSet.into();
        assert!(e.to_string().contains("empty"));
        let e = CoreError::Unsupported("CD for missing values".into());
        assert!(e.to_string().contains("CD"));
    }
}
