//! # cleanml-core
//!
//! The CleanML study framework: everything between the substrates
//! (datasets, models, cleaners, statistics) and the paper's result tables.
//!
//! * [`schema`] — the R1/R2/R3 relational schema, scenarios BD/CD, and
//!   experiment specifications (paper §III).
//! * [`config`] — split counts, tuning budgets, significance level.
//! * [`runner`] — the §IV-A protocol: seeded 70/30 splits, leakage-free
//!   cleaning, training with hyper-parameter search, cases B/C/D, and the
//!   [`runner::EvalGrid`] from which all three relations derive without
//!   retraining.
//! * [`database`] — the results database, the per-relation
//!   Benjamini–Yekutieli procedure (§IV-C), and query templates Q1–Q5 (§V-A).
//! * [`analysis`] — paper-style table rendering.
//! * [`study`] — orchestration across datasets/error types, including the
//!   13 mislabel variants.
//! * [`tasks`] — the protocol decomposed into pure, `Send` task units
//!   (`Split` → `Clean` → `Train` → `Evaluate`) that `cleanml-engine`
//!   schedules across a worker pool.
//! * [`mixed`] — cleaning mixed error types vs. single types (§VII-A,
//!   Table 17).
//! * [`robust`] — cleaning vs. robust-ML baselines NaCL and MLP (§VII-B,
//!   Table 18).
//! * [`human`] — ground-truth ("human") cleaning vs. the best automatic
//!   method (§VII-C, Table 19).

pub mod analysis;
pub mod config;
pub mod database;
pub mod error;
pub mod human;
pub mod mixed;
pub mod robust;
pub mod runner;
pub mod schema;
pub mod study;
pub mod tasks;

pub use config::ExperimentConfig;
pub use database::{CleanMlDb, FlagDist, Relation};
pub use error::CoreError;
pub use runner::{evaluate_grid, run_r1_experiment, EvalGrid, ExperimentOutcome, Result};
pub use schema::{Flag, Scenario, Spec1, Spec2, Spec3};
pub use study::{dataset_plan, generate_datasets_for, run_study, DatasetPlan};
