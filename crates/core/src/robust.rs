//! Data cleaning vs. robust-ML approaches (paper §VII-B, Table 18).
//!
//! Instead of cleaning, one can train a model designed to tolerate the
//! dirt: **NaCL** (a logistic regression robust to missing features) for
//! missing values, or a tuned **MLP** as a generally noise-tolerant deep
//! baseline for the other error types. Per split, the cleaning side selects
//! its best cleaning method (and, depending on the row, its best model) by
//! validation score, while the robust side trains directly on the dirty
//! training partition. Both are evaluated on the same cleaned test set;
//! **P** means cleaning beat the robust model.

use cleanml_cleaning::{clean_pair, CleaningMethod, ErrorType};
use cleanml_datagen::GeneratedDataset;
use cleanml_dataset::Encoder;
use cleanml_ml::cv::random_search;
use cleanml_ml::{ModelKind, PAPER_MODELS};
use cleanml_stats::{flag_from_tests, paired_t_test, Flag};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::runner::{best_model_eval, label_classes, metric_for, Result};
use crate::schema::Evidence;

/// The robust baseline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustBaseline {
    /// NaCL-style missing-feature-robust logistic regression.
    Nacl,
    /// Three-layer MLP (the paper's optuna-tuned deep baseline).
    Mlp,
}

impl RobustBaseline {
    fn kind(self) -> ModelKind {
        match self {
            RobustBaseline::Nacl => ModelKind::Nacl,
            RobustBaseline::Mlp => ModelKind::Mlp,
        }
    }

    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RobustBaseline::Nacl => "NaCL",
            RobustBaseline::Mlp => "MLP",
        }
    }
}

/// One Table 18 comparison result.
#[derive(Debug, Clone)]
pub struct RobustComparison {
    pub dataset: String,
    pub error_type: ErrorType,
    pub baseline: RobustBaseline,
    /// Model pool for the cleaning side (just LR for Table 18 row 1).
    pub cleaning_pool: Vec<ModelKind>,
    pub flag: Flag,
    pub evidence: Evidence,
}

/// Compares best-cleaning (+ model selection over `cleaning_pool`) against
/// `baseline` trained on the dirty data.
pub fn compare_cleaning_vs_robust(
    data: &GeneratedDataset,
    error_type: ErrorType,
    cleaning_pool: &[ModelKind],
    baseline: RobustBaseline,
    cfg: &ExperimentConfig,
) -> Result<RobustComparison> {
    if cleaning_pool.is_empty() {
        return Err(CoreError::Unsupported("empty cleaning-side model pool".into()));
    }
    let metric = metric_for(data)?;
    let classes = label_classes(&data.dirty)?;
    let methods = CleaningMethod::catalogue(error_type);

    let mut robust_accs = Vec::with_capacity(cfg.n_splits);
    let mut cleaning_accs = Vec::with_capacity(cfg.n_splits);

    for s in 0..cfg.n_splits {
        let (train0, test0) = data.dirty.split(cfg.test_fraction, cfg.split_seed(s))?;
        let seed = cfg.fit_seed(s);

        // Cleaning side: best method by validation of its best model.
        let mut best: Option<(f64, f64, cleanml_dataset::Table)> = None; // (val, acc, clean test)
        for (mi, method) in methods.iter().enumerate() {
            let out = clean_pair(method, &train0, &test0, seed.wrapping_add(mi as u64))?;
            let eval = best_model_eval(
                &out.train,
                &out.test,
                cleaning_pool,
                metric,
                &classes,
                cfg,
                seed.wrapping_add(100 + mi as u64),
            )?;
            if best.as_ref().is_none_or(|(bv, _, _)| eval.val > *bv) {
                best = Some((eval.val, eval.acc, out.test));
            }
        }
        let (_, clean_acc, chosen_test) = best.expect("catalogue non-empty");

        // Robust side: baseline trained on the *dirty* training partition,
        // evaluated on the same cleaned test set.
        let enc = Encoder::fit_with_classes(&train0, &classes)?;
        let train_m = enc.transform(&train0)?;
        let test_m = enc.transform(&chosen_test)?;
        let search = random_search(baseline.kind(), &train_m, cfg.search, seed, metric)?;
        let model = search.spec.fit(&train_m, seed)?;
        let preds = model.predict(&test_m)?;
        let robust_acc = metric.score(test_m.labels(), &preds);

        robust_accs.push(robust_acc);
        cleaning_accs.push(clean_acc);
    }

    let t = paired_t_test(&cleaning_accs, &robust_accs)?;
    let flag = flag_from_tests(&t, cfg.alpha);
    Ok(RobustComparison {
        dataset: data.name.clone(),
        error_type,
        baseline,
        cleaning_pool: cleaning_pool.to_vec(),
        flag,
        evidence: Evidence {
            p_two: t.p_two,
            p_upper: t.p_upper,
            p_lower: t.p_lower,
            mean_before: robust_accs.iter().sum::<f64>() / robust_accs.len() as f64,
            mean_after: cleaning_accs.iter().sum::<f64>() / cleaning_accs.len() as f64,
            n_splits: cfg.n_splits,
        },
    })
}

/// The paper's Table 18 row definitions for a given error type.
pub fn table18_pool(row_is_lr_only: bool) -> Vec<ModelKind> {
    if row_is_lr_only {
        vec![ModelKind::LogisticRegression]
    } else {
        PAPER_MODELS.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_datagen::{generate, spec_by_name};

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig { n_splits: 3, parallel: false, ..ExperimentConfig::quick() }
    }

    #[test]
    fn nacl_vs_lr_cleaning_on_missing_values() {
        let data = generate(spec_by_name("Titanic").unwrap(), 5);
        let cmp = compare_cleaning_vs_robust(
            &data,
            ErrorType::MissingValues,
            &table18_pool(true),
            RobustBaseline::Nacl,
            &quick_cfg(),
        )
        .unwrap();
        assert_eq!(cmp.baseline, RobustBaseline::Nacl);
        assert_eq!(cmp.cleaning_pool, vec![ModelKind::LogisticRegression]);
        assert!((0.0..=1.0).contains(&cmp.evidence.mean_before));
        assert!((0.0..=1.0).contains(&cmp.evidence.mean_after));
    }

    #[test]
    fn mlp_vs_best_cleaning_on_outliers() {
        let data = generate(spec_by_name("Sensor").unwrap(), 5);
        // tiny pool keeps the test fast while exercising the full path
        let cmp = compare_cleaning_vs_robust(
            &data,
            ErrorType::Outliers,
            &[ModelKind::DecisionTree, ModelKind::NaiveBayes],
            RobustBaseline::Mlp,
            &quick_cfg(),
        )
        .unwrap();
        assert_eq!(cmp.baseline.name(), "MLP");
        assert_eq!(cmp.evidence.n_splits, 3);
    }

    #[test]
    fn empty_pool_rejected() {
        let data = generate(spec_by_name("Sensor").unwrap(), 5);
        assert!(compare_cleaning_vs_robust(
            &data,
            ErrorType::Outliers,
            &[],
            RobustBaseline::Mlp,
            &quick_cfg(),
        )
        .is_err());
    }
}
