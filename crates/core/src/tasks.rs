//! Pure task units of the §IV-A protocol.
//!
//! The experiment for one dataset × error type decomposes into a DAG of
//! side-effect-free, `Send` steps — exactly the decomposition
//! `cleanml-engine` schedules across its worker pool:
//!
//! ```text
//! GenerateDataset ──► DatasetContext
//!        │
//!        ├─► Split(s) ────────────► Train(dirty, model k)   (per model)
//!        │      │                          │
//!        │      └─► Clean(method m) ─► Train(clean, m, k)   (per model)
//!        │                 │                │
//!        │                 └────────────────┴─► Evaluate(s, m, k) = CellEval
//! ```
//!
//! Every function here is deterministic in its explicit seed arguments; the
//! serial runner ([`crate::runner::evaluate_grid_with`]) calls the same
//! units in a nested loop, so an engine run with any worker count produces
//! byte-identical cells by construction.
//!
//! Seed discipline (matching the original in-line runner):
//! `fit_seed = cfg.fit_seed(split)`; the dirty-side model `k` trains with
//! `fit_seed + k`; cleaning method `m` fits with `fit_seed + 1000 + m`; the
//! clean-side model `(m, k)` trains with `fit_seed + 2000 + m·n_models + k`.

use cleanml_cleaning::{clean_pair, CleaningMethod, ErrorType};
use cleanml_datagen::GeneratedDataset;
use cleanml_dataset::{Encoder, FeatureMatrix, Table};
use cleanml_ml::cv::{random_search_with_plan, FoldPlan};
use cleanml_ml::{FittedModel, Metric, ModelKind};

use crate::config::ExperimentConfig;
use crate::runner::{label_classes, metric_for, CellEval, Result};

/// Per-dataset facts shared by every downstream task: the scoring metric and
/// the label-class vocabulary (fit once on the full dirty table so encoders
/// of all splits agree).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetContext {
    pub metric: Metric,
    pub classes: Vec<String>,
}

/// Derives the [`DatasetContext`] for a generated dataset.
pub fn dataset_context(data: &GeneratedDataset) -> Result<DatasetContext> {
    Ok(DatasetContext { metric: metric_for(data)?, classes: label_classes(&data.dirty)? })
}

/// Output of the `Split` task: the seeded 70/30 partition plus the
/// dirty-side baseline artifacts every method shares.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitArtifact {
    /// Raw dirty training partition (input to cleaning).
    pub train0: Table,
    /// Raw dirty test partition (input to cleaning).
    pub test0: Table,
    /// The "dirty" training baseline: deletion-repaired for missing values
    /// (paper Table 5), the raw partition otherwise.
    pub dirty_train: Table,
    /// Encoder fit on the dirty training baseline.
    pub enc_dirty: Encoder,
    /// The encoded dirty training matrix (input to dirty-side training).
    pub dirty_matrix: FeatureMatrix,
}

/// `Split` task: partitions the dirty table for split `s` and prepares the
/// dirty-side baseline.
pub fn make_split(
    data: &GeneratedDataset,
    error_type: ErrorType,
    ctx: &DatasetContext,
    cfg: &ExperimentConfig,
    split: usize,
) -> Result<SplitArtifact> {
    let (train0, test0) = data.dirty.split(cfg.test_fraction, cfg.split_seed(split))?;
    let dirty_train = match error_type {
        ErrorType::MissingValues => train0.drop_rows_with_missing(),
        _ => train0.clone(),
    };
    let enc_dirty = Encoder::fit_with_classes(&dirty_train, &ctx.classes)?;
    let dirty_matrix = enc_dirty.transform(&dirty_train)?;
    Ok(SplitArtifact { train0, test0, dirty_train, enc_dirty, dirty_matrix })
}

/// Output of the `Clean(method)` task: every encoded matrix the method's
/// train/evaluate steps consume.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanArtifact {
    /// Cleaned training matrix (clean-side training input).
    pub clean_train_m: FeatureMatrix,
    /// Cleaned test matrix under the clean-side encoder (case D).
    pub clean_test_m: FeatureMatrix,
    /// Dirty test matrix under the clean-side encoder (case C; absent for
    /// missing values where only scenario BD exists).
    pub dirty_test_m: Option<FeatureMatrix>,
    /// Cleaned test matrix under the *dirty-side* encoder (case B).
    pub clean_test_for_dirty: FeatureMatrix,
}

/// `Clean(method)` task: fits cleaning method `mi` on the training partition,
/// applies it to both partitions and encodes every evaluation matrix.
pub fn make_clean(
    method: &CleaningMethod,
    mi: usize,
    error_type: ErrorType,
    split: &SplitArtifact,
    ctx: &DatasetContext,
    fit_seed: u64,
) -> Result<CleanArtifact> {
    let outcome =
        clean_pair(method, &split.train0, &split.test0, fit_seed.wrapping_add(1000 + mi as u64))?;
    let enc_clean = Encoder::fit_with_classes(&outcome.train, &ctx.classes)?;
    let clean_train_m = enc_clean.transform(&outcome.train)?;
    let clean_test_m = enc_clean.transform(&outcome.test)?;
    let dirty_test_m = match error_type {
        ErrorType::MissingValues => None,
        _ => Some(enc_clean.transform(&split.test0)?),
    };
    let clean_test_for_dirty = split.enc_dirty.transform(&outcome.test)?;
    Ok(CleanArtifact { clean_train_m, clean_test_m, dirty_test_m, clean_test_for_dirty })
}

/// Output of a `Train` task: a fitted model plus its validation score.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    pub model: FittedModel,
    pub val: f64,
}

/// Fits one model family with the configured search and returns the fitted
/// model plus its validation score.
///
/// The Train body builds one [`FoldPlan`] for its `(n_rows, cv_folds,
/// seed)` key and scores every search candidate against it, so the fold
/// matrices (and their argsort sidecars) are materialized once per Train
/// task instead of once per candidate, and the `(candidate, fold)` grid can
/// drain onto idle pool workers through the engine's subwork bridge.
pub fn fit_scored(
    kind: ModelKind,
    data: &FeatureMatrix,
    cfg: &ExperimentConfig,
    metric: Metric,
    seed: u64,
) -> Result<TrainedModel> {
    let plan = FoldPlan::new(data, cfg.search.cv_folds, seed)?;
    let search = random_search_with_plan(kind, &plan, cfg.search, seed, metric)?;
    let model = search.spec.fit(data, seed)?;
    Ok(TrainedModel { model, val: search.val_score })
}

/// Scores a fitted model on an encoded matrix.
pub fn score_model(model: &FittedModel, data: &FeatureMatrix, metric: Metric) -> Result<f64> {
    let preds = model.predict(data)?;
    Ok(metric.score(data.labels(), &preds))
}

/// `Train(model, dirty)` task: model family `ki` on the dirty baseline.
pub fn train_dirty(
    kind: ModelKind,
    ki: usize,
    split: &SplitArtifact,
    ctx: &DatasetContext,
    cfg: &ExperimentConfig,
    fit_seed: u64,
) -> Result<TrainedModel> {
    fit_scored(kind, &split.dirty_matrix, cfg, ctx.metric, fit_seed.wrapping_add(ki as u64))
}

/// `Train(model, clean(method))` task: model family `ki` on method `mi`'s
/// cleaned training set.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's seed discipline
pub fn train_clean(
    kind: ModelKind,
    ki: usize,
    mi: usize,
    n_models: usize,
    clean: &CleanArtifact,
    ctx: &DatasetContext,
    cfg: &ExperimentConfig,
    fit_seed: u64,
) -> Result<TrainedModel> {
    fit_scored(
        kind,
        &clean.clean_train_m,
        cfg,
        ctx.metric,
        fit_seed.wrapping_add(2000 + (mi * n_models + ki) as u64),
    )
}

/// `Evaluate` task: scores the trained pair on cases B, C and D to produce
/// one grid cell.
pub fn evaluate_cell(
    dirty: &TrainedModel,
    clean: &TrainedModel,
    artifact: &CleanArtifact,
    ctx: &DatasetContext,
) -> Result<CellEval> {
    let acc_d = score_model(&clean.model, &artifact.clean_test_m, ctx.metric)?;
    let acc_c = match &artifact.dirty_test_m {
        Some(m) => Some(score_model(&clean.model, m, ctx.metric)?),
        None => None,
    };
    let acc_b = score_model(&dirty.model, &artifact.clean_test_for_dirty, ctx.metric)?;
    Ok(CellEval { val_dirty: dirty.val, val_clean: clean.val, acc_b, acc_c, acc_d })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_datagen::{generate, spec_by_name};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn artifacts_are_send_and_sync() {
        assert_send_sync::<DatasetContext>();
        assert_send_sync::<SplitArtifact>();
        assert_send_sync::<CleanArtifact>();
        assert_send_sync::<TrainedModel>();
    }

    #[test]
    fn task_units_compose_into_a_cell() {
        let data = generate(spec_by_name("Sensor").unwrap(), 11);
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        let ctx = dataset_context(&data).unwrap();
        let et = ErrorType::Outliers;
        let method = CleaningMethod::catalogue(et)[0];
        let kind = cleanml_ml::ModelKind::DecisionTree;

        let split = make_split(&data, et, &ctx, &cfg, 0).unwrap();
        let fit_seed = cfg.fit_seed(0);
        let clean = make_clean(&method, 0, et, &split, &ctx, fit_seed).unwrap();
        let dm = train_dirty(kind, 0, &split, &ctx, &cfg, fit_seed).unwrap();
        let cm = train_clean(kind, 0, 0, 1, &clean, &ctx, &cfg, fit_seed).unwrap();
        let cell = evaluate_cell(&dm, &cm, &clean, &ctx).unwrap();
        assert!((0.0..=1.0).contains(&cell.acc_b));
        assert!((0.0..=1.0).contains(&cell.acc_d));
        assert!(cell.acc_c.is_some(), "outliers support scenario CD");
    }

    #[test]
    fn task_units_deterministic() {
        let data = generate(spec_by_name("Sensor").unwrap(), 13);
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        let ctx = dataset_context(&data).unwrap();
        let et = ErrorType::Outliers;
        let method = CleaningMethod::catalogue(et)[0];
        let kind = cleanml_ml::ModelKind::NaiveBayes;
        let fit_seed = cfg.fit_seed(1);

        let run = || {
            let split = make_split(&data, et, &ctx, &cfg, 1).unwrap();
            let clean = make_clean(&method, 0, et, &split, &ctx, fit_seed).unwrap();
            let dm = train_dirty(kind, 0, &split, &ctx, &cfg, fit_seed).unwrap();
            let cm = train_clean(kind, 0, 0, 1, &clean, &ctx, &cfg, fit_seed).unwrap();
            evaluate_cell(&dm, &cm, &clean, &ctx).unwrap()
        };
        assert_eq!(run(), run());
    }
}
