//! Experiment configuration: how faithfully (and expensively) to run the
//! paper's protocol.

use cleanml_ml::cv::SearchBudget;

/// Controls splits, tuning effort and significance level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Number of train/test splits aggregated per experiment (paper: 20).
    pub n_splits: usize,
    /// Test fraction (paper: 0.3).
    pub test_fraction: f64,
    /// Hyper-parameter search budget per model fit.
    pub search: SearchBudget,
    /// Significance level α (paper: 0.05).
    pub alpha: f64,
    /// Base seed; split `s` uses `base_seed + s`.
    pub base_seed: u64,
    /// Run splits on multiple threads.
    pub parallel: bool,
}

impl ExperimentConfig {
    /// CI-friendly: 6 splits, no tuning, 2-fold validation scores.
    pub fn quick() -> Self {
        ExperimentConfig {
            n_splits: 6,
            test_fraction: 0.3,
            search: SearchBudget { n_candidates: 1, cv_folds: 2 },
            alpha: cleanml_stats::ALPHA,
            base_seed: 1,
            parallel: true,
        }
    }

    /// The harness default: the paper's 20 splits with default
    /// hyper-parameters scored by 2-fold validation.
    pub fn standard() -> Self {
        ExperimentConfig {
            n_splits: 20,
            search: SearchBudget { n_candidates: 1, cv_folds: 2 },
            ..Self::quick()
        }
    }

    /// Paper-faithful: 20 splits, random search with 5-fold CV. Expensive.
    pub fn paper() -> Self {
        ExperimentConfig { n_splits: 20, search: SearchBudget::paper(), ..Self::quick() }
    }

    /// Seed for split `s`.
    pub fn split_seed(&self, s: usize) -> u64 {
        self.base_seed.wrapping_add(s as u64)
    }

    /// Model-fit seed for split `s` (decorrelated from the split seed).
    pub fn fit_seed(&self, s: usize) -> u64 {
        self.split_seed(s).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(ExperimentConfig::standard().n_splits, 20);
        assert_eq!(ExperimentConfig::paper().search, SearchBudget::paper());
        assert!(ExperimentConfig::quick().n_splits < 20);
        assert_eq!(ExperimentConfig::default(), ExperimentConfig::standard());
    }

    #[test]
    fn seeds_distinct_per_split() {
        let cfg = ExperimentConfig::quick();
        assert_ne!(cfg.split_seed(0), cfg.split_seed(1));
        assert_ne!(cfg.fit_seed(0), cfg.fit_seed(1));
        assert_ne!(cfg.split_seed(2), cfg.fit_seed(2));
    }
}
