//! The CleanML results database: relations R1/R2/R3, Benjamini–Yekutieli
//! control, and the paper's five query templates.
//!
//! Paper §IV-C runs one BY procedure per relation over *all* its p-values
//! (three per experiment — two-tailed, upper, lower — hence "3612, 516 and
//! 168 hypotheses" for relations of 1204, 172 and 56 rows). Flags are then
//! re-derived: a row keeps P/N only if both its two-tailed test and the
//! matching one-tailed test survive the correction.
//!
//! §V-A's query templates are implemented directly:
//! Q1 groups by flag; Q2 adds the scenario; Q3 the model; Q4.1/Q4.2 the
//! detection/repair method; Q5 the dataset.

use std::collections::BTreeMap;

use cleanml_stats::{Correction, Flag};

use crate::schema::{Detection, ErrorType, Evidence, Model, Repair, Row1, Row2, Row3, Scenario};

/// Counts of P/S/N flags in one query group (one line of a paper table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlagDist {
    pub p: usize,
    pub s: usize,
    pub n: usize,
}

impl FlagDist {
    /// Adds one flag.
    pub fn add(&mut self, flag: Flag) {
        match flag {
            Flag::Positive => self.p += 1,
            Flag::Insignificant => self.s += 1,
            Flag::Negative => self.n += 1,
        }
    }

    /// Total experiments in the group.
    pub fn total(&self) -> usize {
        self.p + self.s + self.n
    }

    /// Percentage of a flag kind (0–100).
    pub fn pct(&self, flag: Flag) -> f64 {
        let count = match flag {
            Flag::Positive => self.p,
            Flag::Insignificant => self.s,
            Flag::Negative => self.n,
        };
        if self.total() == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total() as f64
        }
    }

    /// Paper-style cell rendering: `49% (143)`.
    pub fn render(&self, flag: Flag) -> String {
        let count = match flag {
            Flag::Positive => self.p,
            Flag::Insignificant => self.s,
            Flag::Negative => self.n,
        };
        format!("{:.0}% ({})", self.pct(flag), count)
    }
}

/// Which relation a query targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    R1,
    R2,
    R3,
}

/// The in-memory CleanML database instance.
#[derive(Debug, Clone, Default)]
pub struct CleanMlDb {
    pub r1: Vec<Row1>,
    pub r2: Vec<Row2>,
    pub r3: Vec<Row3>,
}

fn corrected_flag(survive: &[bool; 3]) -> Flag {
    // survive = [two-tailed, upper, lower] after FDR control.
    if !survive[0] {
        Flag::Insignificant
    } else if survive[1] {
        Flag::Positive
    } else if survive[2] {
        Flag::Negative
    } else {
        Flag::Insignificant
    }
}

/// Applies an FDR correction over all 3·m p-values of one relation's rows,
/// rewriting flags in place.
fn correct_rows<'a, I>(rows: I, correction: Correction, alpha: f64)
where
    I: IntoIterator<Item = (&'a mut Flag, &'a Evidence)>,
{
    let items: Vec<(&'a mut Flag, &'a Evidence)> = rows.into_iter().collect();
    let mut pvals = Vec::with_capacity(items.len() * 3);
    for (_, e) in &items {
        pvals.push(e.p_two);
        pvals.push(e.p_upper);
        pvals.push(e.p_lower);
    }
    let survive = correction.apply(&pvals, alpha);
    for (i, (flag, _)) in items.into_iter().enumerate() {
        let s = [survive[3 * i], survive[3 * i + 1], survive[3 * i + 2]];
        *flag = corrected_flag(&s);
    }
}

impl CleanMlDb {
    /// Number of hypotheses per relation (3 per row, paper §IV-C).
    pub fn n_hypotheses(&self, relation: Relation) -> usize {
        3 * match relation {
            Relation::R1 => self.r1.len(),
            Relation::R2 => self.r2.len(),
            Relation::R3 => self.r3.len(),
        }
    }

    /// Runs the paper's BY procedure (α = 0.05) separately per relation,
    /// rewriting every row's flag.
    pub fn apply_benjamini_yekutieli(&mut self, alpha: f64) {
        self.apply_correction(Correction::BenjaminiYekutieli, alpha);
    }

    /// Runs an arbitrary correction per relation (for the ablation bench
    /// comparing BY with BH / Bonferroni / uncorrected).
    pub fn apply_correction(&mut self, correction: Correction, alpha: f64) {
        correct_rows(self.r1.iter_mut().map(|r| (&mut r.flag, &r.evidence)), correction, alpha);
        correct_rows(self.r2.iter_mut().map(|r| (&mut r.flag, &r.evidence)), correction, alpha);
        correct_rows(self.r3.iter_mut().map(|r| (&mut r.flag, &r.evidence)), correction, alpha);
    }

    // --- Query templates (paper §V-A) ------------------------------------

    /// Q1: flag distribution for one error type over a relation.
    pub fn q1(&self, relation: Relation, error_type: ErrorType) -> FlagDist {
        let mut dist = FlagDist::default();
        self.for_each(relation, error_type, |flag, _, _, _, _, _| dist.add(flag));
        dist
    }

    /// Q2: grouped by scenario.
    pub fn q2(&self, relation: Relation, error_type: ErrorType) -> BTreeMap<Scenario, FlagDist> {
        let mut map = BTreeMap::new();
        self.for_each(relation, error_type, |flag, _, scenario, _, _, _| {
            map.entry(scenario).or_insert_with(FlagDist::default).add(flag);
        });
        map
    }

    /// Q3: grouped by ML model (R1 only — R2/R3 have no model attribute).
    pub fn q3(&self, error_type: ErrorType) -> BTreeMap<Model, FlagDist> {
        let mut map = BTreeMap::new();
        for r in self.r1.iter().filter(|r| r.error_type == error_type) {
            map.entry(r.model).or_insert_with(FlagDist::default).add(r.flag);
        }
        map
    }

    /// Q4.1: grouped by detection method (R1/R2).
    pub fn q4_detection(
        &self,
        relation: Relation,
        error_type: ErrorType,
    ) -> BTreeMap<Detection, FlagDist> {
        let mut map = BTreeMap::new();
        self.for_each(relation, error_type, |flag, _, _, detection, _, _| {
            if let Some(d) = detection {
                map.entry(d).or_insert_with(FlagDist::default).add(flag);
            }
        });
        map
    }

    /// Q4.2: grouped by repair method (R1/R2).
    pub fn q4_repair(
        &self,
        relation: Relation,
        error_type: ErrorType,
    ) -> BTreeMap<Repair, FlagDist> {
        let mut map = BTreeMap::new();
        self.for_each(relation, error_type, |flag, _, _, _, repair, _| {
            if let Some(r) = repair {
                map.entry(r).or_insert_with(FlagDist::default).add(flag);
            }
        });
        map
    }

    /// Q5: grouped by dataset.
    pub fn q5(&self, relation: Relation, error_type: ErrorType) -> BTreeMap<String, FlagDist> {
        let mut map = BTreeMap::new();
        self.for_each(relation, error_type, |flag, dataset, _, _, _, _| {
            map.entry(dataset.to_owned()).or_insert_with(FlagDist::default).add(flag);
        });
        map
    }

    /// Internal row visitor unifying the three relations.
    fn for_each<F>(&self, relation: Relation, error_type: ErrorType, mut f: F)
    where
        F: FnMut(Flag, &str, Scenario, Option<Detection>, Option<Repair>, Option<Model>),
    {
        match relation {
            Relation::R1 => {
                for r in self.r1.iter().filter(|r| r.error_type == error_type) {
                    f(
                        r.flag,
                        &r.dataset,
                        r.scenario,
                        Some(r.detection),
                        Some(r.repair),
                        Some(r.model),
                    );
                }
            }
            Relation::R2 => {
                for r in self.r2.iter().filter(|r| r.error_type == error_type) {
                    f(r.flag, &r.dataset, r.scenario, Some(r.detection), Some(r.repair), None);
                }
            }
            Relation::R3 => {
                for r in self.r3.iter().filter(|r| r.error_type == error_type) {
                    f(r.flag, &r.dataset, r.scenario, None, None, None);
                }
            }
        }
    }
}

/// Escapes one CSV field per RFC 4180: fields containing commas, quotes,
/// newlines or carriage returns are quoted, with embedded quotes doubled.
/// The single canonical implementation — `cleanml_bench` re-exports it —
/// so the dumped files and the serving layer's wire CSV can never drift.
pub fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Column names of R1's canonical CSV form, in header order.
pub const R1_COLUMNS: [&str; 13] = [
    "dataset",
    "error_type",
    "detection",
    "repair",
    "model",
    "scenario",
    "flag",
    "p_two",
    "p_upper",
    "p_lower",
    "mean_before",
    "mean_after",
    "n_splits",
];

/// Column names of R2's canonical CSV form, in header order.
pub const R2_COLUMNS: [&str; 9] = [
    "dataset",
    "error_type",
    "detection",
    "repair",
    "scenario",
    "flag",
    "p_two",
    "mean_before",
    "mean_after",
];

/// Column names of R3's canonical CSV form, in header order.
pub const R3_COLUMNS: [&str; 7] =
    ["dataset", "error_type", "scenario", "flag", "p_two", "mean_before", "mean_after"];

/// Index of the first numeric column in each relation; every column from
/// here on renders as a number (p-values, means, split counts), everything
/// before it as a string. Consumers rendering rows as typed output (the
/// HTTP gateway's JSON) key off this.
pub const R1_NUMERIC_FROM: usize = 7;
pub const R2_NUMERIC_FROM: usize = 6;
pub const R3_NUMERIC_FROM: usize = 4;

/// Canonical per-column renderings of one R1 row, in [`R1_COLUMNS`] order.
/// P-values render in `{:e}`, means in `{}` — the exact strings the CSV
/// form carries, so any consumer (paging, filtering, JSON) that renders
/// these values byte-matches [`CleanMlDb::r1_csv`].
pub fn r1_values(r: &Row1) -> [String; 13] {
    [
        r.dataset.clone(),
        r.error_type.name().to_string(),
        r.detection.name().to_string(),
        r.repair.name().to_string(),
        r.model.name().to_string(),
        r.scenario.to_string(),
        r.flag.to_string(),
        format!("{:e}", r.evidence.p_two),
        format!("{:e}", r.evidence.p_upper),
        format!("{:e}", r.evidence.p_lower),
        format!("{}", r.evidence.mean_before),
        format!("{}", r.evidence.mean_after),
        format!("{}", r.evidence.n_splits),
    ]
}

/// Canonical per-column renderings of one R2 row, in [`R2_COLUMNS`] order.
pub fn r2_values(r: &Row2) -> [String; 9] {
    [
        r.dataset.clone(),
        r.error_type.name().to_string(),
        r.detection.name().to_string(),
        r.repair.name().to_string(),
        r.scenario.to_string(),
        r.flag.to_string(),
        format!("{:e}", r.evidence.p_two),
        format!("{}", r.evidence.mean_before),
        format!("{}", r.evidence.mean_after),
    ]
}

/// Canonical per-column renderings of one R3 row, in [`R3_COLUMNS`] order.
pub fn r3_values(r: &Row3) -> [String; 7] {
    [
        r.dataset.clone(),
        r.error_type.name().to_string(),
        r.scenario.to_string(),
        r.flag.to_string(),
        format!("{:e}", r.evidence.p_two),
        format!("{}", r.evidence.mean_before),
        format!("{}", r.evidence.mean_after),
    ]
}

/// One CSV line (escaped, comma-joined, newline-terminated) from already
/// canonical field renderings.
pub fn csv_line(values: &[String]) -> String {
    let mut out = String::with_capacity(values.iter().map(|v| v.len() + 1).sum());
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&csv_escape(v));
    }
    out.push('\n');
    out
}

fn csv_header(columns: &[&str]) -> String {
    let mut out = columns.join(",");
    out.push('\n');
    out
}

/// CSV rendering of the relations — the canonical on-disk / on-wire form
/// shared by the `study` binary's dump, the serving layer's `ResultCsv`
/// and the HTTP gateway's row pages. Floats render p-values in `{:e}` and
/// means in `{}` so a byte-compare across runs is a real determinism
/// check; the whole-relation strings are built row by row from
/// [`r1_values`]/[`r2_values`]/[`r3_values`], so a paged slice of rows is
/// byte-identical to the matching slice of the full CSV.
impl CleanMlDb {
    /// R1 as CSV text, header included.
    pub fn r1_csv(&self) -> String {
        let mut out = csv_header(&R1_COLUMNS);
        for r in &self.r1 {
            out.push_str(&csv_line(&r1_values(r)));
        }
        out
    }

    /// R2 as CSV text, header included.
    pub fn r2_csv(&self) -> String {
        let mut out = csv_header(&R2_COLUMNS);
        for r in &self.r2 {
            out.push_str(&csv_line(&r2_values(r)));
        }
        out
    }

    /// R3 as CSV text, header included.
    pub fn r3_csv(&self) -> String {
        let mut out = csv_header(&R3_COLUMNS);
        for r in &self.r3 {
            out.push_str(&csv_line(&r3_values(r)));
        }
        out
    }

    /// All rows of `relation` as canonical per-column renderings — the
    /// row-granular form the HTTP gateway filters, orders and pages
    /// without re-parsing whole-CSV strings.
    pub fn relation_values(&self, relation: Relation) -> Vec<Vec<String>> {
        match relation {
            Relation::R1 => self.r1.iter().map(|r| r1_values(r).to_vec()).collect(),
            Relation::R2 => self.r2.iter().map(|r| r2_values(r).to_vec()).collect(),
            Relation::R3 => self.r3.iter().map(|r| r3_values(r).to_vec()).collect(),
        }
    }
}

/// `(column names, index of the first numeric column)` for a relation.
pub fn relation_columns(relation: Relation) -> (&'static [&'static str], usize) {
    match relation {
        Relation::R1 => (&R1_COLUMNS, R1_NUMERIC_FROM),
        Relation::R2 => (&R2_COLUMNS, R2_NUMERIC_FROM),
        Relation::R3 => (&R3_COLUMNS, R3_NUMERIC_FROM),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence(p: f64) -> Evidence {
        // direction: positive improvement with one-tailed p = p/2
        Evidence {
            p_two: p,
            p_upper: p / 2.0,
            p_lower: 1.0 - p / 2.0,
            mean_before: 0.8,
            mean_after: 0.85,
            n_splits: 20,
        }
    }

    fn row1(dataset: &str, et: ErrorType, model: Model, scenario: Scenario, p: f64) -> Row1 {
        Row1 {
            dataset: dataset.into(),
            error_type: et,
            detection: Detection::Iqr,
            repair: Repair::ImputeMean,
            model,
            scenario,
            flag: cleanml_stats::flag_from_pvalues(p, p / 2.0, 1.0 - p / 2.0, 0.05),
            evidence: evidence(p),
        }
    }

    fn sample_db() -> CleanMlDb {
        let mut db = CleanMlDb::default();
        for (i, p) in [1e-8, 0.5, 0.03, 1e-6].iter().enumerate() {
            db.r1.push(row1(
                if i % 2 == 0 { "EEG" } else { "Sensor" },
                ErrorType::Outliers,
                if i < 2 { Model::Knn } else { Model::NaiveBayes },
                if i % 2 == 0 { Scenario::BD } else { Scenario::CD },
                *p,
            ));
        }
        db
    }

    #[test]
    fn q1_counts() {
        let db = sample_db();
        let d = db.q1(Relation::R1, ErrorType::Outliers);
        assert_eq!(d.total(), 4);
        assert_eq!(d.p, 3);
        assert_eq!(d.s, 1);
        // unrelated error type is empty
        assert_eq!(db.q1(Relation::R1, ErrorType::Duplicates).total(), 0);
    }

    #[test]
    fn groupings() {
        let db = sample_db();
        let by_scenario = db.q2(Relation::R1, ErrorType::Outliers);
        assert_eq!(by_scenario[&Scenario::BD].total(), 2);
        assert_eq!(by_scenario[&Scenario::CD].total(), 2);
        let by_model = db.q3(ErrorType::Outliers);
        assert_eq!(by_model[&Model::Knn].total(), 2);
        let by_dataset = db.q5(Relation::R1, ErrorType::Outliers);
        assert_eq!(by_dataset["EEG"].total(), 2);
        let by_det = db.q4_detection(Relation::R1, ErrorType::Outliers);
        assert_eq!(by_det[&Detection::Iqr].total(), 4);
    }

    #[test]
    fn by_correction_reduces_or_keeps_positives() {
        let mut db = sample_db();
        let before = db.q1(Relation::R1, ErrorType::Outliers);
        db.apply_benjamini_yekutieli(0.05);
        let after = db.q1(Relation::R1, ErrorType::Outliers);
        assert!(after.p <= before.p, "BY cannot create discoveries");
        assert_eq!(after.total(), before.total());
        // The 0.03 row is borderline: with 12 hypotheses BY should kill it.
        assert!(after.s >= before.s);
    }

    #[test]
    fn hypothesis_count_is_three_per_row() {
        let db = sample_db();
        assert_eq!(db.n_hypotheses(Relation::R1), 12);
        assert_eq!(db.n_hypotheses(Relation::R2), 0);
    }

    #[test]
    fn flag_dist_rendering() {
        let mut d = FlagDist::default();
        d.add(Flag::Positive);
        d.add(Flag::Positive);
        d.add(Flag::Negative);
        d.add(Flag::Insignificant);
        assert_eq!(d.render(Flag::Positive), "50% (2)");
        assert_eq!(d.pct(Flag::Negative), 25.0);
    }

    #[test]
    fn row_values_pin_canonical_formats() {
        let r = row1("A,B", ErrorType::Outliers, Model::Knn, Scenario::BD, 1e-8);
        let v = r1_values(&r);
        // p-values in {:e}, means in {}, splits in {} — the wire-pinned forms
        assert_eq!(v[7], "1e-8");
        assert_eq!(v[8], "5e-9");
        assert_eq!(v[9], "9.99999995e-1");
        assert_eq!(v[10], "0.8");
        assert_eq!(v[11], "0.85");
        assert_eq!(v[12], "20");
        let line = csv_line(&v);
        assert!(line.starts_with("\"A,B\","), "dataset field must be RFC 4180 escaped: {line}");
        assert!(line.ends_with(",20\n"));
        // whole-relation CSV is exactly header + per-row lines
        let db = CleanMlDb { r1: vec![r], ..Default::default() };
        assert_eq!(db.r1_csv(), format!("{}\n{}", R1_COLUMNS.join(","), line));
        assert_eq!(db.relation_values(Relation::R1), vec![v.to_vec()]);
        let (cols, numeric_from) = relation_columns(Relation::R1);
        assert_eq!(cols.len(), v.len());
        assert_eq!(numeric_from, 7);
    }

    #[test]
    fn uncorrected_keeps_raw_flags() {
        let mut db = sample_db();
        let before: Vec<Flag> = db.r1.iter().map(|r| r.flag).collect();
        db.apply_correction(Correction::None, 0.05);
        let after: Vec<Flag> = db.r1.iter().map(|r| r.flag).collect();
        assert_eq!(before, after);
    }
}
