//! Full-study orchestration: which datasets participate in which error
//! type's experiments, and population of the CleanML database.

use cleanml_cleaning::ErrorType;
use cleanml_datagen::{
    generate, inject_mislabel_variant, specs, GeneratedDataset, MislabelStrategy,
    MISLABEL_INJECTION_DATASETS,
};

use crate::config::ExperimentConfig;
use crate::database::CleanMlDb;
use crate::runner::{evaluate_grid, Result};

/// FNV-1a hash for stable per-dataset seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Seed used to generate a dataset under a study base seed.
pub fn dataset_seed(name: &str, base_seed: u64) -> u64 {
    fnv1a(name) ^ base_seed.rotate_left(17)
}

/// One planned dataset of a study: everything needed to *generate* it,
/// without generating it. The engine builds `GenerateDataset` tasks from
/// plans so that a base dataset shared by several mislabel variants (or by
/// several error types) is generated exactly once.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetPlan {
    /// Final dataset name (e.g. `EEGuniform` for an injected variant).
    pub name: String,
    /// Name of the base [`cleanml_datagen::DatasetSpec`].
    pub spec_name: &'static str,
    /// Seed for generating the base dataset.
    pub seed: u64,
    /// Mislabel-injection step applied on top of the base, if any.
    pub variant: Option<(MislabelStrategy, u64)>,
}

impl DatasetPlan {
    /// Generates the planned dataset (base generation plus optional
    /// injection).
    pub fn realize(&self) -> GeneratedDataset {
        let spec = cleanml_datagen::spec_by_name(self.spec_name).expect("known dataset");
        let base = generate(spec, self.seed);
        match self.variant {
            Some((strategy, variant_seed)) => {
                inject_mislabel_variant(&base, strategy, variant_seed)
            }
            None => base,
        }
    }
}

/// The datasets participating in `error_type`'s experiments, as plans.
///
/// For mislabels this is the paper's 13 variants: Clothing (real mislabels)
/// plus {EEG, Marketing, Titanic, USCensus} × {uniform, major, minor}
/// injection (paper §III-B5). For every other error type it is the Table 3
/// column.
pub fn dataset_plan(error_type: ErrorType, base_seed: u64) -> Vec<DatasetPlan> {
    match error_type {
        ErrorType::Mislabels => {
            let mut out = Vec::with_capacity(13);
            out.push(DatasetPlan {
                name: "Clothing".into(),
                spec_name: "Clothing",
                seed: dataset_seed("Clothing", base_seed),
                variant: None,
            });
            for name in MISLABEL_INJECTION_DATASETS {
                for strategy in MislabelStrategy::all() {
                    let variant_seed = dataset_seed(name, base_seed) ^ fnv1a(strategy.suffix());
                    out.push(DatasetPlan {
                        name: format!("{name}{}", strategy.suffix()),
                        spec_name: name,
                        seed: dataset_seed(name, base_seed),
                        variant: Some((strategy, variant_seed)),
                    });
                }
            }
            out
        }
        _ => specs()
            .iter()
            .filter(|s| s.error_types.contains(&error_type))
            .map(|s| DatasetPlan {
                name: s.name.to_owned(),
                spec_name: s.name,
                seed: dataset_seed(s.name, base_seed),
                variant: None,
            })
            .collect(),
    }
}

/// The datasets participating in `error_type`'s experiments, generated
/// eagerly. Base datasets shared by several mislabel variants are generated
/// once and reused.
pub fn generate_datasets_for(error_type: ErrorType, base_seed: u64) -> Vec<GeneratedDataset> {
    let mut bases: Vec<((&'static str, u64), GeneratedDataset)> = Vec::new();
    dataset_plan(error_type, base_seed)
        .into_iter()
        .map(|plan| {
            let key = (plan.spec_name, plan.seed);
            if !bases.iter().any(|(k, _)| *k == key) {
                let spec = cleanml_datagen::spec_by_name(plan.spec_name).expect("known dataset");
                bases.push((key, generate(spec, plan.seed)));
            }
            let base = &bases.iter().find(|(k, _)| *k == key).expect("just inserted").1;
            match plan.variant {
                Some((strategy, variant_seed)) => {
                    inject_mislabel_variant(base, strategy, variant_seed)
                }
                None => base.clone(),
            }
        })
        .collect()
}

/// Runs the study for the given error types and returns the populated
/// database with Benjamini–Yekutieli-corrected flags.
pub fn run_study(error_types: &[ErrorType], cfg: &ExperimentConfig) -> Result<CleanMlDb> {
    let mut db = CleanMlDb::default();
    for &et in error_types {
        for data in generate_datasets_for(et, cfg.base_seed) {
            let grid = evaluate_grid(&data, et, cfg)?;
            db.r1.extend(grid.r1_rows()?);
            db.r2.extend(grid.r2_rows()?);
            db.r3.extend(grid.r3_rows()?);
        }
    }
    db.apply_benjamini_yekutieli(cfg.alpha);
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_participation_counts_match_paper() {
        let seed = 1;
        assert_eq!(generate_datasets_for(ErrorType::MissingValues, seed).len(), 6);
        assert_eq!(generate_datasets_for(ErrorType::Outliers, seed).len(), 4);
        assert_eq!(generate_datasets_for(ErrorType::Duplicates, seed).len(), 4);
        assert_eq!(generate_datasets_for(ErrorType::Inconsistencies, seed).len(), 4);
        assert_eq!(generate_datasets_for(ErrorType::Mislabels, seed).len(), 13);
    }

    #[test]
    fn mislabel_variant_names() {
        let variants = generate_datasets_for(ErrorType::Mislabels, 1);
        let names: Vec<&str> = variants.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"Clothing"));
        assert!(names.contains(&"EEGuniform"));
        assert!(names.contains(&"Marketingmajor"));
        assert!(names.contains(&"USCensusminor"));
        for v in &variants {
            assert!(!v.mislabeled_rows.is_empty(), "{}", v.name);
        }
    }

    #[test]
    fn plan_matches_eager_generation() {
        for et in [ErrorType::Outliers, ErrorType::Mislabels] {
            let plans = dataset_plan(et, 2);
            let eager = generate_datasets_for(et, 2);
            assert_eq!(plans.len(), eager.len());
            for (plan, data) in plans.iter().zip(&eager) {
                assert_eq!(plan.name, data.name);
                let realized = plan.realize();
                assert_eq!(realized.name, data.name);
                assert_eq!(realized.dirty, data.dirty, "{}", plan.name);
            }
        }
    }

    #[test]
    fn dataset_seeds_stable_and_distinct() {
        assert_eq!(dataset_seed("EEG", 5), dataset_seed("EEG", 5));
        assert_ne!(dataset_seed("EEG", 5), dataset_seed("EEG", 6));
        assert_ne!(dataset_seed("EEG", 5), dataset_seed("Sensor", 5));
    }

    /// End-to-end smoke: a tiny study over one error type populates all
    /// three relations with the right cardinalities.
    #[test]
    fn tiny_study_populates_relations() {
        let cfg = ExperimentConfig { n_splits: 3, parallel: true, ..ExperimentConfig::quick() };
        let db = run_study(&[ErrorType::Inconsistencies], &cfg).unwrap();
        // 4 datasets × 1 method × 7 models × 2 scenarios
        assert_eq!(db.r1.len(), 56);
        // 4 datasets × 1 method × 2 scenarios
        assert_eq!(db.r2.len(), 8);
        // 4 datasets × 2 scenarios
        assert_eq!(db.r3.len(), 8);
    }
}
