//! Human cleaning vs. automatic cleaning (paper §VII-C, Table 19).
//!
//! The paper's "human cleaning" obtains ground-truth values: manually filled
//! missing cells (BabyProduct), manually corrected labels (Clothing), and
//! hand-curated rules for inconsistencies. Our generators retain exactly
//! that ground truth ([`cleanml_datagen::GeneratedDataset::clean_cells`]),
//! so the human cleaner is the truth restricted to the error type's aspect.
//! Per split, both pipelines select their best model (and the automatic side
//! its best cleaning method) by validation score; **P** means human cleaning
//! beat the best automatic method.

use cleanml_cleaning::{clean_pair, CleaningMethod, ErrorType};
use cleanml_datagen::GeneratedDataset;
use cleanml_dataset::{ColumnKind, ColumnRole, Table};
use cleanml_ml::PAPER_MODELS;
use cleanml_stats::{flag_from_tests, paired_t_test, Flag};

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::runner::{best_model_eval, label_classes, metric_for, Result};
use crate::schema::Evidence;

/// Produces the human-cleaned version of `data` for one error type by
/// copying the relevant ground-truth aspect onto the dirty table:
///
/// * missing values → fill every missing feature cell from the truth;
/// * mislabels → restore every label from the truth;
/// * inconsistencies → restore categorical feature / carried-text spellings;
/// * outliers → restore numeric feature cells;
/// * duplicates → drop the injected duplicate rows.
pub fn human_clean(data: &GeneratedDataset, error_type: ErrorType) -> Result<Table> {
    let mut out = data.dirty.clone();
    let truth = &data.clean_cells;
    match error_type {
        ErrorType::MissingValues => {
            for c in out.schema().feature_indices() {
                for r in data.dirty.missing_rows(c)? {
                    out.set(r, c, truth.get(r, c)?)?;
                }
            }
        }
        ErrorType::Mislabels => {
            let label = out.label_index()?;
            for r in 0..out.n_rows() {
                out.set(r, label, truth.get(r, label)?)?;
            }
        }
        ErrorType::Inconsistencies => {
            let cols: Vec<usize> = out
                .schema()
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.kind == ColumnKind::Categorical
                        && matches!(f.role, ColumnRole::Feature | ColumnRole::Ignore)
                })
                .map(|(i, _)| i)
                .collect();
            for c in cols {
                for r in 0..out.n_rows() {
                    out.set(r, c, truth.get(r, c)?)?;
                }
            }
        }
        ErrorType::Outliers => {
            for c in out.schema().numeric_feature_indices() {
                for r in 0..out.n_rows() {
                    out.set(r, c, truth.get(r, c)?)?;
                }
            }
        }
        ErrorType::Duplicates => {
            let dup: std::collections::HashSet<usize> =
                data.duplicate_rows.iter().copied().collect();
            let keep: Vec<bool> = (0..out.n_rows()).map(|r| !dup.contains(&r)).collect();
            out.retain_rows(&keep);
        }
    }
    Ok(out)
}

/// One Table 19 comparison result.
#[derive(Debug, Clone)]
pub struct HumanComparison {
    pub dataset: String,
    pub error_type: ErrorType,
    pub flag: Flag,
    pub evidence: Evidence,
}

/// Compares best-model-under-human-cleaning with best-model-under-the-best
/// automatic cleaning method.
pub fn compare_human_vs_automatic(
    data: &GeneratedDataset,
    error_type: ErrorType,
    cfg: &ExperimentConfig,
) -> Result<HumanComparison> {
    if !data.error_types.contains(&error_type) {
        return Err(CoreError::Unsupported(format!("{} does not carry {}", data.name, error_type)));
    }
    let metric = metric_for(data)?;
    let classes = label_classes(&data.dirty)?;
    let methods = CleaningMethod::catalogue(error_type);
    let human_table = human_clean(data, error_type)?;

    let mut auto_accs = Vec::with_capacity(cfg.n_splits);
    let mut human_accs = Vec::with_capacity(cfg.n_splits);
    for s in 0..cfg.n_splits {
        let (train0, test0) = data.dirty.split(cfg.test_fraction, cfg.split_seed(s))?;
        let seed = cfg.fit_seed(s);

        // Automatic side: best (method, model) by validation.
        let mut best: Option<(f64, f64)> = None;
        for (mi, method) in methods.iter().enumerate() {
            let out = clean_pair(method, &train0, &test0, seed.wrapping_add(mi as u64))?;
            let eval = best_model_eval(
                &out.train,
                &out.test,
                &PAPER_MODELS,
                metric,
                &classes,
                cfg,
                seed.wrapping_add(100 + mi as u64),
            )?;
            if best.is_none_or(|(bv, _)| eval.val > bv) {
                best = Some((eval.val, eval.acc));
            }
        }
        auto_accs.push(best.expect("catalogue non-empty").1);

        // Human side: the same split of the ground-truth-repaired table.
        // Row alignment guarantees the identical partition for cell-level
        // errors; duplicates shrink the table, so they split independently.
        let (htrain, htest) = human_table.split(cfg.test_fraction, cfg.split_seed(s))?;
        let eval = best_model_eval(
            &htrain,
            &htest,
            &PAPER_MODELS,
            metric,
            &classes,
            cfg,
            seed.wrapping_add(999),
        )?;
        human_accs.push(eval.acc);
    }

    let t = paired_t_test(&human_accs, &auto_accs)?;
    let flag = flag_from_tests(&t, cfg.alpha);
    Ok(HumanComparison {
        dataset: data.name.clone(),
        error_type,
        flag,
        evidence: Evidence {
            p_two: t.p_two,
            p_upper: t.p_upper,
            p_lower: t.p_lower,
            mean_before: auto_accs.iter().sum::<f64>() / auto_accs.len() as f64,
            mean_after: human_accs.iter().sum::<f64>() / human_accs.len() as f64,
            n_splits: cfg.n_splits,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_datagen::{generate, inject_mislabel_variant, spec_by_name, MislabelStrategy};

    #[test]
    fn human_clean_fills_missing() {
        let data = generate(spec_by_name("BabyProduct").unwrap(), 2);
        assert!(data.dirty.n_missing_cells() > 0);
        let h = human_clean(&data, ErrorType::MissingValues).unwrap();
        assert_eq!(h.n_missing_cells(), 0);
        // non-missing cells untouched
        let col = h.schema().feature_indices()[0];
        for r in 0..5 {
            if !data.dirty.get(r, col).unwrap().is_null() {
                assert_eq!(h.get(r, col).unwrap(), data.dirty.get(r, col).unwrap());
            }
        }
    }

    #[test]
    fn human_clean_restores_labels() {
        let data = generate(spec_by_name("Clothing").unwrap(), 2);
        let h = human_clean(&data, ErrorType::Mislabels).unwrap();
        let label = h.label_index().unwrap();
        for r in 0..h.n_rows() {
            assert_eq!(h.get(r, label).unwrap(), data.clean_cells.get(r, label).unwrap());
        }
    }

    #[test]
    fn human_clean_removes_duplicates() {
        let data = generate(spec_by_name("Citation").unwrap(), 2);
        let h = human_clean(&data, ErrorType::Duplicates).unwrap();
        assert_eq!(h.n_rows(), data.dirty.n_rows() - data.duplicate_rows.len());
    }

    #[test]
    fn human_clean_restores_spellings() {
        let data = generate(spec_by_name("Company").unwrap(), 2);
        let h = human_clean(&data, ErrorType::Inconsistencies).unwrap();
        let c = h.schema().index_of("state").unwrap();
        let distinct = h.column(c).unwrap().category_counts().iter().filter(|&&n| n > 0).count();
        assert_eq!(distinct, 4, "canonical spellings restored");
    }

    #[test]
    fn comparison_runs_on_variant() {
        let base = generate(spec_by_name("Titanic").unwrap(), 2);
        let variant = inject_mislabel_variant(&base, MislabelStrategy::Uniform, 7);
        let cfg = ExperimentConfig { n_splits: 3, parallel: false, ..ExperimentConfig::quick() };
        let cmp = compare_human_vs_automatic(&variant, ErrorType::Mislabels, &cfg).unwrap();
        assert_eq!(cmp.error_type, ErrorType::Mislabels);
        assert_eq!(cmp.evidence.n_splits, 3);
    }

    #[test]
    fn error_type_must_be_present() {
        let data = generate(spec_by_name("EEG").unwrap(), 2);
        let cfg = ExperimentConfig { n_splits: 2, ..ExperimentConfig::quick() };
        assert!(compare_human_vs_automatic(&data, ErrorType::Duplicates, &cfg).is_err());
    }
}
