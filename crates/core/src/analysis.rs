//! Rendering of query results as paper-style text tables.

use std::fmt::Write as _;

use cleanml_stats::Flag;

use crate::database::FlagDist;

/// Renders one flag-distribution table with a title, matching the layout of
/// the paper's Tables 11–15: one row per group, cells `NN% (count)`.
pub fn render_flag_table(title: &str, rows: &[(String, FlagDist)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let label_width =
        rows.iter().map(|(name, _)| name.len()).chain(std::iter::once(5)).max().unwrap_or(5);
    let _ = writeln!(out, "{:<label_width$}  {:>12} {:>12} {:>12}", "group", "P", "S", "N");
    for (name, dist) in rows {
        let _ = writeln!(
            out,
            "{name:<label_width$}  {:>12} {:>12} {:>12}",
            dist.render(Flag::Positive),
            dist.render(Flag::Insignificant),
            dist.render(Flag::Negative),
        );
    }
    out
}

/// Renders a single-row distribution (Q1 style).
pub fn render_q1(title: &str, label: &str, dist: FlagDist) -> String {
    render_flag_table(title, &[(label.to_owned(), dist)])
}

/// Renders a generic comparison table (Tables 17–19 style): rows of
/// `(label, P-dist)` where each dist is already a P/S/N count.
pub fn render_comparison(title: &str, rows: &[(String, FlagDist)]) -> String {
    render_flag_table(title, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout() {
        let mut d = FlagDist::default();
        d.add(Flag::Positive);
        d.add(Flag::Insignificant);
        let s = render_flag_table("Q1 (E = Outliers)", &[("R1".into(), d)]);
        assert!(s.contains("Q1 (E = Outliers)"));
        assert!(s.contains("50% (1)"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn q1_helper() {
        let d = FlagDist { p: 2, s: 1, n: 1 };
        let s = render_q1("t", "R1", d);
        assert!(s.contains("50% (2)"));
        assert!(s.contains("25% (1)"));
    }
}
