//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the exact API subset the workspace uses — `Rng::{random,
//! random_range}`, `SeedableRng::seed_from_u64`, `rngs::StdRng`,
//! `seq::{IndexedRandom, SliceRandom}` — backed by a xoshiro256++ generator
//! seeded via SplitMix64. The statistical quality is comparable to the real
//! `StdRng` for simulation purposes; the streams differ, which is fine
//! because every consumer seeds its own generator.

use std::ops::Range;

/// A type that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniformly samplable types for [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u: f64 = Standard::sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f64, f32);

/// The user-facing generator trait.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro's state must not be all zero; splitmix64 cannot
            // produce four consecutive zeros, but be defensive anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random element selection on slices.
    pub trait IndexedRandom {
        type Output;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.random_range(0..self.len());
                Some(&self[i])
            }
        }
    }

    /// In-place Fisher–Yates shuffling of slices.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i: usize = rng.random_range(3..17);
            assert!((3..17).contains(&i));
            let x: f64 = rng.random_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&x));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let heads = (0..n).filter(|_| rng.random::<bool>()).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "bool frac {frac}");
    }

    #[test]
    fn seq_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(pool.contains(pool.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
