//! Value-generation strategies: the composable core of the proptest API.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use crate::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy off each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

// --- primitive ranges ----------------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.uniform() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.uniform() as f32) * (self.end - self.start)
    }
}

// --- any::<T>() ----------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Full-domain floats via random bit patterns — includes NaNs,
    /// infinities, subnormals and both zeros, which is exactly what
    /// bit-exact codec properties need to see.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// The strategy returned by [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `prop::bool::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// --- tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// --- collections ---------------------------------------------------------

/// Inclusive-exclusive element-count range for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `prop::option::of(strategy)`: `None` a quarter of the time.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

// --- string patterns -----------------------------------------------------

/// One parsed pattern atom: a set of candidate chars plus a repetition range.
#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the small regex subset proptest files conventionally use:
/// character classes with ranges (`[a-z ]`), literal characters, and `{m}` /
/// `{m,n}` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars: Vec<char> = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            while let Some(d) = it.next() {
                match d {
                    ']' => break,
                    '-' if prev.is_some() => {
                        // range: prev already pushed; extend to the bound
                        let lo = prev.take().expect("checked");
                        if let Some(hi) = it.next() {
                            let mut ch = lo;
                            while ch < hi {
                                ch = (ch as u8 + 1) as char;
                                set.push(ch);
                            }
                        }
                    }
                    other => {
                        set.push(other);
                        prev = Some(other);
                    }
                }
            }
            set
        } else {
            vec![c]
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&d| d != '}').collect();
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("pattern quantifier"),
                    n.trim().parse().expect("pattern quantifier"),
                ),
                None => {
                    let m: usize = spec.trim().parse().expect("pattern quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!chars.is_empty(), "empty char class in pattern {pattern:?}");
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generation() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = "[a-z]{1,6}".new_value(&mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-z ]{0,20}".new_value(&mut rng);
            assert!(t.len() <= 20);
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn vec_and_option_sizes() {
        let mut rng = TestRng::for_test("vec");
        let s = vec(0.0f64..1.0, 2..5);
        let mut saw_none = false;
        let o = option_of(0usize..10);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            saw_none |= o.new_value(&mut rng).is_none();
        }
        assert!(saw_none, "option strategy never produced None");
        let fixed = vec(0usize..3, 3);
        assert_eq!(fixed.new_value(&mut rng).len(), 3);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combinators");
        let mapped = (0usize..5).prop_map(|n| n * 2);
        for _ in 0..50 {
            assert_eq!(mapped.new_value(&mut rng) % 2, 0);
        }
        let flat = (1usize..4).prop_flat_map(|n| vec(0.0f64..1.0, n..n + 1));
        for _ in 0..50 {
            let v = flat.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let tup = (0usize..3, 0.0f64..1.0, AnyBool);
        let (a, b, _c) = tup.new_value(&mut rng);
        assert!(a < 3 && (0.0..1.0).contains(&b));
    }
}
