//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, range / tuple / collection / option / string-pattern
//! strategies, `prop_map` / `prop_flat_map` combinators, and the
//! `prop_assert*` family. Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its inputs verbatim.
//! * **Deterministic seeding** — the RNG is seeded from the test's module
//!   path, so failures reproduce without a persistence file. Set
//!   `PROPTEST_CASES` to change the case count globally.

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

pub mod strategy;
pub use strategy::Strategy;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An explicit `prop_assert*` failure.
    Fail(String),
    /// A `prop_assume!` rejection: the case is discarded, not failed.
    Reject,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "assumption rejected"),
        }
    }
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count: the env var `PROPTEST_CASES` wins, then the
    /// configured value.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the CPU-heavy ML properties
        // tractable in CI while PROPTEST_CASES can restore full depth.
        ProptestConfig { cases: 64 }
    }
}

/// The source of randomness handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn uniform(&mut self) -> f64 {
        self.0.random::<f64>()
    }

    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.0.random_range(0..n)
        }
    }

    pub fn in_range_f64(&mut self, r: Range<f64>) -> f64 {
        self.0.random_range(r)
    }
}

/// Drives one `proptest!`-declared property. Called by the macro expansion;
/// not part of the public proptest API.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> Result<Option<String>, String>,
{
    let cases = config.effective_cases();
    let mut rng = TestRng::for_test(name);
    let mut executed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = cases.saturating_mul(16).max(256);
    while executed < cases {
        match one_case(&mut rng) {
            Ok(None) => executed += 1,
            Ok(Some(_reject)) => {
                rejected += 1;
                if rejected > max_rejects {
                    // Matches proptest's spirit: too many rejects is a
                    // property bug worth surfacing, not an infinite loop.
                    panic!(
                        "{name}: gave up after {rejected} rejected cases \
                         ({executed}/{cases} executed)"
                    );
                }
            }
            Err(msg) => {
                panic!("{name}: property failed at case {executed}/{cases}\n{msg}");
            }
        }
    }
}

/// `any::<T>()` strategy entry point.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`,
/// `prop::bool::ANY`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
    pub mod bool {
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }
}

/// Everything a proptest file conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Evaluate each strategy expression once, outside the case loop.
            $(let $arg = $strat;)+
            let __strategies = ($(&$arg,)+);
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    let ($($arg,)+) = {
                        let ($($arg,)+) = __strategies;
                        ($($crate::Strategy::new_value($arg, __rng),)+)
                    };
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => Ok(None),
                        Err($crate::TestCaseError::Reject) => Ok(Some(String::new())),
                        Err($crate::TestCaseError::Fail(msg)) => {
                            Err(format!("{msg}\ninputs:\n{__inputs}"))
                        }
                    }
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
