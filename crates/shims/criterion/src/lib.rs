//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the bench files use — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `criterion_group!`,
//! `criterion_main!` — measuring median wall-clock time over a fixed number
//! of samples instead of criterion's full statistical pipeline. Good enough
//! to spot order-of-magnitude regressions without network access to the
//! real crate.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { _parent: self, name, sample_size: 20 }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new() };
        // one warm-up pass, then the measured samples
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
        println!("{}/{id}: median {median:?} over {} samples", self.name, b.samples.len());
        self
    }

    pub fn finish(&mut self) {}
}

/// Handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

/// Re-export so bench files can use `criterion::black_box` if they prefer it
/// over `std::hint::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // one warm-up + five samples
        assert_eq!(runs, 6);
    }
}
