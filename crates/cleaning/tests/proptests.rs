//! Property-based tests for the cleaning algorithms.

use proptest::prelude::*;

use cleanml_cleaning::duplicates::{self, DuplicateDetection};
use cleanml_cleaning::missing::{self, CatImpute, MissingRepair, NumImpute};
use cleanml_cleaning::outliers::{self, OutlierDetection, OutlierRepair};
use cleanml_cleaning::zeroer::{PairGmm, SimMatrix};
use cleanml_dataset::{FieldMeta, Schema, Table, Value};

/// Runs `f` twice — serially and under a real multi-thread subwork
/// bridge — and hands both results to the caller for equality checks.
/// This is the Clean half of the engine's determinism invariant: nested
/// parallelism must never change what a cleaner computes.
fn serial_and_bridged<T>(f: impl Fn() -> T) -> (T, T) {
    let serial = f();
    cleanml_parallel::install_bridge(std::sync::Arc::new(cleanml_parallel::ThreadBridge {
        helpers: 3,
    }));
    let bridged = f();
    cleanml_parallel::clear_bridge();
    (serial, bridged)
}

fn arb_entity_table() -> impl Strategy<Value = Table> {
    // Names drawn from a small vocabulary with occasional typo suffixes:
    // enough collisions and near-collisions that ZeroER's O(n²) sweep has
    // real matches to find.
    let row = (0usize..12, 0usize..4, -10.0f64..10.0, prop::bool::ANY);
    prop::collection::vec(row, 4..40).prop_map(|rows| {
        const NAMES: [&str; 12] = [
            "Luigi Pizza",
            "Sushi Ko",
            "Taco Town",
            "Burger Barn",
            "Pho Place",
            "Curry Corner",
            "Bagel Bros",
            "Noodle Nest",
            "Dumpling Den",
            "Pasta Palace",
            "Salad Stop",
            "Waffle Works",
        ];
        let schema = Schema::new(vec![
            FieldMeta::key("name"),
            FieldMeta::num_feature("rating"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (ni, variant, rating, y) in rows {
            let name = match variant {
                0 => NAMES[ni].to_string(),
                1 => format!("{}e", NAMES[ni]),
                2 => NAMES[ni].to_lowercase(),
                _ => format!("{} #2", NAMES[ni]),
            };
            t.push_row(vec![
                Value::from(name.as_str()),
                Value::from(rating),
                Value::from(if y { "a" } else { "b" }),
            ])
            .expect("schema");
        }
        t
    })
}

fn arb_numeric_table() -> impl Strategy<Value = Table> {
    let row = (prop::option::of(-100.0f64..100.0), prop::bool::ANY);
    prop::collection::vec(row, 5..60).prop_map(|rows| {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        for (x, y) in rows {
            t.push_row(vec![Value::from(x), Value::from(if y { "a" } else { "b" })])
                .expect("schema");
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every missing-value repair removes all missing cells (or rows) and is
    /// idempotent: re-cleaning a cleaned table changes nothing.
    #[test]
    fn missing_repairs_complete_and_idempotent(t in arb_numeric_table()) {
        for repair in MissingRepair::all() {
            let cleaner = missing::fit(repair, &t).expect("fit");
            let (clean, report) = cleaner.apply(&t).expect("apply");
            prop_assert_eq!(clean.n_missing_cells(), 0, "{:?}", repair);
            prop_assert_eq!(report.rows_before, t.n_rows());
            let (clean2, report2) = cleaner.apply(&clean).expect("re-apply");
            prop_assert_eq!(&clean2, &clean, "{:?} not idempotent", repair);
            prop_assert_eq!(report2.repaired, 0);
        }
    }

    /// Simple imputation fills with a statistic of the observed training
    /// values, so imputed cells stay inside the observed range.
    #[test]
    fn imputation_within_observed_range(t in arb_numeric_table()) {
        let observed = t.column(0).expect("col").numeric_values();
        prop_assume!(!observed.is_empty());
        let lo = observed.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = observed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for num in [NumImpute::Mean, NumImpute::Median, NumImpute::Mode] {
            let cleaner = missing::fit(
                MissingRepair::Impute { num, cat: CatImpute::Mode },
                &t,
            ).expect("fit");
            let (clean, _) = cleaner.apply(&t).expect("apply");
            for v in clean.column(0).expect("col").numeric_values() {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo},{hi}]");
            }
        }
    }

    /// Outlier cleaning never changes the row count and only rewrites the
    /// cells it detected.
    #[test]
    fn outlier_cleaning_touches_only_detections(t in arb_numeric_table(), seed in any::<u64>()) {
        prop_assume!(t.column(0).expect("col").numeric_values().len() >= 3);
        for detection in [
            OutlierDetection::Sd { n_sigmas: 3.0 },
            OutlierDetection::Iqr { k: 1.5 },
        ] {
            let cleaner = outliers::fit(detection, OutlierRepair::Median, &t, seed).expect("fit");
            let cells = cleaner.detect(&t).expect("detect");
            let (clean, report) = cleaner.apply(&t).expect("apply");
            prop_assert_eq!(clean.n_rows(), t.n_rows());
            prop_assert_eq!(report.detected, cells.len());
            for r in 0..t.n_rows() {
                let was_flagged = cells.contains(&(r, 0));
                let changed = clean.get(r, 0).expect("cell") != t.get(r, 0).expect("cell");
                if changed {
                    prop_assert!(was_flagged, "row {r} changed without detection");
                }
            }
        }
    }

    /// ZeroER duplicate cleaning is byte-identical whether the O(n²)
    /// similarity sweeps run serially or fan out over a subwork bridge.
    #[test]
    fn zeroer_nested_parallel_matches_serial(t in arb_entity_table()) {
        let (serial, bridged) = serial_and_bridged(|| {
            let cleaner = duplicates::fit(DuplicateDetection::ZeroEr, &t).expect("fit");
            let pairs = cleaner.detect_pairs(&t).expect("detect");
            let (clean, report) = cleaner.apply(&t).expect("apply");
            (pairs, clean, report.detected)
        });
        prop_assert_eq!(&serial.0, &bridged.0, "pairs diverge under bridge");
        prop_assert_eq!(&serial.1, &bridged.1, "cleaned table diverges under bridge");
        prop_assert_eq!(serial.2, bridged.2);
    }

    /// Per-column outlier fitting (including the seeded isolation forest)
    /// is byte-identical serial vs nested-parallel.
    #[test]
    fn outlier_nested_parallel_matches_serial(t in arb_numeric_table(), seed in any::<u64>()) {
        prop_assume!(t.column(0).expect("col").numeric_values().len() >= 3);
        for detection in [
            OutlierDetection::Sd { n_sigmas: 3.0 },
            OutlierDetection::IsolationForest { n_trees: 10, contamination: 0.1 },
        ] {
            let (serial, bridged) = serial_and_bridged(|| {
                let cleaner = outliers::fit(detection, OutlierRepair::Median, &t, seed)
                    .expect("fit");
                let cells = cleaner.detect(&t).expect("detect");
                let (clean, _) = cleaner.apply(&t).expect("apply");
                (cells, clean)
            });
            prop_assert_eq!(&serial.0, &bridged.0, "{:?} cells diverge", detection);
            prop_assert_eq!(&serial.1, &bridged.1, "{:?} table diverges", detection);
        }
    }

    /// The ZeroER mixture always yields finite posteriors in [0, 1].
    #[test]
    fn gmm_posteriors_bounded(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 2..60),
        query in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        let mut points = SimMatrix::zeroed(rows.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            points.set_row(i, row);
        }
        if let Some(gmm) = PairGmm::fit(&points) {
            let p = gmm.posterior_match(&query);
            prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p), "posterior {p}");
        }
    }
}
