//! Duplicate detection and repair (paper §III-B3).
//!
//! Two detectors:
//!
//! * **Key collision** — rows that agree on every key attribute are declared
//!   duplicates (the simple method practitioners use).
//! * **ZeroER** — unsupervised entity matching: each candidate record pair
//!   is described by a similarity vector (Levenshtein / token-Jaccard /
//!   trigram similarity over the concatenated text attributes plus mean
//!   relative similarity over numeric attributes); a two-component Gaussian
//!   mixture fit by EM on the *training* pairs separates matches from
//!   non-matches ([`crate::zeroer`]).
//!
//! Repair is always keep-one deletion: "for a set of records that are deemed
//! to be duplicates, we repair them by deleting all but one record".
//! Duplicate groups are the connected components of the pairwise match graph
//! (union–find), and the earliest row of each group survives.

use std::collections::HashMap;

use cleanml_dataset::{ColumnKind, ColumnRole, Table};

use std::collections::HashSet;

use crate::report::TableReport;
use crate::similarity::{
    jaccard_sets, levenshtein_similarity, numeric_similarity, token_set, trigram_set,
};
use crate::zeroer::{PairGmm, SimMatrix};
use crate::Result;

/// Which duplicate detector to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DuplicateDetection {
    KeyCollision,
    ZeroEr,
}

impl DuplicateDetection {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DuplicateDetection::KeyCollision => "Key Collision",
            DuplicateDetection::ZeroEr => "ZeroER",
        }
    }
}

/// Posterior threshold above which a pair is declared a match.
const MATCH_THRESHOLD: f64 = 0.5;

/// A fitted duplicate cleaner.
#[derive(Debug, Clone)]
pub struct FittedDuplicates {
    detection: DuplicateDetection,
    /// GMM fit on training pairs (ZeroER only).
    gmm: Option<PairGmm>,
}

/// Text columns used to describe a record for matching: the
/// entity-identifying attributes (keys and carried free text). Shared
/// low-cardinality feature categories (city, cuisine, …) are *not* included
/// — two different restaurants in the same city are not more likely to be
/// the same entity, and mixing such columns in destroys the bimodality the
/// ZeroER mixture relies on. Tables without identifying text fall back to
/// categorical features.
fn text_columns(table: &Table) -> Vec<usize> {
    let mut cols = table.schema().key_indices();
    for (i, f) in table.schema().fields().iter().enumerate() {
        if f.kind == ColumnKind::Categorical && f.role == ColumnRole::Ignore {
            cols.push(i);
        }
    }
    if cols.is_empty() {
        cols = table.schema().categorical_feature_indices();
    }
    cols.sort_unstable();
    cols.dedup();
    cols
}

fn numeric_columns(table: &Table) -> Vec<usize> {
    table.schema().numeric_feature_indices()
}

/// Concatenated lowercase text of a record over `cols`.
fn record_text(table: &Table, row: usize, cols: &[usize]) -> String {
    let mut s = String::new();
    for &c in cols {
        if let Ok(col) = table.column(c) {
            if let Some(v) = col.cat_str(row) {
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(v);
            }
        }
    }
    s
}

/// Similarity-vector width for a table: three text similarities plus one
/// pooled numeric similarity when numeric features exist.
fn feature_dim(num_cols: &[usize]) -> usize {
    3 + usize::from(!num_cols.is_empty())
}

/// Per-row state for the O(n²) pair sweeps, computed once per table
/// instead of once per pair: the concatenated record text, its token and
/// trigram sets (the dominant per-pair cost before this cache existed),
/// and the numeric feature values. Pair features computed through this
/// are bit-identical to the historical per-pair recomputation — the same
/// sets feed the same Jaccard, the same strings feed Levenshtein.
struct PairFeaturizer {
    texts: Vec<String>,
    tokens: Vec<HashSet<String>>,
    trigrams: Vec<HashSet<String>>,
    /// `numeric[k][row]` for `num_cols[k]`, in `num_cols` order.
    numeric: Vec<Vec<Option<f64>>>,
}

impl PairFeaturizer {
    fn new(table: &Table, text_cols: &[usize], num_cols: &[usize]) -> Self {
        let n = table.n_rows();
        let texts: Vec<String> = (0..n).map(|r| record_text(table, r, text_cols)).collect();
        let tokens = texts.iter().map(|t| token_set(t)).collect();
        let trigrams = texts.iter().map(|t| trigram_set(t)).collect();
        let numeric = num_cols
            .iter()
            .map(|&c| {
                let col = table.column(c).expect("column exists");
                (0..n).map(|r| col.num(r)).collect()
            })
            .collect();
        PairFeaturizer { texts, tokens, trigrams, numeric }
    }

    /// Writes the similarity vector of a record pair into `out` (width
    /// [`feature_dim`]); the caller reuses the scratch across pairs.
    fn features_into(&self, a: usize, b: usize, out: &mut [f64]) {
        out[0] = levenshtein_similarity(&self.texts[a], &self.texts[b]);
        out[1] = jaccard_sets(&self.tokens[a], &self.tokens[b]);
        out[2] = jaccard_sets(&self.trigrams[a], &self.trigrams[b]);
        if !self.numeric.is_empty() {
            let mut sum = 0.0;
            let mut n = 0usize;
            for col in &self.numeric {
                if let (Some(x), Some(y)) = (col[a], col[b]) {
                    sum += numeric_similarity(x, y);
                    n += 1;
                }
            }
            out[3] = if n > 0 { sum / n as f64 } else { 0.5 };
        }
    }
}

/// Upper bound on subwork chunks for a pair sweep: enough to keep every
/// helper busy, few enough that per-chunk dispatch stays invisible.
fn pair_chunks(n_pairs: usize) -> Vec<std::ops::Range<usize>> {
    cleanml_parallel::chunk_ranges(n_pairs, n_pairs.div_ceil(2048))
}

/// Candidate pairs: all pairs for small tables, token-blocked pairs above
/// [`BLOCK_ABOVE`] rows (pairs must share a token in their record text).
const BLOCK_ABOVE: usize = 700;

fn candidate_pairs(table: &Table, text_cols: &[usize]) -> Vec<(usize, usize)> {
    let n = table.n_rows();
    if n <= BLOCK_ABOVE {
        let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                pairs.push((a, b));
            }
        }
        return pairs;
    }
    // Token blocking: bucket rows by lowercase token, pair within buckets.
    let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
    for r in 0..n {
        let text = record_text(table, r, text_cols).to_lowercase();
        for tok in text.split_whitespace() {
            buckets.entry(tok.to_owned()).or_default().push(r);
        }
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for rows in buckets.values() {
        if rows.len() > 50 {
            continue; // stop-word-like token: too unselective
        }
        for (i, &a) in rows.iter().enumerate() {
            for &b in &rows[i + 1..] {
                pairs.push((a.min(b), a.max(b)));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Fits the detector on the training partition (only ZeroER learns state).
pub fn fit(detection: DuplicateDetection, train: &Table) -> Result<FittedDuplicates> {
    let gmm = match detection {
        DuplicateDetection::KeyCollision => None,
        DuplicateDetection::ZeroEr => {
            let text_cols = text_columns(train);
            let num_cols = numeric_columns(train);
            let pairs = candidate_pairs(train, &text_cols);
            let dim = feature_dim(&num_cols);
            let fz = PairFeaturizer::new(train, &text_cols, &num_cols);
            // The O(n²) feature sweep fans out in contiguous chunks; rows
            // land back in pair order, so the GMM sees the exact matrix
            // the serial loop built.
            let chunks = pair_chunks(pairs.len());
            let chunk_rows: Vec<Vec<f64>> = cleanml_parallel::run_indexed(chunks.len(), |ci| {
                let range = chunks[ci].clone();
                let mut rows = vec![0.0; range.len() * dim];
                for (j, &(a, b)) in pairs[range].iter().enumerate() {
                    fz.features_into(a, b, &mut rows[j * dim..(j + 1) * dim]);
                }
                rows
            });
            let mut points = SimMatrix::zeroed(pairs.len(), dim);
            let mut i = 0;
            for rows in &chunk_rows {
                for feat in rows.chunks_exact(dim) {
                    points.set_row(i, feat);
                    i += 1;
                }
            }
            PairGmm::fit(&points)
        }
    };
    Ok(FittedDuplicates { detection, gmm })
}

/// Minimal union–find over row indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins so the earliest row represents the group.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

impl FittedDuplicates {
    /// The detection rule.
    pub fn detection(&self) -> DuplicateDetection {
        self.detection
    }

    /// Detects duplicate pairs in `table`.
    pub fn detect_pairs(&self, table: &Table) -> Result<Vec<(usize, usize)>> {
        match self.detection {
            DuplicateDetection::KeyCollision => {
                let keys = table.schema().key_indices();
                if keys.is_empty() {
                    return Ok(Vec::new());
                }
                let mut groups: HashMap<Vec<Option<String>>, Vec<usize>> = HashMap::new();
                for r in 0..table.n_rows() {
                    let key: Vec<Option<String>> = keys
                        .iter()
                        .map(|&c| {
                            table.column(c).ok().and_then(|col| col.cat_str(r).map(str::to_owned))
                        })
                        .collect();
                    // Rows with any missing key attribute never collide.
                    if key.iter().any(Option::is_none) {
                        continue;
                    }
                    groups.entry(key).or_default().push(r);
                }
                let mut pairs = Vec::new();
                for rows in groups.values() {
                    for (i, &a) in rows.iter().enumerate() {
                        for &b in &rows[i + 1..] {
                            pairs.push((a, b));
                        }
                    }
                }
                pairs.sort_unstable();
                Ok(pairs)
            }
            DuplicateDetection::ZeroEr => {
                let Some(gmm) = &self.gmm else {
                    return Ok(Vec::new()); // training had too few pairs
                };
                let text_cols = text_columns(table);
                let num_cols = numeric_columns(table);
                let pairs = candidate_pairs(table, &text_cols);
                let dim = feature_dim(&num_cols);
                let fz = PairFeaturizer::new(table, &text_cols, &num_cols);
                // Chunked match sweep; chunk-order concatenation keeps the
                // matched-pair list identical to the serial filter.
                let chunks = pair_chunks(pairs.len());
                let matched: Vec<Vec<(usize, usize)>> =
                    cleanml_parallel::run_indexed(chunks.len(), |ci| {
                        let mut feat = vec![0.0; dim];
                        pairs[chunks[ci].clone()]
                            .iter()
                            .copied()
                            .filter(|&(a, b)| {
                                fz.features_into(a, b, &mut feat);
                                gmm.posterior_match(&feat) > MATCH_THRESHOLD
                            })
                            .collect()
                    });
                Ok(matched.into_iter().flatten().collect())
            }
        }
    }

    /// Cleans `table`: groups matched pairs and deletes all but the earliest
    /// row of each group.
    pub fn apply(&self, table: &Table) -> Result<(Table, TableReport)> {
        let pairs = self.detect_pairs(table)?;
        let n = table.n_rows();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        let keep: Vec<bool> = (0..n).map(|r| uf.find(r) == r).collect();
        let mut out = table.clone();
        out.retain_rows(&keep);
        let removed = n - out.n_rows();
        Ok((
            out,
            TableReport {
                rows_before: n,
                rows_after: n - removed,
                detected: pairs.len(),
                repaired: removed,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::{FieldMeta, Schema, Value};

    fn restaurant_table() -> Table {
        let schema = Schema::new(vec![
            FieldMeta::key("name"),
            FieldMeta::cat_feature("city"),
            FieldMeta::num_feature("rating"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        let rows: Vec<(&str, &str, f64, &str)> = vec![
            ("Luigi Pizza", "NYC", 4.5, "p"),
            ("Luigi Pizza", "NYC", 4.5, "p"), // exact key dup of 0
            ("Sushi Ko", "SF", 4.0, "n"),
            ("Sushi Koo", "SF", 4.0, "n"), // near-dup of 2 (typo)
            ("Taco Town", "LA", 3.0, "p"),
            ("Burger Barn", "NYC", 2.5, "n"),
            ("Pho Place", "SF", 4.8, "p"),
            ("Curry Corner", "LA", 4.2, "n"),
            ("Bagel Bros", "NYC", 3.9, "p"),
            ("Noodle Nest", "SF", 3.1, "n"),
        ];
        for (name, city, rating, y) in rows {
            t.push_row(vec![
                Value::from(name),
                Value::from(city),
                Value::from(rating),
                Value::from(y),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn key_collision_finds_exact_dups_only() {
        let t = restaurant_table();
        let cleaner = fit(DuplicateDetection::KeyCollision, &t).unwrap();
        let pairs = cleaner.detect_pairs(&t).unwrap();
        assert_eq!(pairs, vec![(0, 1)]);
        let (clean, report) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.n_rows(), 9);
        assert_eq!(report.repaired, 1);
        // the first occurrence survives
        assert_eq!(clean.get(0, 0).unwrap(), Value::Str("Luigi Pizza".into()));
    }

    #[test]
    fn zeroer_finds_fuzzy_dups() {
        let t = restaurant_table();
        let cleaner = fit(DuplicateDetection::ZeroEr, &t).unwrap();
        let pairs = cleaner.detect_pairs(&t).unwrap();
        assert!(pairs.contains(&(0, 1)), "exact dup missed: {pairs:?}");
        assert!(pairs.contains(&(2, 3)), "typo dup missed: {pairs:?}");
        let (clean, _) = cleaner.apply(&t).unwrap();
        assert!(clean.n_rows() <= 8);
    }

    #[test]
    fn missing_keys_never_collide() {
        let schema = Schema::new(vec![FieldMeta::key("id"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Null, Value::from("p")]).unwrap();
        t.push_row(vec![Value::Null, Value::from("n")]).unwrap();
        let cleaner = fit(DuplicateDetection::KeyCollision, &t).unwrap();
        assert!(cleaner.detect_pairs(&t).unwrap().is_empty());
    }

    #[test]
    fn no_key_columns_means_no_collisions() {
        let schema = Schema::new(vec![FieldMeta::cat_feature("c"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::from("x"), Value::from("p")]).unwrap();
        t.push_row(vec![Value::from("x"), Value::from("n")]).unwrap();
        let cleaner = fit(DuplicateDetection::KeyCollision, &t).unwrap();
        assert!(cleaner.detect_pairs(&t).unwrap().is_empty());
    }

    #[test]
    fn transitive_groups_keep_one() {
        let schema = Schema::new(vec![FieldMeta::key("id"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        for _ in 0..3 {
            t.push_row(vec![Value::from("same"), Value::from("p")]).unwrap();
        }
        t.push_row(vec![Value::from("other"), Value::from("n")]).unwrap();
        let cleaner = fit(DuplicateDetection::KeyCollision, &t).unwrap();
        let (clean, report) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.n_rows(), 2);
        assert_eq!(report.detected, 3); // 3 pairs in the triangle
        assert_eq!(report.repaired, 2);
    }

    #[test]
    fn zeroer_fitted_on_train_applies_to_test() {
        let train = restaurant_table();
        let cleaner = fit(DuplicateDetection::ZeroEr, &train).unwrap();
        let mut test = Table::new(train.schema().clone());
        test.push_row(vec![
            Value::from("Pasta Palace"),
            Value::from("NYC"),
            Value::from(4.0),
            Value::from("p"),
        ])
        .unwrap();
        test.push_row(vec![
            Value::from("Pasta Palacee"),
            Value::from("NYC"),
            Value::from(4.0),
            Value::from("p"),
        ])
        .unwrap();
        test.push_row(vec![
            Value::from("Dumpling Den"),
            Value::from("SF"),
            Value::from(3.5),
            Value::from("n"),
        ])
        .unwrap();
        let (clean, _) = cleaner.apply(&test).unwrap();
        assert_eq!(clean.n_rows(), 2, "near-duplicate should be removed");
    }

    #[test]
    fn duplicate_free_table_unchanged() {
        let t = restaurant_table();
        let cleaner = fit(DuplicateDetection::KeyCollision, &t).unwrap();
        let (clean, _) = cleaner.apply(&t).unwrap();
        let (clean2, report2) = cleaner.apply(&clean).unwrap();
        assert_eq!(clean, clean2);
        assert_eq!(report2.repaired, 0);
    }

    #[test]
    fn detection_names() {
        assert_eq!(DuplicateDetection::KeyCollision.name(), "Key Collision");
        assert_eq!(DuplicateDetection::ZeroEr.name(), "ZeroER");
    }
}
