//! String similarity primitives for duplicate detection.
//!
//! ZeroER (and entity resolution generally) works on per-pair similarity
//! feature vectors. These are the classic measures: normalized Levenshtein
//! edit similarity, token Jaccard, and 3-gram Jaccard.

use std::collections::HashSet;

/// Levenshtein edit distance (dynamic programming, two rows).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// `1 - lev(a,b) / max(|a|,|b|)`; 1.0 for two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// The lowercase whitespace-token set of a string — precompute one per
/// record and feed pairs to [`jaccard_sets`] instead of paying the
/// tokenization inside every O(n²) pair comparison.
pub fn token_set(s: &str) -> HashSet<String> {
    s.split_whitespace().map(|t| t.to_lowercase()).collect()
}

/// The character 3-gram set of the lowercased string; the per-record
/// counterpart of [`trigram_jaccard`].
pub fn trigram_set(s: &str) -> HashSet<String> {
    char_ngrams(s, 3)
}

/// Jaccard similarity of lowercase whitespace tokens; 1.0 for two empty
/// token sets.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    jaccard(&token_set(a), &token_set(b))
}

/// Jaccard similarity of character 3-grams of the lowercased strings.
pub fn trigram_jaccard(a: &str, b: &str) -> f64 {
    jaccard(&char_ngrams(a, 3), &char_ngrams(b, 3))
}

/// Jaccard over prebuilt sets ([`token_set`] / [`trigram_set`]) — exactly
/// the similarity the string-pair entry points compute.
pub fn jaccard_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    jaccard(a, b)
}

fn char_ngrams(s: &str, n: usize) -> HashSet<String> {
    let chars: Vec<char> = s.to_lowercase().chars().collect();
    if chars.len() < n {
        if chars.is_empty() {
            return HashSet::new();
        }
        return std::iter::once(chars.iter().collect()).collect();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Relative numeric similarity `1 - |a-b| / max(|a|,|b|)`, clamped to
/// `[0,1]`; 1.0 when both are (near) zero.
pub fn numeric_similarity(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom < 1e-12 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lev_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn lev_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("U.S. Bank", "US Bank");
        assert!(s > 0.7, "{s}");
    }

    #[test]
    fn token_jaccard_cases() {
        assert_eq!(token_jaccard("the big cat", "the big cat"), 1.0);
        assert_eq!(token_jaccard("a b", "c d"), 0.0);
        assert!((token_jaccard("big cat", "big dog") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(token_jaccard("", ""), 1.0);
        // case-insensitive
        assert_eq!(token_jaccard("Cat", "cat"), 1.0);
    }

    #[test]
    fn trigram_jaccard_cases() {
        assert_eq!(trigram_jaccard("restaurant", "restaurant"), 1.0);
        // shared trigrams {res, est, sta} of 13 total -> 3/13
        assert!((trigram_jaccard("restaurant", "restaraunt") - 3.0 / 13.0).abs() < 1e-12);
        assert_eq!(trigram_jaccard("", ""), 1.0);
        // short strings fall back to whole-string grams
        assert_eq!(trigram_jaccard("ab", "ab"), 1.0);
        assert_eq!(trigram_jaccard("ab", "cd"), 0.0);
    }

    #[test]
    fn numeric_similarity_cases() {
        assert_eq!(numeric_similarity(0.0, 0.0), 1.0);
        assert_eq!(numeric_similarity(10.0, 10.0), 1.0);
        assert_eq!(numeric_similarity(10.0, 0.0), 0.0);
        assert!((numeric_similarity(10.0, 9.0) - 0.9).abs() < 1e-12);
        assert_eq!(numeric_similarity(-5.0, 5.0), 0.0);
    }

    #[test]
    fn similarity_symmetry() {
        for (a, b) in [("hotel", "motel"), ("sushi bar", "sushi-bar tokyo"), ("", "x")] {
            assert_eq!(levenshtein_similarity(a, b), levenshtein_similarity(b, a));
            assert_eq!(token_jaccard(a, b), token_jaccard(b, a));
            assert_eq!(trigram_jaccard(a, b), trigram_jaccard(b, a));
        }
    }
}
