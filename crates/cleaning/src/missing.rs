//! Missing-value detection and repair (paper §III-B1).
//!
//! Detection is trivial — empty / `NaN` cells. Repairs are the paper's
//! eight: record deletion, the six simple imputations ({mean, median, mode}
//! for numeric cells × {mode, dummy} for categorical cells), and
//! HoloClean-style probabilistic inference.
//!
//! The paper's special protocol for missing values (Table 5) treats the
//! deletion-repaired dataset as the *dirty* baseline and an
//! imputation-repaired dataset as the *clean* version; that composition
//! happens in the study runner — this module just applies one repair.

use std::collections::HashMap;

use cleanml_dataset::{ColumnKind, Table, Value};

use crate::holoclean::HoloCleanImputer;
use crate::report::TableReport;
use crate::Result;

/// Imputation statistic for numeric cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumImpute {
    Mean,
    Median,
    Mode,
}

/// Imputation strategy for categorical cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CatImpute {
    /// Most frequent training value.
    Mode,
    /// A literal `"missing"` dummy category.
    Dummy,
}

/// The dummy category injected by [`CatImpute::Dummy`].
pub const DUMMY_CATEGORY: &str = "missing";

/// How to repair detected missing values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissingRepair {
    /// Delete rows containing missing feature cells.
    Deletion,
    /// Simple imputation (one of the paper's six combinations).
    Impute { num: NumImpute, cat: CatImpute },
    /// HoloClean-style probabilistic inference.
    HoloClean,
}

impl MissingRepair {
    /// All eight repairs in the paper's Table 2 order.
    pub fn all() -> Vec<MissingRepair> {
        let mut v = vec![MissingRepair::Deletion];
        for num in [NumImpute::Mean, NumImpute::Median, NumImpute::Mode] {
            for cat in [CatImpute::Mode, CatImpute::Dummy] {
                v.push(MissingRepair::Impute { num, cat });
            }
        }
        v.push(MissingRepair::HoloClean);
        v
    }

    /// Table-2-style display name (e.g. `MeanDummy`).
    pub fn name(&self) -> String {
        match self {
            MissingRepair::Deletion => "Deletion".into(),
            MissingRepair::Impute { num, cat } => {
                let n = match num {
                    NumImpute::Mean => "Mean",
                    NumImpute::Median => "Median",
                    NumImpute::Mode => "Mode",
                };
                let c = match cat {
                    CatImpute::Mode => "Mode",
                    CatImpute::Dummy => "Dummy",
                };
                format!("{n}{c}")
            }
            MissingRepair::HoloClean => "HoloClean".into(),
        }
    }
}

/// A missing-value cleaner fitted on a training partition.
#[derive(Debug, Clone)]
pub struct FittedMissing {
    repair: MissingRepair,
    /// Per numeric feature column: the imputation value.
    num_stats: HashMap<usize, f64>,
    /// Per categorical feature column: the mode string.
    cat_modes: HashMap<usize, String>,
    holoclean: Option<HoloCleanImputer>,
}

/// Fits the chosen repair's statistics on `train`.
pub fn fit(repair: MissingRepair, train: &Table) -> Result<FittedMissing> {
    let schema = train.schema();
    let mut num_stats = HashMap::new();
    let mut cat_modes = HashMap::new();

    if let MissingRepair::Impute { num, .. } = repair {
        for col in schema.numeric_feature_indices() {
            let c = train.column(col)?;
            let stat = match num {
                NumImpute::Mean => cleanml_dataset::stats::mean(c),
                NumImpute::Median => cleanml_dataset::stats::median(c),
                NumImpute::Mode => cleanml_dataset::stats::numeric_mode(c),
            };
            // Columns that are entirely missing in training fall back to 0.0.
            num_stats.insert(col, stat.unwrap_or(0.0));
        }
    }
    if matches!(repair, MissingRepair::Impute { cat: CatImpute::Mode, .. }) {
        for col in schema.categorical_feature_indices() {
            let c = train.column(col)?;
            let mode = cleanml_dataset::stats::categorical_mode(c)
                .and_then(|id| c.dict_str(id))
                .unwrap_or(DUMMY_CATEGORY)
                .to_owned();
            cat_modes.insert(col, mode);
        }
    }
    let holoclean =
        if repair == MissingRepair::HoloClean { Some(HoloCleanImputer::fit(train)?) } else { None };

    Ok(FittedMissing { repair, num_stats, cat_modes, holoclean })
}

impl FittedMissing {
    /// The repair this cleaner applies.
    pub fn repair(&self) -> MissingRepair {
        self.repair
    }

    /// Cleans one table, returning the cleaned copy and a report.
    pub fn apply(&self, table: &Table) -> Result<(Table, TableReport)> {
        let mut out = table.clone();
        let feature_cols = table.schema().feature_indices();
        let detected = out.n_missing_cells();
        let rows_before = out.n_rows();

        let repaired = match self.repair {
            MissingRepair::Deletion => {
                out = out.drop_rows_with_missing();
                rows_before - out.n_rows()
            }
            MissingRepair::Impute { cat, .. } => {
                let mut fixed = 0usize;
                for &col in &feature_cols {
                    let kind = table.schema().fields()[col].kind;
                    let rows = table.missing_rows(col)?;
                    for r in rows {
                        let value = match kind {
                            ColumnKind::Numeric => {
                                Value::Num(self.num_stats.get(&col).copied().unwrap_or(0.0))
                            }
                            ColumnKind::Categorical => match cat {
                                CatImpute::Dummy => Value::Str(DUMMY_CATEGORY.to_owned()),
                                CatImpute::Mode => Value::Str(
                                    self.cat_modes
                                        .get(&col)
                                        .cloned()
                                        .unwrap_or_else(|| DUMMY_CATEGORY.to_owned()),
                                ),
                            },
                        };
                        out.set(r, col, value)?;
                        fixed += 1;
                    }
                }
                fixed
            }
            MissingRepair::HoloClean => {
                let imputer = self.holoclean.as_ref().expect("fitted for HoloClean");
                let mut fixed = 0usize;
                for &col in &feature_cols {
                    let kind = table.schema().fields()[col].kind;
                    let rows = table.missing_rows(col)?;
                    for r in rows {
                        let value = match kind {
                            ColumnKind::Numeric => {
                                // Fall back to 0.0 only when training had no data at all.
                                Value::Num(imputer.impute_numeric(table, r, col).unwrap_or(0.0))
                            }
                            ColumnKind::Categorical => Value::Str(
                                imputer
                                    .impute_categorical(table, r, col)
                                    .unwrap_or_else(|| DUMMY_CATEGORY.to_owned()),
                            ),
                        };
                        out.set(r, col, value)?;
                        fixed += 1;
                    }
                }
                fixed
            }
        };

        let report = TableReport { rows_before, rows_after: out.n_rows(), detected, repaired };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::{FieldMeta, Schema};

    fn dirty_table() -> Table {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("c"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for (x, c, y) in [
            (Some(1.0), Some("a"), "p"),
            (Some(2.0), Some("a"), "p"),
            (Some(3.0), Some("b"), "n"),
            (None, Some("a"), "n"),
            (Some(100.0), None, "p"),
            (None, None, "n"),
        ] {
            t.push_row(vec![Value::from(x), Value::from(c), Value::from(y)]).unwrap();
        }
        t
    }

    #[test]
    fn all_eight_repairs_listed() {
        let all = MissingRepair::all();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], MissingRepair::Deletion);
        assert_eq!(all[7], MissingRepair::HoloClean);
        let names: Vec<String> = all.iter().map(|r| r.name()).collect();
        assert!(names.contains(&"MeanDummy".to_string()));
        assert!(names.contains(&"MedianMode".to_string()));
    }

    #[test]
    fn deletion_drops_incomplete_rows() {
        let t = dirty_table();
        let cleaner = fit(MissingRepair::Deletion, &t).unwrap();
        let (clean, report) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.n_rows(), 3);
        assert_eq!(clean.n_missing_cells(), 0);
        assert_eq!(report.rows_before, 6);
        assert_eq!(report.rows_after, 3);
        assert_eq!(report.detected, 4);
        assert_eq!(report.repaired, 3); // rows removed
    }

    #[test]
    fn mean_mode_imputation() {
        let t = dirty_table();
        let cleaner =
            fit(MissingRepair::Impute { num: NumImpute::Mean, cat: CatImpute::Mode }, &t).unwrap();
        let (clean, report) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.n_rows(), 6);
        assert_eq!(clean.n_missing_cells(), 0);
        assert_eq!(report.repaired, 4);
        // mean of observed x = (1+2+3+100)/4 = 26.5
        assert_eq!(clean.get(3, 0).unwrap(), Value::Num(26.5));
        // mode of c = "a"
        assert_eq!(clean.get(4, 1).unwrap(), Value::Str("a".into()));
    }

    #[test]
    fn median_is_outlier_robust() {
        let t = dirty_table();
        let cleaner =
            fit(MissingRepair::Impute { num: NumImpute::Median, cat: CatImpute::Mode }, &t)
                .unwrap();
        let (clean, _) = cleaner.apply(&t).unwrap();
        // median of 1,2,3,100 = 2.5 — not dragged to 26.5 by the outlier
        assert_eq!(clean.get(3, 0).unwrap(), Value::Num(2.5));
    }

    #[test]
    fn dummy_category_injected() {
        let t = dirty_table();
        let cleaner =
            fit(MissingRepair::Impute { num: NumImpute::Mode, cat: CatImpute::Dummy }, &t).unwrap();
        let (clean, _) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.get(4, 1).unwrap(), Value::Str(DUMMY_CATEGORY.into()));
        // numeric mode of 1,2,3,100 -> 1 (all unique, smallest wins)
        assert_eq!(clean.get(3, 0).unwrap(), Value::Num(1.0));
    }

    #[test]
    fn train_statistics_applied_to_other_table() {
        // Leakage check: statistics come from `fit`'s table, not `apply`'s.
        let train = dirty_table();
        let schema = train.schema().clone();
        let mut test = Table::new(schema);
        test.push_row(vec![Value::Null, Value::Null, Value::from("p")]).unwrap();
        let cleaner =
            fit(MissingRepair::Impute { num: NumImpute::Mean, cat: CatImpute::Mode }, &train)
                .unwrap();
        let (clean, _) = cleaner.apply(&test).unwrap();
        assert_eq!(clean.get(0, 0).unwrap(), Value::Num(26.5)); // train mean
        assert_eq!(clean.get(0, 1).unwrap(), Value::Str("a".into())); // train mode
    }

    #[test]
    fn holoclean_fills_all_cells() {
        let t = dirty_table();
        let cleaner = fit(MissingRepair::HoloClean, &t).unwrap();
        let (clean, report) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.n_missing_cells(), 0);
        assert_eq!(report.repaired, 4);
    }

    #[test]
    fn clean_table_untouched() {
        let t = dirty_table();
        let cleaner = fit(MissingRepair::Deletion, &t).unwrap();
        let (clean, _) = cleaner.apply(&t).unwrap();
        // applying again changes nothing (idempotence)
        let (clean2, report2) = cleaner.apply(&clean).unwrap();
        assert_eq!(clean, clean2);
        assert_eq!(report2.detected, 0);
        assert_eq!(report2.repaired, 0);
    }

    #[test]
    fn all_missing_column_falls_back() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Null, Value::from("a")]).unwrap();
        t.push_row(vec![Value::Null, Value::from("b")]).unwrap();
        let cleaner =
            fit(MissingRepair::Impute { num: NumImpute::Mean, cat: CatImpute::Mode }, &t).unwrap();
        let (clean, _) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.get(0, 0).unwrap(), Value::Num(0.0));
    }
}
