//! Error type shared by all cleaning operations.

use std::fmt;

/// Errors raised by cleaning algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CleaningError {
    /// An underlying table operation failed.
    Dataset(cleanml_dataset::DatasetError),
    /// An internal model (confident learning probe, ZeroER GMM) failed.
    Ml(String),
    /// The method is not applicable to the given data (e.g. outlier cleaning
    /// on a table without numeric features).
    NotApplicable { method: &'static str, reason: String },
}

impl fmt::Display for CleaningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleaningError::Dataset(e) => write!(f, "dataset error: {e}"),
            CleaningError::Ml(m) => write!(f, "model error during cleaning: {m}"),
            CleaningError::NotApplicable { method, reason } => {
                write!(f, "{method} not applicable: {reason}")
            }
        }
    }
}

impl std::error::Error for CleaningError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CleaningError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cleanml_dataset::DatasetError> for CleaningError {
    fn from(e: cleanml_dataset::DatasetError) -> Self {
        CleaningError::Dataset(e)
    }
}

impl From<cleanml_ml::MlError> for CleaningError {
    fn from(e: cleanml_ml::MlError) -> Self {
        CleaningError::Ml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CleaningError = cleanml_dataset::DatasetError::MissingLabel.into();
        assert!(e.to_string().contains("label"));
        let e: CleaningError = cleanml_ml::MlError::EmptyTrainingSet.into();
        assert!(e.to_string().contains("empty"));
        let e = CleaningError::NotApplicable { method: "IQR", reason: "no numeric columns".into() };
        assert!(e.to_string().contains("IQR"));
    }
}
