//! # cleanml-cleaning
//!
//! Error detection and repair algorithms for the five CleanML error types
//! (paper §III-B, Table 2). Every method follows the paper's leakage
//! protocol: statistics are **fit on the training partition only** and then
//! applied to clean both partitions (§IV-A step 2).
//!
//! | error type | detection | repair | module |
//! |---|---|---|---|
//! | missing values | empty cells | deletion; {mean, median, mode} × {mode, dummy} imputation; HoloClean-style inference | [`missing`] |
//! | outliers | SD (µ±3σ), IQR (1.5·IQR), Isolation Forest (contamination 0.01) | mean / median / mode / HoloClean-style imputation | [`outliers`] |
//! | duplicates | key collision; ZeroER-style unsupervised matching | keep-one deletion | [`duplicates`], [`zeroer`] |
//! | inconsistencies | OpenRefine-style fingerprint clustering | merge to most frequent | [`inconsistency`] |
//! | mislabels | cleanlab-style confident learning | prune & relabel | [`mislabel`] |
//!
//! [`method`] exposes the unified [`method::CleaningMethod`] catalogue —
//! exactly the rows of the paper's Table 2 — and [`method::clean_pair`],
//! the single entry point the study runner uses.
//!
//! Substitutions relative to the paper's exact tools (HoloClean → a
//! correlation-based probabilistic imputer, ZeroER → similarity-vector GMM
//! fit by EM, OpenRefine → fingerprint keying, cleanlab → confident
//! learning) are documented in `DESIGN.md` §4; each keeps the algorithmic
//! core of the original system.

pub mod duplicates;
pub mod error;
pub mod holoclean;
pub mod inconsistency;
pub mod method;
pub mod mislabel;
pub mod missing;
pub mod outliers;
pub mod report;
pub mod similarity;
pub mod zeroer;

pub use error::CleaningError;
pub use method::{clean_pair, CleaningMethod, CleaningOutcome, Detection, ErrorType, Repair};
pub use report::CleaningReport;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CleaningError>;
