//! Inconsistency detection and repair (paper §III-B4).
//!
//! OpenRefine's text-facet clustering groups alternative representations of
//! the same value ("U.S. Bank" / "US Bank"); its default method is
//! **fingerprint key collision**: lowercase, strip punctuation, split into
//! tokens, deduplicate, sort, rejoin — values with equal fingerprints are
//! one cluster. Repair merges every cluster to its most frequent member
//! (paper: "merging all values in one cluster into the most frequent one").
//!
//! Clusters are learned on the training partition; at apply time, any value
//! (including ones never seen in training) is normalized through its
//! fingerprint, so the test partition is cleaned consistently without
//! leaking test statistics.

use std::collections::HashMap;

use cleanml_dataset::{ColumnKind, ColumnRole, Table, Value};

use crate::report::TableReport;
use crate::Result;

/// Computes OpenRefine's fingerprint key of a string.
pub fn fingerprint(s: &str) -> String {
    let mut tokens: Vec<String> = s
        .to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect();
    tokens.sort();
    tokens.dedup();
    tokens.join(" ")
}

/// A fitted inconsistency cleaner: per column, fingerprint → canonical value.
#[derive(Debug, Clone)]
pub struct FittedInconsistency {
    /// column → (fingerprint → canonical string).
    canonical: HashMap<usize, HashMap<String, String>>,
    /// column → set of fingerprints whose training cluster had ≥ 2 distinct
    /// members (i.e. actual inconsistencies, counted by `detected`).
    inconsistent: HashMap<usize, HashMap<String, bool>>,
}

/// Columns eligible for inconsistency cleaning: categorical features and
/// carried-along text columns (never the label, never keys).
fn eligible_columns(table: &Table) -> Vec<usize> {
    table
        .schema()
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.kind == ColumnKind::Categorical
                && matches!(f.role, ColumnRole::Feature | ColumnRole::Ignore)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Learns fingerprint clusters and canonical representatives from `train`.
pub fn fit(train: &Table) -> Result<FittedInconsistency> {
    let mut canonical = HashMap::new();
    let mut inconsistent = HashMap::new();
    for col in eligible_columns(train) {
        let c = train.column(col)?;
        // fingerprint → (value → count)
        let mut clusters: HashMap<String, HashMap<String, usize>> = HashMap::new();
        for r in 0..train.n_rows() {
            if let Some(v) = c.cat_str(r) {
                *clusters.entry(fingerprint(v)).or_default().entry(v.to_owned()).or_insert(0) += 1;
            }
        }
        let mut canon_col = HashMap::new();
        let mut incons_col = HashMap::new();
        for (fp, members) in clusters {
            let multi = members.len() >= 2;
            let canon = members
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))) // most frequent, ties → smallest string
                .map(|(v, _)| v.clone())
                .expect("cluster non-empty");
            incons_col.insert(fp.clone(), multi);
            canon_col.insert(fp, canon);
        }
        canonical.insert(col, canon_col);
        inconsistent.insert(col, incons_col);
    }
    Ok(FittedInconsistency { canonical, inconsistent })
}

impl FittedInconsistency {
    /// Number of training clusters with ≥ 2 distinct spellings (diagnostics).
    pub fn n_inconsistent_clusters(&self) -> usize {
        self.inconsistent.values().map(|m| m.values().filter(|&&b| b).count()).sum()
    }

    /// Cleans one table by merging every value to its cluster's canonical
    /// representative.
    pub fn apply(&self, table: &Table) -> Result<(Table, TableReport)> {
        let mut out = table.clone();
        let mut detected = 0usize;
        let mut repaired = 0usize;
        for (&col, canon_col) in &self.canonical {
            let incons_col = &self.inconsistent[&col];
            // Collect replacements first (borrow rules: `out` mutated after).
            let mut edits: Vec<(usize, String)> = Vec::new();
            {
                let c = table.column(col)?;
                for r in 0..table.n_rows() {
                    let Some(v) = c.cat_str(r) else { continue };
                    let fp = fingerprint(v);
                    if incons_col.get(&fp).copied().unwrap_or(false) {
                        detected += 1;
                    }
                    if let Some(canon) = canon_col.get(&fp) {
                        if canon != v {
                            edits.push((r, canon.clone()));
                        }
                    }
                }
            }
            repaired += edits.len();
            for (r, canon) in edits {
                out.set(r, col, Value::Str(canon))?;
            }
        }
        let report = TableReport {
            rows_before: table.n_rows(),
            rows_after: out.n_rows(),
            detected,
            repaired,
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::{FieldMeta, Schema};

    #[test]
    fn fingerprint_examples() {
        assert_eq!(fingerprint("New York"), "new york");
        assert_eq!(fingerprint("york NEW"), "new york");
        assert_eq!(fingerprint("New---York!!"), "new york");
        assert_eq!(fingerprint("new new york"), "new york"); // dedup
        assert_ne!(fingerprint("New York"), fingerprint("Newark"));
    }

    fn table_with_inconsistencies() -> Table {
        let schema = Schema::new(vec![FieldMeta::cat_feature("state"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        for (v, y) in [
            ("California", "p"),
            ("California", "p"),
            ("california", "n"),
            ("CALIFORNIA", "p"),
            ("Texas", "n"),
            ("texas", "n"),
            ("Texas", "p"),
            ("Oregon", "p"),
        ] {
            t.push_row(vec![Value::from(v), Value::from(y)]).unwrap();
        }
        t
    }

    #[test]
    fn merges_to_most_frequent() {
        let t = table_with_inconsistencies();
        let cleaner = fit(&t).unwrap();
        assert_eq!(cleaner.n_inconsistent_clusters(), 2);
        let (clean, report) = cleaner.apply(&t).unwrap();
        // All california spellings -> "California" (count 2 beats 1,1)
        for r in 0..4 {
            assert_eq!(clean.get(r, 0).unwrap(), Value::Str("California".into()), "row {r}");
        }
        for r in 4..7 {
            assert_eq!(clean.get(r, 0).unwrap(), Value::Str("Texas".into()), "row {r}");
        }
        assert_eq!(clean.get(7, 0).unwrap(), Value::Str("Oregon".into()));
        assert_eq!(report.detected, 7); // members of multi-spelling clusters
        assert_eq!(report.repaired, 3); // cells actually rewritten
    }

    #[test]
    fn test_partition_normalized_via_fingerprints() {
        let train = table_with_inconsistencies();
        let cleaner = fit(&train).unwrap();
        let mut test = Table::new(train.schema().clone());
        test.push_row(vec![Value::from("CaLiFoRnIa"), Value::from("p")]).unwrap(); // unseen spelling
        test.push_row(vec![Value::from("Nevada"), Value::from("n")]).unwrap(); // unseen value
        let (clean, _) = cleaner.apply(&test).unwrap();
        assert_eq!(clean.get(0, 0).unwrap(), Value::Str("California".into()));
        assert_eq!(clean.get(1, 0).unwrap(), Value::Str("Nevada".into()));
    }

    #[test]
    fn idempotent() {
        let t = table_with_inconsistencies();
        let cleaner = fit(&t).unwrap();
        let (clean1, _) = cleaner.apply(&t).unwrap();
        let (clean2, report2) = cleaner.apply(&clean1).unwrap();
        assert_eq!(clean1, clean2);
        assert_eq!(report2.repaired, 0);
    }

    #[test]
    fn label_and_key_columns_untouched() {
        let schema = Schema::new(vec![
            FieldMeta::key("id"),
            FieldMeta::cat_feature("c"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::from("A 1"), Value::from("x"), Value::from("p p")]).unwrap();
        t.push_row(vec![Value::from("a-1"), Value::from("x"), Value::from("P P")]).unwrap();
        let cleaner = fit(&t).unwrap();
        let (clean, _) = cleaner.apply(&t).unwrap();
        // key and label preserved verbatim even though fingerprints collide
        assert_eq!(clean.get(1, 0).unwrap(), Value::Str("a-1".into()));
        assert_eq!(clean.get(1, 2).unwrap(), Value::Str("P P".into()));
    }

    #[test]
    fn missing_cells_skipped() {
        let schema = Schema::new(vec![FieldMeta::cat_feature("c"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Null, Value::from("p")]).unwrap();
        t.push_row(vec![Value::from("x"), Value::from("n")]).unwrap();
        let cleaner = fit(&t).unwrap();
        let (clean, report) = cleaner.apply(&t).unwrap();
        assert_eq!(clean.get(0, 0).unwrap(), Value::Null);
        assert_eq!(report.repaired, 0);
    }
}
