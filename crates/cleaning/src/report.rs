//! Bookkeeping of what a cleaning pass changed.

/// Summary of one cleaning application (one table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableReport {
    /// Rows in the table before cleaning.
    pub rows_before: usize,
    /// Rows after cleaning (deletion-style repairs shrink tables).
    pub rows_after: usize,
    /// Cells (or labels, for mislabel cleaning) flagged by detection.
    pub detected: usize,
    /// Cells / labels / rows actually changed by repair.
    pub repaired: usize,
}

/// Report for a train/test cleaning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CleaningReport {
    pub train: TableReport,
    pub test: TableReport,
}

impl CleaningReport {
    /// Total detections across both partitions.
    pub fn total_detected(&self) -> usize {
        self.train.detected + self.test.detected
    }

    /// Total repairs across both partitions.
    pub fn total_repaired(&self) -> usize {
        self.train.repaired + self.test.repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let r = CleaningReport {
            train: TableReport { rows_before: 10, rows_after: 8, detected: 3, repaired: 2 },
            test: TableReport { rows_before: 5, rows_after: 5, detected: 1, repaired: 1 },
        };
        assert_eq!(r.total_detected(), 4);
        assert_eq!(r.total_repaired(), 3);
    }
}
