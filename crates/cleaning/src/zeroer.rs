//! ZeroER's generative core: a two-component Gaussian mixture over record-
//! pair similarity vectors, fit by EM with zero labeled examples.
//!
//! ZeroER (Wu et al., SIGMOD'20) observes that the similarity vectors of
//! matching and non-matching record pairs form two clusters; fitting a
//! 2-component GMM by expectation–maximization separates them without any
//! labels, and the component with the higher mean similarity is the *match*
//! class. This module implements exactly that core (diagonal covariance,
//! deterministic initialization from the similarity ranking); ZeroER's
//! blocking refinements and transitivity post-processing are omitted — see
//! `DESIGN.md` §4.

/// A flat column-major matrix of pair-similarity vectors: dimension `d` of
/// all `n` pairs occupies the contiguous slice `data[d*n..(d+1)*n]`, mirroring
/// the columnar arena used by `FeatureMatrix`. The fixed width makes ragged
/// input unrepresentable and gives the EM M-step contiguous per-dimension
/// sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    data: Vec<f64>,
    n: usize,
    dim: usize,
}

impl SimMatrix {
    /// An `n × dim` matrix of zeros.
    pub fn zeroed(n: usize, dim: usize) -> SimMatrix {
        SimMatrix { data: vec![0.0; n * dim], n, dim }
    }

    /// Number of pairs (rows).
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Similarity-vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Value of dimension `d` for pair `i`.
    #[inline(always)]
    pub fn at(&self, i: usize, d: usize) -> f64 {
        self.data[d * self.n + i]
    }

    /// Contiguous column view of dimension `d` across all pairs.
    pub fn col(&self, d: usize) -> &[f64] {
        &self.data[d * self.n..(d + 1) * self.n]
    }

    /// Scatters one pair's similarity vector into the arena.
    pub fn set_row(&mut self, i: usize, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "similarity vector width mismatch");
        for (d, &v) in row.iter().enumerate() {
            self.data[d * self.n + i] = v;
        }
    }

    /// Gathers pair `i`'s similarity vector into `out`.
    pub fn read_row(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "similarity vector width mismatch");
        for (d, o) in out.iter_mut().enumerate() {
            *o = self.data[d * self.n + i];
        }
    }
}

/// A fitted 2-component diagonal Gaussian mixture.
///
/// Component 0 is *unmatch*, component 1 is *match* (higher mean similarity).
#[derive(Debug, Clone)]
pub struct PairGmm {
    means: [Vec<f64>; 2],
    vars: [Vec<f64>; 2],
    /// Per-dimension means of the seed pairs; the match component is
    /// anchored near them (see the regularization constants).
    seed_means: Vec<f64>,
    /// Prior probability of the match component.
    match_prior: f64,
    dim: usize,
}

/// Variance floor to keep densities finite on degenerate features.
const VAR_FLOOR: f64 = 1e-4;
/// EM iterations (convergence on these small problems is fast).
const EM_ITERS: usize = 50;
/// Regularized-EM constraints, in the spirit of ZeroER's feature
/// regularization: true matches are rare, near-identical, and stochastically
/// dominate non-matches on every similarity feature. Without them, EM on the
/// continuous "share-some-tokens" similarity shoulder of real text data
/// drifts the match component downward until it absorbs a large fraction of
/// candidate pairs.
const MAX_MATCH_PRIOR: f64 = 0.02;
const MAX_MATCH_VAR: f64 = 0.02;
/// Floor on the unmatch variance, equal to the match cap: without it the
/// unmatch component's tighter tails make mid-similarity points *relatively*
/// more likely under the broad match Gaussian, flooding the result with
/// false positives (the tied-covariance robustification).
const MIN_UNMATCH_VAR: f64 = MAX_MATCH_VAR;
const DOMINANCE_GAP: f64 = 0.2;
/// How far below its seed mean the match component may drift per feature.
const SEED_SLACK: f64 = 0.1;

impl PairGmm {
    /// Fits the mixture to `points` (each a similarity vector in `[0,1]^d`).
    ///
    /// Initialization is deterministic and anchored at genuinely similar
    /// pairs: seeds are the pairs with mean similarity ≥ 0.8 (falling back
    /// to the top 0.1% by rank, at least 3 pairs, when none clear the bar).
    /// In entity resolution true matches are a tiny fraction of candidate
    /// pairs, so a large seed set would let EM converge to a
    /// "somewhat similar" cluster instead of the match cluster. Returns
    /// `None` when there are fewer than 2 points or zero dimensions.
    pub fn fit(points: &SimMatrix) -> Option<PairGmm> {
        let n = points.n_rows();
        if n < 2 {
            return None;
        }
        let dim = points.dim();
        if dim == 0 {
            return None;
        }

        let mean_sim = |i: usize| (0..dim).map(|d| points.at(i, d)).sum::<f64>() / dim as f64;
        let mut seeds: Vec<usize> = (0..n).filter(|&i| mean_sim(i) >= 0.8).collect();
        if seeds.len() < 3 {
            let mut ranked: Vec<usize> = (0..n).collect();
            ranked.sort_by(|&a, &b| {
                mean_sim(b).partial_cmp(&mean_sim(a)).expect("finite sims").then(a.cmp(&b))
            });
            let n_top = (n / 1000).max(3).min(n - 1);
            seeds = ranked[..n_top].to_vec();
        }
        let n_match_init = seeds.len();

        let mut resp: Vec<f64> = vec![0.0; n]; // P(match | point)
        for &i in &seeds {
            resp[i] = 1.0;
        }

        let mut seed_means = vec![0.0; dim];
        for &i in &seeds {
            for (d, m) in seed_means.iter_mut().enumerate() {
                *m += points.at(i, d);
            }
        }
        for m in &mut seed_means {
            *m /= n_match_init as f64;
        }

        let mut gmm = PairGmm {
            means: [vec![0.0; dim], vec![0.0; dim]],
            vars: [vec![VAR_FLOOR; dim], vec![VAR_FLOOR; dim]],
            seed_means,
            match_prior: (n_match_init as f64 / n as f64).min(MAX_MATCH_PRIOR),
            dim,
        };

        let mut row = vec![0.0; dim];
        for _ in 0..EM_ITERS {
            // M step, swept over contiguous per-dimension columns; every
            // accumulator still receives its pairs in ascending order.
            let w1: f64 = resp.iter().sum();
            let w0 = n as f64 - w1;
            if w1 < 1e-9 || w0 < 1e-9 {
                break; // collapsed; keep previous parameters
            }
            for d in 0..dim {
                let col = points.col(d);
                let m1: f64 = col.iter().zip(&resp).map(|(p, r)| r * p).sum::<f64>() / w1;
                let m0: f64 = col.iter().zip(&resp).map(|(p, r)| (1.0 - r) * p).sum::<f64>() / w0;
                let v1: f64 =
                    col.iter().zip(&resp).map(|(p, r)| r * (p - m1) * (p - m1)).sum::<f64>() / w1;
                let v0: f64 = col
                    .iter()
                    .zip(&resp)
                    .map(|(p, r)| (1.0 - r) * (p - m0) * (p - m0))
                    .sum::<f64>()
                    / w0;
                gmm.means[0][d] = m0;
                // Dominance constraint (match above unmatch on every
                // feature) plus seed anchoring (no drifting down the
                // similarity shoulder away from the near-identical seeds).
                gmm.means[1][d] =
                    m1.max(m0 + DOMINANCE_GAP).max(gmm.seed_means[d] - SEED_SLACK).min(1.0);
                gmm.vars[0][d] = v0.max(MIN_UNMATCH_VAR);
                // Matches are near-identical: cap their spread.
                gmm.vars[1][d] = v1.clamp(VAR_FLOOR, MAX_MATCH_VAR);
            }
            gmm.match_prior = (w1 / n as f64).clamp(1e-6, MAX_MATCH_PRIOR);

            // E step.
            for (i, r) in resp.iter_mut().enumerate() {
                points.read_row(i, &mut row);
                *r = gmm.posterior_match(&row);
            }
        }

        // Enforce the match component to be the higher-similarity one.
        let mean1: f64 = gmm.means[1].iter().sum();
        let mean0: f64 = gmm.means[0].iter().sum();
        if mean1 < mean0 {
            gmm.means.swap(0, 1);
            gmm.vars.swap(0, 1);
            gmm.match_prior = 1.0 - gmm.match_prior;
        }
        Some(gmm)
    }

    /// Posterior probability that `point` is a matching pair.
    pub fn posterior_match(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.dim, "dimension mismatch");
        let ll1 = self.log_density(point, 1) + self.match_prior.ln();
        let ll0 = self.log_density(point, 0) + (1.0 - self.match_prior).ln();
        let max = ll1.max(ll0);
        let e1 = (ll1 - max).exp();
        let e0 = (ll0 - max).exp();
        e1 / (e1 + e0)
    }

    fn log_density(&self, point: &[f64], comp: usize) -> f64 {
        let mut ll = 0.0;
        for (p, (m, &var)) in
            point[..self.dim].iter().zip(self.means[comp].iter().zip(&self.vars[comp]))
        {
            let dev = p - m;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + dev * dev / var);
        }
        ll
    }

    /// Mean vector of the match component (diagnostics).
    pub fn match_mean(&self) -> &[f64] {
        &self.means[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 90 low-similarity pairs + 10 high-similarity pairs.
    fn bimodal_points() -> SimMatrix {
        let mut pts = SimMatrix::zeroed(100, 3);
        for i in 0..90 {
            let jitter = (i as f64 * 0.37).sin() * 0.05;
            pts.set_row(i, &[0.2 + jitter, 0.15 - jitter, 0.25 + jitter * 0.5]);
        }
        for i in 0..10 {
            let jitter = (i as f64 * 0.71).cos() * 0.03;
            pts.set_row(90 + i, &[0.92 + jitter, 0.88 - jitter, 0.95 + jitter * 0.5]);
        }
        pts
    }

    fn row_of(pts: &SimMatrix, i: usize) -> Vec<f64> {
        let mut out = vec![0.0; pts.dim()];
        pts.read_row(i, &mut out);
        out
    }

    #[test]
    fn separates_bimodal_similarities() {
        let pts = bimodal_points();
        let gmm = PairGmm::fit(&pts).unwrap();
        // match mean clearly above unmatch mean
        let m1: f64 = gmm.match_mean().iter().sum::<f64>() / 3.0;
        assert!(m1 > 0.7, "match mean {m1}");
        // posteriors classify correctly
        for i in 0..90 {
            let p = row_of(&pts, i);
            assert!(gmm.posterior_match(&p) < 0.5, "false positive on {p:?}");
        }
        for i in 90..100 {
            let p = row_of(&pts, i);
            assert!(gmm.posterior_match(&p) > 0.5, "false negative on {p:?}");
        }
    }

    #[test]
    fn deterministic() {
        let pts = bimodal_points();
        let a = PairGmm::fit(&pts).unwrap();
        let b = PairGmm::fit(&pts).unwrap();
        assert_eq!(a.posterior_match(&row_of(&pts, 0)), b.posterior_match(&row_of(&pts, 0)));
        assert_eq!(a.posterior_match(&row_of(&pts, 95)), b.posterior_match(&row_of(&pts, 95)));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(PairGmm::fit(&SimMatrix::zeroed(0, 3)).is_none());
        assert!(PairGmm::fit(&SimMatrix::zeroed(1, 3)).is_none());
        assert!(PairGmm::fit(&SimMatrix::zeroed(2, 0)).is_none());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_unrepresentable() {
        let mut pts = SimMatrix::zeroed(2, 2);
        pts.set_row(0, &[0.5]); // wrong width panics instead of corrupting
    }

    #[test]
    fn constant_points_do_not_crash() {
        let mut pts = SimMatrix::zeroed(20, 2);
        for i in 0..20 {
            pts.set_row(i, &[0.5, 0.5]);
        }
        let gmm = PairGmm::fit(&pts).unwrap();
        let p = gmm.posterior_match(&[0.5, 0.5]);
        assert!(p.is_finite());
    }

    #[test]
    fn extreme_query_points() {
        let pts = bimodal_points();
        let gmm = PairGmm::fit(&pts).unwrap();
        assert!(gmm.posterior_match(&[1.0, 1.0, 1.0]) > 0.5);
        assert!(gmm.posterior_match(&[0.0, 0.0, 0.0]) < 0.5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn posterior_checks_dims() {
        let pts = bimodal_points();
        let gmm = PairGmm::fit(&pts).unwrap();
        gmm.posterior_match(&[0.5]);
    }

    #[test]
    fn sim_matrix_round_trips_rows_and_columns() {
        let mut m = SimMatrix::zeroed(3, 2);
        m.set_row(0, &[1.0, 2.0]);
        m.set_row(1, &[3.0, 4.0]);
        m.set_row(2, &[5.0, 6.0]);
        assert_eq!(m.col(0), &[1.0, 3.0, 5.0]);
        assert_eq!(m.col(1), &[2.0, 4.0, 6.0]);
        assert_eq!(m.at(1, 1), 4.0);
        assert_eq!(row_of(&m, 2), vec![5.0, 6.0]);
    }
}
