//! Numeric outlier detection and repair (paper §III-B2).
//!
//! Three detectors, matching the paper's parameters exactly:
//!
//! * **SD** — a cell is an outlier when it lies more than `n = 3` standard
//!   deviations from its column's training mean.
//! * **IQR** — outside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` of the training
//!   quartiles.
//! * **Isolation Forest** — per-column isolation forests (CleanML applies
//!   scikit-learn's `IsolationForest` with `contamination = 0.01` to obtain
//!   per-cell outlier masks); a cell is an outlier when its anomaly score
//!   exceeds the `1 − contamination` quantile of the training scores.
//!
//! Repairs impute the flagged cells with the mean / median / mode of the
//! column's **non-outlying** training values, or with HoloClean-style
//! inference — mirroring the paper's "same repairs as missing values, minus
//! the categorical variants" (outliers are numeric-only).

use std::collections::HashMap;

use cleanml_dataset::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::CleaningError;
use crate::holoclean::HoloCleanImputer;
use crate::report::TableReport;
use crate::Result;

/// Outlier detection rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierDetection {
    /// Mean ± `n_sigmas`·σ (paper: n = 3).
    Sd { n_sigmas: f64 },
    /// Tukey fences with multiplier `k` (paper: k = 1.5).
    Iqr { k: f64 },
    /// Per-column isolation forest (paper: contamination = 0.01).
    IsolationForest { contamination: f64, n_trees: usize },
}

impl OutlierDetection {
    /// The paper's three detectors with its exact parameters.
    pub fn paper_detectors() -> [OutlierDetection; 3] {
        [
            OutlierDetection::Sd { n_sigmas: 3.0 },
            OutlierDetection::Iqr { k: 1.5 },
            OutlierDetection::IsolationForest { contamination: 0.01, n_trees: 50 },
        ]
    }

    /// Short name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            OutlierDetection::Sd { .. } => "SD",
            OutlierDetection::Iqr { .. } => "IQR",
            OutlierDetection::IsolationForest { .. } => "IF",
        }
    }
}

/// Outlier repair rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutlierRepair {
    Mean,
    Median,
    Mode,
    HoloClean,
}

impl OutlierRepair {
    /// All four repairs in Table 2 order.
    pub fn all() -> [OutlierRepair; 4] {
        [OutlierRepair::Mean, OutlierRepair::Median, OutlierRepair::Mode, OutlierRepair::HoloClean]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OutlierRepair::Mean => "Mean",
            OutlierRepair::Median => "Median",
            OutlierRepair::Mode => "Mode",
            OutlierRepair::HoloClean => "HoloClean",
        }
    }
}

/// Per-column fitted detector state.
#[derive(Debug, Clone)]
enum ColumnDetector {
    Range { lo: f64, hi: f64 },
    Forest { forest: IsolationForest1D, threshold: f64 },
}

/// A fitted outlier cleaner.
#[derive(Debug, Clone)]
pub struct FittedOutliers {
    detection: OutlierDetection,
    repair: OutlierRepair,
    detectors: HashMap<usize, ColumnDetector>,
    /// Repair value per column (for Mean/Median/Mode repairs).
    repair_values: HashMap<usize, f64>,
    holoclean: Option<HoloCleanImputer>,
}

/// Fits detector bounds and repair statistics on `train`.
pub fn fit(
    detection: OutlierDetection,
    repair: OutlierRepair,
    train: &Table,
    seed: u64,
) -> Result<FittedOutliers> {
    let cols = train.schema().numeric_feature_indices();
    if cols.is_empty() {
        return Err(CleaningError::NotApplicable {
            method: "outlier cleaning",
            reason: "no numeric feature columns".into(),
        });
    }

    // Per-column detector fits are independent (the isolation-forest seed
    // is derived from the column *index*, not a shared stream), so heavy
    // detections fan out onto idle pool workers; index-ordered collection
    // keeps the fitted state identical to the serial loop.
    let fitted = cleanml_parallel::run_indexed(cols.len(), |i| -> Result<ColumnDetector> {
        let c = train.column(cols[i])?;
        Ok(match detection {
            OutlierDetection::Sd { n_sigmas } => {
                let mean = cleanml_dataset::stats::mean(c).unwrap_or(0.0);
                let sd = cleanml_dataset::stats::std_dev(c).unwrap_or(0.0);
                ColumnDetector::Range { lo: mean - n_sigmas * sd, hi: mean + n_sigmas * sd }
            }
            OutlierDetection::Iqr { k } => {
                let q1 = cleanml_dataset::stats::quantile(c, 0.25).unwrap_or(0.0);
                let q3 = cleanml_dataset::stats::quantile(c, 0.75).unwrap_or(0.0);
                let iqr = q3 - q1;
                ColumnDetector::Range { lo: q1 - k * iqr, hi: q3 + k * iqr }
            }
            OutlierDetection::IsolationForest { contamination, n_trees } => {
                let values = c.numeric_values();
                let forest = IsolationForest1D::fit(&values, n_trees, seed.wrapping_add(i as u64));
                let mut scores: Vec<f64> = values.iter().map(|&v| forest.score(v)).collect();
                scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
                let threshold = if scores.is_empty() {
                    f64::INFINITY
                } else {
                    cleanml_dataset::stats::quantile_sorted(&scores, 1.0 - contamination)
                };
                ColumnDetector::Forest { forest, threshold }
            }
        })
    });
    let mut detectors = HashMap::new();
    for (i, det) in fitted.into_iter().enumerate() {
        detectors.insert(cols[i], det?);
    }

    // Repair statistics over the *non-outlying* training values.
    let mut repair_values = HashMap::new();
    if repair != OutlierRepair::HoloClean {
        for &col in &cols {
            let c = train.column(col)?;
            let det = &detectors[&col];
            let mut inliers: Vec<f64> =
                c.numeric_values().into_iter().filter(|&v| !is_outlier(det, v)).collect();
            if inliers.is_empty() {
                inliers = c.numeric_values();
            }
            let value = match repair {
                OutlierRepair::Mean => {
                    if inliers.is_empty() {
                        0.0
                    } else {
                        inliers.iter().sum::<f64>() / inliers.len() as f64
                    }
                }
                OutlierRepair::Median => {
                    if inliers.is_empty() {
                        0.0
                    } else {
                        inliers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                        cleanml_dataset::stats::quantile_sorted(&inliers, 0.5)
                    }
                }
                OutlierRepair::Mode => {
                    if inliers.is_empty() {
                        0.0
                    } else {
                        mode_of(&mut inliers)
                    }
                }
                OutlierRepair::HoloClean => unreachable!(),
            };
            repair_values.insert(col, value);
        }
    }

    let holoclean =
        if repair == OutlierRepair::HoloClean { Some(HoloCleanImputer::fit(train)?) } else { None };

    Ok(FittedOutliers { detection, repair, detectors, repair_values, holoclean })
}

fn is_outlier(det: &ColumnDetector, v: f64) -> bool {
    match det {
        ColumnDetector::Range { lo, hi } => v < *lo || v > *hi,
        ColumnDetector::Forest { forest, threshold } => forest.score(v) > *threshold,
    }
}

fn mode_of(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut best = values[0];
    let mut best_count = 1;
    let mut cur = values[0];
    let mut cur_count = 1;
    for &v in &values[1..] {
        if v == cur {
            cur_count += 1;
        } else {
            cur = v;
            cur_count = 1;
        }
        if cur_count > best_count {
            best = cur;
            best_count = cur_count;
        }
    }
    best
}

impl FittedOutliers {
    /// The detection rule.
    pub fn detection(&self) -> OutlierDetection {
        self.detection
    }

    /// The repair rule.
    pub fn repair(&self) -> OutlierRepair {
        self.repair
    }

    /// Flags outlying cells of `table` (pairs of `(row, col)`).
    pub fn detect(&self, table: &Table) -> Result<Vec<(usize, usize)>> {
        let mut cells = Vec::new();
        for (&col, det) in &self.detectors {
            let c = table.column(col)?;
            for r in 0..table.n_rows() {
                if let Some(v) = c.num(r) {
                    if is_outlier(det, v) {
                        cells.push((r, col));
                    }
                }
            }
        }
        cells.sort_unstable();
        Ok(cells)
    }

    /// Cleans one table: detects outlying cells and overwrites them with the
    /// fitted repair value.
    pub fn apply(&self, table: &Table) -> Result<(Table, TableReport)> {
        let cells = self.detect(table)?;
        let mut out = table.clone();
        for &(r, col) in &cells {
            let value = match self.repair {
                OutlierRepair::HoloClean => {
                    let imputer = self.holoclean.as_ref().expect("fitted for HoloClean");
                    // Impute from the row's *other* attributes; if the model
                    // has no signal, keep the training mean estimate.
                    imputer.impute_numeric(table, r, col).unwrap_or(0.0)
                }
                _ => self.repair_values.get(&col).copied().unwrap_or(0.0),
            };
            out.set(r, col, Value::Num(value))?;
        }
        let report = TableReport {
            rows_before: table.n_rows(),
            rows_after: out.n_rows(),
            detected: cells.len(),
            repaired: cells.len(),
        };
        Ok((out, report))
    }
}

/// A one-dimensional isolation forest.
///
/// Each tree recursively picks a uniform split point within the current
/// value range until the sample is isolated or the depth cap is hit; the
/// anomaly score is `2^(−E[path]/c(ψ))` (Liu et al., ICDM'08). Values far
/// outside the bulk isolate quickly and score near 1.
#[derive(Debug, Clone)]
pub struct IsolationForest1D {
    trees: Vec<Tree1D>,
    c_psi: f64,
}

#[derive(Debug, Clone)]
enum Tree1D {
    Leaf { size: usize },
    Split { at: f64, left: Box<Tree1D>, right: Box<Tree1D> },
}

/// Average unsuccessful-search path length in a BST of n nodes.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_9) - 2.0 * (n - 1.0) / n
}

impl IsolationForest1D {
    /// Builds `n_trees` isolation trees over subsamples of `values`.
    pub fn fit(values: &[f64], n_trees: usize, seed: u64) -> IsolationForest1D {
        const PSI: usize = 128;
        let mut rng = StdRng::seed_from_u64(seed);
        let psi = PSI.min(values.len().max(1));
        let max_depth = (psi as f64).log2().ceil() as usize + 1;
        let mut trees = Vec::with_capacity(n_trees.max(1));
        for _ in 0..n_trees.max(1) {
            let sample: Vec<f64> = if values.is_empty() {
                vec![0.0]
            } else {
                (0..psi).map(|_| values[rng.random_range(0..values.len())]).collect()
            };
            trees.push(build_tree1d(sample, 0, max_depth, &mut rng));
        }
        IsolationForest1D { trees, c_psi: c_factor(psi) }
    }

    /// Anomaly score in `(0, 1)`; higher = more anomalous.
    pub fn score(&self, v: f64) -> f64 {
        if self.c_psi <= 0.0 {
            return 0.5;
        }
        let mean_path: f64 =
            self.trees.iter().map(|t| path_length(t, v, 0)).sum::<f64>() / self.trees.len() as f64;
        2f64.powf(-mean_path / self.c_psi)
    }
}

fn build_tree1d(mut values: Vec<f64>, depth: usize, max_depth: usize, rng: &mut StdRng) -> Tree1D {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if depth >= max_depth || values.len() <= 1 || hi - lo < 1e-12 {
        return Tree1D::Leaf { size: values.len() };
    }
    let at = rng.random_range(lo..hi);
    let right: Vec<f64> = values.iter().copied().filter(|&v| v > at).collect();
    values.retain(|&v| v <= at);
    Tree1D::Split {
        at,
        left: Box::new(build_tree1d(values, depth + 1, max_depth, rng)),
        right: Box::new(build_tree1d(right, depth + 1, max_depth, rng)),
    }
}

fn path_length(tree: &Tree1D, v: f64, depth: usize) -> f64 {
    match tree {
        Tree1D::Leaf { size } => depth as f64 + c_factor(*size),
        Tree1D::Split { at, left, right } => {
            if v <= *at {
                path_length(left, v, depth + 1)
            } else {
                path_length(right, v, depth + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::{FieldMeta, Schema};

    /// 60 inliers around 0 plus two extreme cells.
    fn table_with_outliers() -> Table {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::num_feature("z"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for i in 0..60 {
            let x = (i as f64 % 10.0) - 5.0; // -5..5
            let z = (i as f64 % 7.0) * 0.5;
            let y = if i % 2 == 0 { "p" } else { "n" };
            t.push_row(vec![Value::from(x), Value::from(z), Value::from(y)]).unwrap();
        }
        t.push_row(vec![Value::from(500.0), Value::from(1.0), Value::from("p")]).unwrap();
        t.push_row(vec![Value::from(-2.0), Value::from(-400.0), Value::from("n")]).unwrap();
        t
    }

    #[test]
    fn sd_detects_extremes() {
        let t = table_with_outliers();
        let cleaner =
            fit(OutlierDetection::Sd { n_sigmas: 3.0 }, OutlierRepair::Mean, &t, 0).unwrap();
        let cells = cleaner.detect(&t).unwrap();
        assert!(cells.contains(&(60, 0)), "x=500 missed: {cells:?}");
        assert!(cells.contains(&(61, 1)), "z=-400 missed: {cells:?}");
        // inlier cells untouched
        assert!(!cells.contains(&(0, 0)));
    }

    #[test]
    fn iqr_detects_extremes() {
        let t = table_with_outliers();
        let cleaner = fit(OutlierDetection::Iqr { k: 1.5 }, OutlierRepair::Median, &t, 0).unwrap();
        let cells = cleaner.detect(&t).unwrap();
        assert!(cells.contains(&(60, 0)));
        assert!(cells.contains(&(61, 1)));
    }

    #[test]
    fn isolation_forest_detects_extremes() {
        let t = table_with_outliers();
        let cleaner = fit(
            OutlierDetection::IsolationForest { contamination: 0.02, n_trees: 50 },
            OutlierRepair::Mean,
            &t,
            7,
        )
        .unwrap();
        let cells = cleaner.detect(&t).unwrap();
        assert!(cells.contains(&(60, 0)), "{cells:?}");
        assert!(cells.contains(&(61, 1)), "{cells:?}");
    }

    #[test]
    fn repair_uses_inlier_statistics() {
        let t = table_with_outliers();
        let cleaner =
            fit(OutlierDetection::Sd { n_sigmas: 3.0 }, OutlierRepair::Mean, &t, 0).unwrap();
        let (clean, report) = cleaner.apply(&t).unwrap();
        assert!(report.repaired >= 2);
        let fixed = clean.get(60, 0).unwrap().as_num().unwrap();
        // mean of inliers is near 0, definitely not near 500
        assert!(fixed.abs() < 10.0, "repaired value {fixed}");
        // other cells unchanged
        assert_eq!(clean.get(0, 0).unwrap(), t.get(0, 0).unwrap());
    }

    #[test]
    fn holoclean_repair_applies() {
        let t = table_with_outliers();
        let cleaner =
            fit(OutlierDetection::Sd { n_sigmas: 3.0 }, OutlierRepair::HoloClean, &t, 0).unwrap();
        let (clean, _) = cleaner.apply(&t).unwrap();
        let fixed = clean.get(60, 0).unwrap().as_num().unwrap();
        assert!(fixed.abs() < 50.0, "repaired value {fixed}");
    }

    #[test]
    fn no_numeric_features_not_applicable() {
        let schema = Schema::new(vec![FieldMeta::cat_feature("c"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::from("a"), Value::from("p")]).unwrap();
        assert!(matches!(
            fit(OutlierDetection::Sd { n_sigmas: 3.0 }, OutlierRepair::Mean, &t, 0),
            Err(CleaningError::NotApplicable { .. })
        ));
    }

    #[test]
    fn bounds_fitted_on_train_only() {
        let train = table_with_outliers();
        let cleaner =
            fit(OutlierDetection::Sd { n_sigmas: 3.0 }, OutlierRepair::Mean, &train, 0).unwrap();
        // A fresh table with one extreme value: detected via *train* bounds.
        let schema = train.schema().clone();
        let mut test = Table::new(schema);
        test.push_row(vec![Value::from(450.0), Value::from(0.0), Value::from("p")]).unwrap();
        let cells = cleaner.detect(&test).unwrap();
        assert_eq!(cells, vec![(0, 0)]);
    }

    #[test]
    fn missing_cells_ignored() {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        for i in 0..20 {
            t.push_row(vec![
                Value::from(i as f64),
                Value::from(if i % 2 == 0 { "a" } else { "b" }),
            ])
            .unwrap();
        }
        t.push_row(vec![Value::Null, Value::from("a")]).unwrap();
        let cleaner = fit(OutlierDetection::Iqr { k: 1.5 }, OutlierRepair::Mean, &t, 0).unwrap();
        let cells = cleaner.detect(&t).unwrap();
        assert!(cells.iter().all(|&(r, _)| r != 20));
    }

    #[test]
    fn iforest_scores_rank_extremes_higher() {
        let values: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
        let forest = IsolationForest1D::fit(&values, 50, 3);
        let s_in = forest.score(10.0);
        let s_out = forest.score(1000.0);
        assert!(s_out > s_in, "outlier {s_out} <= inlier {s_in}");
        assert!(s_out > 0.5);
    }

    #[test]
    fn iforest_constant_data() {
        let values = vec![5.0; 50];
        let forest = IsolationForest1D::fit(&values, 10, 0);
        let s = forest.score(5.0);
        assert!(s.is_finite());
    }

    #[test]
    fn detector_names() {
        let [sd, iqr, iforest] = OutlierDetection::paper_detectors();
        assert_eq!(sd.name(), "SD");
        assert_eq!(iqr.name(), "IQR");
        assert_eq!(iforest.name(), "IF");
        assert_eq!(OutlierRepair::all().len(), 4);
    }
}
