//! HoloClean-style probabilistic cell imputation.
//!
//! HoloClean (Rekatsinas et al., PVLDB'17) infers the most likely value of a
//! dirty cell by combining correlated signals across attributes with a
//! probabilistic model. For the imputation role it plays in CleanML (repair
//! of missing values and outliers), the essential signal is the conditional
//! distribution of the target attribute given the row's other attribute
//! values. This module implements that holistic inference directly:
//!
//! * **categorical targets** — naive-Bayes-style scoring: log prior from the
//!   training distribution plus, for every other categorical attribute, the
//!   Laplace-smoothed log conditional `P(target = v | attr = value)` from
//!   training co-occurrence counts; the argmax candidate wins.
//! * **numeric targets** — a shrinkage blend of (a) group means of the
//!   target conditioned on each categorical attribute value, (b) a linear
//!   prediction from the most correlated numeric attribute (when |r| is
//!   meaningful), and (c) the global training mean as prior.
//!
//! All statistics come from the **training partition** (paper §IV-A);
//! the label column is never used as a signal, so cleaning the test set
//! cannot leak labels.
//!
//! The substitution (full HoloClean → this engine) is recorded in
//! `DESIGN.md` §4: the paper's finding under test is that HoloClean is *not
//! noticeably better* than simple imputation for downstream ML, which this
//! same-signal engine evaluates fairly.

use std::collections::{BTreeMap, HashMap};

use cleanml_dataset::{ColumnKind, ColumnRole, Table};

use crate::Result;

/// Per-column co-occurrence statistics for one categorical target.
///
/// The per-signal maps are `BTreeMap`s, not `HashMap`s, on purpose: scoring
/// accumulates floating-point terms while iterating them, and float
/// addition is not associative — with a hash map's per-process-randomized
/// iteration order, two *processes* imputing the same cell could disagree
/// in the low bits, which breaks the artifact store's guarantee that a
/// resumed study is byte-identical to an uninterrupted one.
#[derive(Debug, Clone, Default)]
struct CatModel {
    /// Candidate value → training frequency.
    prior: HashMap<String, usize>,
    /// Signal column index → (signal value → (candidate → count)).
    cooc: BTreeMap<usize, HashMap<String, HashMap<String, usize>>>,
    n_rows: usize,
}

/// Statistics for one numeric target. See [`CatModel`] for why the
/// iterated map is ordered.
#[derive(Debug, Clone, Default)]
struct NumModel {
    /// Number of observed training values; 0 means the model is unusable.
    n_obs: usize,
    global_mean: f64,
    global_std: f64,
    /// Signal categorical column → (signal value → (mean, count)).
    group_means: BTreeMap<usize, HashMap<String, (f64, usize)>>,
    /// Best numeric predictor: (column, pearson r, its mean, its std).
    best_numeric: Option<(usize, f64, f64, f64)>,
}

/// A fitted HoloClean-style imputer.
#[derive(Debug, Clone)]
pub struct HoloCleanImputer {
    cat_models: HashMap<usize, CatModel>,
    num_models: HashMap<usize, NumModel>,
}

/// Correlation threshold below which a numeric predictor is ignored.
const MIN_ABS_R: f64 = 0.3;
/// Shrinkage constant: a group of n rows gets weight `n / (n + SHRINK)`.
const SHRINK: f64 = 5.0;

impl HoloCleanImputer {
    /// Learns co-occurrence and correlation statistics from `train` for every
    /// non-label column.
    pub fn fit(train: &Table) -> Result<HoloCleanImputer> {
        let schema = train.schema();
        let label = schema.label_index().ok();
        let n = train.n_rows();

        let signal_cats: Vec<usize> = (0..schema.len())
            .filter(|&c| {
                Some(c) != label
                    && schema.fields()[c].kind == ColumnKind::Categorical
                    && schema.fields()[c].role != ColumnRole::Key
            })
            .collect();
        let numeric_cols: Vec<usize> = (0..schema.len())
            .filter(|&c| Some(c) != label && schema.fields()[c].kind == ColumnKind::Numeric)
            .collect();

        let mut cat_models = HashMap::new();
        for &target in &signal_cats {
            let tcol = train.column(target)?;
            let mut model = CatModel { n_rows: n, ..Default::default() };
            for r in 0..n {
                if let Some(v) = tcol.cat_str(r) {
                    *model.prior.entry(v.to_owned()).or_insert(0) += 1;
                }
            }
            for &sig in &signal_cats {
                if sig == target {
                    continue;
                }
                let scol = train.column(sig)?;
                let table_for_sig: &mut HashMap<String, HashMap<String, usize>> =
                    model.cooc.entry(sig).or_default();
                for r in 0..n {
                    if let (Some(sv), Some(tv)) = (scol.cat_str(r), tcol.cat_str(r)) {
                        *table_for_sig
                            .entry(sv.to_owned())
                            .or_default()
                            .entry(tv.to_owned())
                            .or_insert(0) += 1;
                    }
                }
            }
            cat_models.insert(target, model);
        }

        let mut num_models = HashMap::new();
        for &target in &numeric_cols {
            let tcol = train.column(target)?;
            let vals = tcol.numeric_values();
            let mut model = NumModel { n_obs: vals.len(), ..Default::default() };
            if !vals.is_empty() {
                model.global_mean = vals.iter().sum::<f64>() / vals.len() as f64;
                let var = vals.iter().map(|x| (x - model.global_mean).powi(2)).sum::<f64>()
                    / vals.len() as f64;
                model.global_std = var.sqrt();
            }
            for &sig in &signal_cats {
                let scol = train.column(sig)?;
                let mut sums: HashMap<String, (f64, usize)> = HashMap::new();
                for r in 0..n {
                    if let (Some(sv), Some(x)) = (scol.cat_str(r), tcol.num(r)) {
                        let e = sums.entry(sv.to_owned()).or_insert((0.0, 0));
                        e.0 += x;
                        e.1 += 1;
                    }
                }
                let means: HashMap<String, (f64, usize)> =
                    sums.into_iter().map(|(k, (s, c))| (k, (s / c as f64, c))).collect();
                if !means.is_empty() {
                    model.group_means.insert(sig, means);
                }
            }
            // Strongest numeric co-predictor by |Pearson r| over complete pairs.
            let mut best: Option<(usize, f64, f64, f64)> = None;
            for &sig in &numeric_cols {
                if sig == target {
                    continue;
                }
                let scol = train.column(sig)?;
                if let Some((r_val, s_mean, s_std)) = pearson(train, tcol, scol) {
                    if r_val.abs() >= MIN_ABS_R
                        && best.is_none_or(|(_, br, _, _)| r_val.abs() > br.abs())
                    {
                        best = Some((sig, r_val, s_mean, s_std));
                    }
                }
            }
            model.best_numeric = best;
            num_models.insert(target, model);
        }

        Ok(HoloCleanImputer { cat_models, num_models })
    }

    /// Most likely categorical value for cell (`row`, `col`) of `table`,
    /// given the row's other attributes. `None` if no model or no candidates
    /// were observed at fit time.
    pub fn impute_categorical(&self, table: &Table, row: usize, col: usize) -> Option<String> {
        let model = self.cat_models.get(&col)?;
        if model.prior.is_empty() {
            return None;
        }
        let v_total: f64 = model.prior.len() as f64;
        let mut best: Option<(&str, f64)> = None;
        for (cand, &prior_count) in &model.prior {
            let mut score = ((prior_count as f64 + 1.0) / (model.n_rows as f64 + v_total)).ln();
            for (&sig, table_for_sig) in &model.cooc {
                let Ok(scol) = table.column(sig) else { continue };
                let Some(sv) = scol.cat_str(row) else { continue };
                let (count, total) = match table_for_sig.get(sv) {
                    Some(cands) => {
                        let c = cands.get(cand).copied().unwrap_or(0);
                        let t: usize = cands.values().sum();
                        (c, t)
                    }
                    None => (0, 0),
                };
                score += ((count as f64 + 1.0) / (total as f64 + v_total)).ln();
            }
            // Deterministic tie-break on the candidate string.
            let better = match best {
                None => true,
                Some((bc, bs)) => score > bs || (score == bs && cand.as_str() < bc),
            };
            if better {
                best = Some((cand, score));
            }
        }
        best.map(|(c, _)| c.to_owned())
    }

    /// Most likely numeric value for cell (`row`, `col`) of `table`.
    /// `None` if the column had no observed training values.
    pub fn impute_numeric(&self, table: &Table, row: usize, col: usize) -> Option<f64> {
        let model = self.num_models.get(&col)?;
        if model.n_obs == 0 {
            return None;
        }
        let mut weight_sum = 0.5; // prior pseudo-weight on the global mean
        let mut estimate = 0.5 * model.global_mean;

        for (&sig, means) in &model.group_means {
            let Ok(scol) = table.column(sig) else { continue };
            let Some(sv) = scol.cat_str(row) else { continue };
            if let Some(&(mean, count)) = means.get(sv) {
                let w = count as f64 / (count as f64 + SHRINK);
                estimate += w * mean;
                weight_sum += w;
            }
        }

        if let Some((sig, r, s_mean, s_std)) = model.best_numeric {
            if let Ok(scol) = table.column(sig) {
                if let Some(x) = scol.num(row) {
                    if s_std > 0.0 && model.global_std > 0.0 {
                        let pred =
                            model.global_mean + r * (model.global_std / s_std) * (x - s_mean);
                        let w = r.abs();
                        estimate += w * pred;
                        weight_sum += w;
                    }
                }
            }
        }

        Some(estimate / weight_sum)
    }
}

/// Pearson correlation between two numeric columns over rows where both are
/// present; returns `(r, mean_of_sig, std_of_sig)`.
fn pearson(
    table: &Table,
    target: &cleanml_dataset::Column,
    sig: &cleanml_dataset::Column,
) -> Option<(f64, f64, f64)> {
    let n = table.n_rows();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in 0..n {
        if let (Some(x), Some(y)) = (sig.num(r), target.num(r)) {
            xs.push(x);
            ys.push(y);
        }
    }
    if xs.len() < 3 {
        return None;
    }
    let m = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / m;
    let my = ys.iter().sum::<f64>() / m;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx * syy).sqrt(), mx, (sxx / m).sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::{FieldMeta, Schema, Value};

    /// city perfectly predicts tier; income correlates with age.
    fn train_table() -> Table {
        let schema = Schema::new(vec![
            FieldMeta::cat_feature("city"),
            FieldMeta::cat_feature("tier"),
            FieldMeta::num_feature("age"),
            FieldMeta::num_feature("income"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for i in 0..40 {
            let (city, tier) = if i % 2 == 0 { ("NYC", "high") } else { ("SLC", "low") };
            let age = 20.0 + i as f64;
            let income = 1000.0 + 50.0 * age + (i % 3) as f64;
            let y = if i % 2 == 0 { "a" } else { "b" };
            t.push_row(vec![
                Value::from(city),
                Value::from(tier),
                Value::from(age),
                Value::from(income),
                Value::from(y),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn categorical_inference_uses_cooccurrence() {
        let train = train_table();
        let imp = HoloCleanImputer::fit(&train).unwrap();
        // Row 0 is NYC; tier should be inferred "high" regardless of its cell.
        assert_eq!(imp.impute_categorical(&train, 0, 1).as_deref(), Some("high"));
        assert_eq!(imp.impute_categorical(&train, 1, 1).as_deref(), Some("low"));
    }

    #[test]
    fn numeric_inference_tracks_correlated_column() {
        let train = train_table();
        let imp = HoloCleanImputer::fit(&train).unwrap();
        // income strongly correlates with age; imputation for a row with
        // high age must be above the global mean, low age below.
        let young = imp.impute_numeric(&train, 0, 3).unwrap(); // age 20
        let old = imp.impute_numeric(&train, 39, 3).unwrap(); // age 59
        assert!(old > young, "old={old} young={young}");
        let global_mean: f64 = train.column(3).unwrap().numeric_values().iter().sum::<f64>() / 40.0;
        assert!(young < global_mean);
        assert!(old > global_mean);
    }

    #[test]
    fn numeric_inference_uses_group_means() {
        // No numeric co-predictor; city groups with different means.
        let schema = Schema::new(vec![
            FieldMeta::cat_feature("city"),
            FieldMeta::num_feature("price"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for i in 0..30 {
            let (city, price) = if i % 2 == 0 { ("NYC", 100.0) } else { ("SLC", 10.0) };
            t.push_row(vec![Value::from(city), Value::from(price), Value::from("a")]).unwrap();
        }
        // second class so label has 2 values
        t.push_row(vec![Value::from("NYC"), Value::from(100.0), Value::from("b")]).unwrap();
        let imp = HoloCleanImputer::fit(&t).unwrap();
        let nyc = imp.impute_numeric(&t, 0, 1).unwrap();
        let slc = imp.impute_numeric(&t, 1, 1).unwrap();
        assert!(nyc > 80.0, "{nyc}");
        assert!(slc < 30.0, "{slc}");
    }

    #[test]
    fn label_never_used_as_signal() {
        let train = train_table();
        let imp = HoloCleanImputer::fit(&train).unwrap();
        assert!(!imp.cat_models.contains_key(&4), "label must not be modelled");
        for model in imp.cat_models.values() {
            assert!(!model.cooc.contains_key(&4), "label must not be a signal");
        }
        for model in imp.num_models.values() {
            assert!(!model.group_means.contains_key(&4));
        }
    }

    #[test]
    fn unknown_column_returns_none() {
        let train = train_table();
        let imp = HoloCleanImputer::fit(&train).unwrap();
        assert_eq!(imp.impute_categorical(&train, 0, 2), None); // numeric col
        assert_eq!(imp.impute_numeric(&train, 0, 0), None); // categorical col
    }

    #[test]
    fn deterministic() {
        let train = train_table();
        let a = HoloCleanImputer::fit(&train).unwrap();
        let b = HoloCleanImputer::fit(&train).unwrap();
        assert_eq!(a.impute_numeric(&train, 5, 3), b.impute_numeric(&train, 5, 3));
        assert_eq!(a.impute_categorical(&train, 5, 1), b.impute_categorical(&train, 5, 1));
    }
}
