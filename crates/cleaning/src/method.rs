//! The unified cleaning-method catalogue (paper Table 2) and the single
//! train/test cleaning entry point used by the study runner.
//!
//! A [`CleaningMethod`] is an `(error type, detection, repair)` triple. The
//! [`CleaningMethod::catalogue`] for each error type reproduces Table 2 —
//! and its cardinalities reconcile exactly with the paper's R1 row counts
//! (e.g. 7 missing-value repairs × 6 datasets × 7 models = 294 = Table 11's
//! Q1 total; 10 outlier methods minus the HoloClean holistic method leave
//! 3 × 3 detector/repair combinations × 4 datasets × 2 scenarios × 7 models
//! = 504 rows in Q4.1's three detector groups, 560 total in Q1).
//!
//! [`clean_pair`] enforces the leakage protocol: fit on `train`, apply to
//! both partitions. Mislabel cleaning is the exception by design — labels
//! are cleaned per-table via confident learning (see [`crate::mislabel`]).

use cleanml_dataset::Table;
use std::fmt;

use crate::duplicates::{self, DuplicateDetection};
use crate::error::CleaningError;
use crate::inconsistency;
use crate::mislabel::ConfidentLearning;
use crate::missing::{self, CatImpute, MissingRepair, NumImpute};
use crate::outliers::{self, OutlierDetection, OutlierRepair};
use crate::report::CleaningReport;
use crate::Result;

/// The five error types of the study (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorType {
    MissingValues,
    Outliers,
    Duplicates,
    Inconsistencies,
    Mislabels,
}

impl ErrorType {
    /// All five error types.
    pub fn all() -> [ErrorType; 5] {
        [
            ErrorType::MissingValues,
            ErrorType::Outliers,
            ErrorType::Duplicates,
            ErrorType::Inconsistencies,
            ErrorType::Mislabels,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorType::MissingValues => "Missing Values",
            ErrorType::Outliers => "Outliers",
            ErrorType::Duplicates => "Duplicates",
            ErrorType::Inconsistencies => "Inconsistencies",
            ErrorType::Mislabels => "Mislabels",
        }
    }
}

impl fmt::Display for ErrorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Detection component of a cleaning method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Detection {
    /// Missing values: empty / NaN entries.
    Empty,
    /// Outliers: mean ± 3σ.
    Sd,
    /// Outliers: 1.5·IQR fences.
    Iqr,
    /// Outliers: per-column isolation forest, contamination 0.01.
    IsolationForest,
    /// Outliers: the HoloClean holistic engine (detection half approximated
    /// by the SD rule; see `DESIGN.md` §4).
    HoloClean,
    /// Duplicates: key-attribute collision.
    KeyCollision,
    /// Duplicates: ZeroER unsupervised matching.
    ZeroEr,
    /// Inconsistencies: OpenRefine-style fingerprint clustering.
    OpenRefine,
    /// Mislabels: cleanlab-style confident learning.
    Cleanlab,
}

impl Detection {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Detection::Empty => "Empty Entries",
            Detection::Sd => "SD",
            Detection::Iqr => "IQR",
            Detection::IsolationForest => "IF",
            Detection::HoloClean => "HoloClean",
            Detection::KeyCollision => "Key Collision",
            Detection::ZeroEr => "ZeroER",
            Detection::OpenRefine => "OpenRefine",
            Detection::Cleanlab => "cleanlab",
        }
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Repair component of a cleaning method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Repair {
    /// Missing values: drop incomplete rows (the paper's dirty baseline).
    Deletion,
    /// Missing values: numeric mean + categorical mode.
    MeanMode,
    /// Missing values: numeric mean + dummy category.
    MeanDummy,
    MedianMode,
    MedianDummy,
    ModeMode,
    ModeDummy,
    /// HoloClean-style probabilistic inference (missing values or the
    /// holistic outlier method).
    HoloClean,
    /// Outliers: impute flagged cells with the inlier mean.
    ImputeMean,
    ImputeMedian,
    ImputeMode,
    /// Duplicates: delete all but one record per group.
    KeepOne,
    /// Inconsistencies: merge clusters to the most frequent value.
    Merge,
    /// Mislabels: prune & relabel via confident learning.
    Cleanlab,
}

impl Repair {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Repair::Deletion => "Deletion",
            Repair::MeanMode => "MeanMode",
            Repair::MeanDummy => "MeanDummy",
            Repair::MedianMode => "MedianMode",
            Repair::MedianDummy => "MedianDummy",
            Repair::ModeMode => "ModeMode",
            Repair::ModeDummy => "ModeDummy",
            Repair::HoloClean => "HoloClean",
            Repair::ImputeMean => "Mean",
            Repair::ImputeMedian => "Median",
            Repair::ImputeMode => "Mode",
            Repair::KeepOne => "Deletion",
            Repair::Merge => "Merge",
            Repair::Cleanlab => "cleanlab",
        }
    }
}

impl fmt::Display for Repair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CleaningMethod {
    pub error_type: ErrorType,
    pub detection: Detection,
    pub repair: Repair,
}

impl CleaningMethod {
    /// The automatic cleaning methods evaluated for `error_type` — the rows
    /// of Table 2, with cardinalities matching the paper's relation sizes.
    pub fn catalogue(error_type: ErrorType) -> Vec<CleaningMethod> {
        match error_type {
            ErrorType::MissingValues => [
                Repair::MeanMode,
                Repair::MeanDummy,
                Repair::MedianMode,
                Repair::MedianDummy,
                Repair::ModeMode,
                Repair::ModeDummy,
                Repair::HoloClean,
            ]
            .into_iter()
            .map(|repair| CleaningMethod { error_type, detection: Detection::Empty, repair })
            .collect(),
            ErrorType::Outliers => {
                let mut v = Vec::with_capacity(10);
                for detection in [Detection::Sd, Detection::Iqr, Detection::IsolationForest] {
                    for repair in [Repair::ImputeMean, Repair::ImputeMedian, Repair::ImputeMode] {
                        v.push(CleaningMethod { error_type, detection, repair });
                    }
                }
                v.push(CleaningMethod {
                    error_type,
                    detection: Detection::HoloClean,
                    repair: Repair::HoloClean,
                });
                v
            }
            ErrorType::Duplicates => vec![
                CleaningMethod {
                    error_type,
                    detection: Detection::KeyCollision,
                    repair: Repair::KeepOne,
                },
                CleaningMethod {
                    error_type,
                    detection: Detection::ZeroEr,
                    repair: Repair::KeepOne,
                },
            ],
            ErrorType::Inconsistencies => vec![CleaningMethod {
                error_type,
                detection: Detection::OpenRefine,
                repair: Repair::Merge,
            }],
            ErrorType::Mislabels => vec![CleaningMethod {
                error_type,
                detection: Detection::Cleanlab,
                repair: Repair::Cleanlab,
            }],
        }
    }

    /// The deletion baseline for missing values (paper Table 5's "dirty").
    pub fn missing_deletion() -> CleaningMethod {
        CleaningMethod {
            error_type: ErrorType::MissingValues,
            detection: Detection::Empty,
            repair: Repair::Deletion,
        }
    }

    /// `Detection/Repair` label for reports.
    pub fn label(&self) -> String {
        format!("{}/{}", self.detection.name(), self.repair.name())
    }
}

/// Result of cleaning a train/test pair.
#[derive(Debug, Clone)]
pub struct CleaningOutcome {
    pub train: Table,
    pub test: Table,
    pub report: CleaningReport,
}

fn missing_repair_of(repair: Repair) -> Option<MissingRepair> {
    Some(match repair {
        Repair::Deletion => MissingRepair::Deletion,
        Repair::MeanMode => MissingRepair::Impute { num: NumImpute::Mean, cat: CatImpute::Mode },
        Repair::MeanDummy => MissingRepair::Impute { num: NumImpute::Mean, cat: CatImpute::Dummy },
        Repair::MedianMode => {
            MissingRepair::Impute { num: NumImpute::Median, cat: CatImpute::Mode }
        }
        Repair::MedianDummy => {
            MissingRepair::Impute { num: NumImpute::Median, cat: CatImpute::Dummy }
        }
        Repair::ModeMode => MissingRepair::Impute { num: NumImpute::Mode, cat: CatImpute::Mode },
        Repair::ModeDummy => MissingRepair::Impute { num: NumImpute::Mode, cat: CatImpute::Dummy },
        Repair::HoloClean => MissingRepair::HoloClean,
        _ => return None,
    })
}

/// Cleans a train/test pair with `method`, fitting all statistics on
/// `train` only.
pub fn clean_pair(
    method: &CleaningMethod,
    train: &Table,
    test: &Table,
    seed: u64,
) -> Result<CleaningOutcome> {
    let invalid = || CleaningError::NotApplicable {
        method: "cleaning method",
        reason: format!(
            "{:?} detection with {:?} repair is not a valid {:?} method",
            method.detection, method.repair, method.error_type
        ),
    };

    match method.error_type {
        ErrorType::MissingValues => {
            if method.detection != Detection::Empty {
                return Err(invalid());
            }
            let repair = missing_repair_of(method.repair).ok_or_else(invalid)?;
            let cleaner = missing::fit(repair, train)?;
            let (ctrain, rtrain) = cleaner.apply(train)?;
            let (ctest, rtest) = cleaner.apply(test)?;
            Ok(CleaningOutcome {
                train: ctrain,
                test: ctest,
                report: CleaningReport { train: rtrain, test: rtest },
            })
        }
        ErrorType::Outliers => {
            let detection = match method.detection {
                Detection::Sd => OutlierDetection::Sd { n_sigmas: 3.0 },
                Detection::Iqr => OutlierDetection::Iqr { k: 1.5 },
                Detection::IsolationForest => {
                    OutlierDetection::IsolationForest { contamination: 0.01, n_trees: 50 }
                }
                // The holistic HoloClean method: SD-rule detection half.
                Detection::HoloClean => OutlierDetection::Sd { n_sigmas: 3.0 },
                _ => return Err(invalid()),
            };
            let repair = match method.repair {
                Repair::ImputeMean => OutlierRepair::Mean,
                Repair::ImputeMedian => OutlierRepair::Median,
                Repair::ImputeMode => OutlierRepair::Mode,
                Repair::HoloClean => OutlierRepair::HoloClean,
                _ => return Err(invalid()),
            };
            let cleaner = outliers::fit(detection, repair, train, seed)?;
            let (ctrain, rtrain) = cleaner.apply(train)?;
            let (ctest, rtest) = cleaner.apply(test)?;
            Ok(CleaningOutcome {
                train: ctrain,
                test: ctest,
                report: CleaningReport { train: rtrain, test: rtest },
            })
        }
        ErrorType::Duplicates => {
            if method.repair != Repair::KeepOne {
                return Err(invalid());
            }
            let detection = match method.detection {
                Detection::KeyCollision => DuplicateDetection::KeyCollision,
                Detection::ZeroEr => DuplicateDetection::ZeroEr,
                _ => return Err(invalid()),
            };
            let cleaner = duplicates::fit(detection, train)?;
            let (ctrain, rtrain) = cleaner.apply(train)?;
            let (ctest, rtest) = cleaner.apply(test)?;
            Ok(CleaningOutcome {
                train: ctrain,
                test: ctest,
                report: CleaningReport { train: rtrain, test: rtest },
            })
        }
        ErrorType::Inconsistencies => {
            if method.detection != Detection::OpenRefine || method.repair != Repair::Merge {
                return Err(invalid());
            }
            let cleaner = inconsistency::fit(train)?;
            let (ctrain, rtrain) = cleaner.apply(train)?;
            let (ctest, rtest) = cleaner.apply(test)?;
            Ok(CleaningOutcome {
                train: ctrain,
                test: ctest,
                report: CleaningReport { train: rtrain, test: rtest },
            })
        }
        ErrorType::Mislabels => {
            if method.detection != Detection::Cleanlab || method.repair != Repair::Cleanlab {
                return Err(invalid());
            }
            let cleaner = ConfidentLearning::default();
            let (ctrain, rtrain, _) = cleaner.clean(train, seed)?;
            let (ctest, rtest, _) = cleaner.clean(test, seed.wrapping_add(1))?;
            Ok(CleaningOutcome {
                train: ctrain,
                test: ctest,
                report: CleaningReport { train: rtrain, test: rtest },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::{FieldMeta, Schema, Value};

    #[test]
    fn catalogue_cardinalities_match_paper() {
        assert_eq!(CleaningMethod::catalogue(ErrorType::MissingValues).len(), 7);
        assert_eq!(CleaningMethod::catalogue(ErrorType::Outliers).len(), 10);
        assert_eq!(CleaningMethod::catalogue(ErrorType::Duplicates).len(), 2);
        assert_eq!(CleaningMethod::catalogue(ErrorType::Inconsistencies).len(), 1);
        assert_eq!(CleaningMethod::catalogue(ErrorType::Mislabels).len(), 1);
    }

    #[test]
    fn catalogue_methods_are_distinct() {
        for et in ErrorType::all() {
            let methods = CleaningMethod::catalogue(et);
            let mut dedup = methods.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(methods.len(), dedup.len(), "{et:?}");
        }
    }

    fn numeric_table() -> Table {
        let schema = Schema::new(vec![FieldMeta::num_feature("x"), FieldMeta::label("y")]);
        let mut t = Table::new(schema);
        for i in 0..40 {
            let x = if i == 39 { 1000.0 } else { (i % 10) as f64 };
            t.push_row(vec![Value::from(x), Value::from(if i % 2 == 0 { "p" } else { "n" })])
                .unwrap();
        }
        t
    }

    #[test]
    fn clean_pair_outliers_end_to_end() {
        let t = numeric_table();
        let (train, test) = t.split(0.3, 1).unwrap();
        for method in CleaningMethod::catalogue(ErrorType::Outliers) {
            let out = clean_pair(&method, &train, &test, 0).unwrap();
            assert_eq!(out.train.n_rows(), train.n_rows(), "{}", method.label());
            assert_eq!(out.test.n_rows(), test.n_rows());
        }
    }

    #[test]
    fn clean_pair_missing_values_end_to_end() {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x"),
            FieldMeta::cat_feature("c"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        for i in 0..40 {
            let x = if i % 7 == 0 { None } else { Some(i as f64) };
            let c = if i % 5 == 0 { None } else { Some(if i % 2 == 0 { "a" } else { "b" }) };
            t.push_row(vec![
                Value::from(x),
                Value::from(c),
                Value::from(if i % 2 == 0 { "p" } else { "n" }),
            ])
            .unwrap();
        }
        let (train, test) = t.split(0.3, 2).unwrap();
        for method in CleaningMethod::catalogue(ErrorType::MissingValues) {
            let out = clean_pair(&method, &train, &test, 0).unwrap();
            assert_eq!(out.train.n_missing_cells(), 0, "{}", method.label());
            assert_eq!(out.test.n_missing_cells(), 0, "{}", method.label());
        }
        // deletion baseline shrinks instead of imputing
        let out = clean_pair(&CleaningMethod::missing_deletion(), &train, &test, 0).unwrap();
        assert!(out.train.n_rows() < train.n_rows());
        assert_eq!(out.train.n_missing_cells(), 0);
    }

    #[test]
    fn invalid_combination_rejected() {
        let t = numeric_table();
        let (train, test) = t.split(0.3, 1).unwrap();
        let bad = CleaningMethod {
            error_type: ErrorType::Duplicates,
            detection: Detection::Sd,
            repair: Repair::KeepOne,
        };
        assert!(matches!(
            clean_pair(&bad, &train, &test, 0),
            Err(CleaningError::NotApplicable { .. })
        ));
        let bad = CleaningMethod {
            error_type: ErrorType::MissingValues,
            detection: Detection::Empty,
            repair: Repair::Merge,
        };
        assert!(clean_pair(&bad, &train, &test, 0).is_err());
    }

    #[test]
    fn labels_and_names() {
        let m = CleaningMethod {
            error_type: ErrorType::Outliers,
            detection: Detection::Iqr,
            repair: Repair::ImputeMean,
        };
        assert_eq!(m.label(), "IQR/Mean");
        assert_eq!(ErrorType::Mislabels.to_string(), "Mislabels");
        assert_eq!(Detection::Cleanlab.to_string(), "cleanlab");
        assert_eq!(Repair::KeepOne.to_string(), "Deletion");
    }
}
