//! Mislabel detection and repair via confident learning (paper §III-B5).
//!
//! cleanlab (Northcutt et al.) implements *confident learning*: estimate the
//! joint distribution of observed vs. latent true labels from out-of-sample
//! predicted probabilities, then prune and fix the examples most confidently
//! mislabeled. The algorithm here follows the published recipe:
//!
//! 1. **Out-of-fold probabilities** — k-fold cross-validation with a probe
//!    classifier (logistic regression by default; the method is
//!    model-agnostic, as the paper notes).
//! 2. **Confident thresholds** — `t_j` = mean predicted probability of class
//!    `j` among examples *labeled* `j`.
//! 3. **Confident joint** — example labeled `i` counts toward `C[i][j]`
//!    where `j` is its highest-probability class among those meeting their
//!    threshold.
//! 4. **Prune by noise rate** — for each off-diagonal `(i, j)`, the
//!    `C[i][j]` examples labeled `i` with the largest `p_j` margin are
//!    declared label errors and **relabeled to their predicted class**.
//!
//! Labels are also the quantity mislabel cleaning repairs in the *test*
//! partition (scenario CD flips test labels back), so the cleaner runs
//! per-table rather than fit-train/apply-test.

use cleanml_dataset::{Encoder, Table, Value};
use cleanml_ml::cv::SearchBudget;
use cleanml_ml::{ModelKind, ModelSpec};

use crate::error::CleaningError;
use crate::report::TableReport;
use crate::Result;

/// Configuration for confident learning.
#[derive(Debug, Clone)]
pub struct ConfidentLearning {
    /// Probe model family used for out-of-fold probabilities.
    pub probe: ModelKind,
    /// Cross-validation folds for the probe.
    pub folds: usize,
}

impl Default for ConfidentLearning {
    fn default() -> Self {
        ConfidentLearning { probe: ModelKind::LogisticRegression, folds: 5 }
    }
}

impl ConfidentLearning {
    /// Cleans the labels of `table`, returning the repaired copy, a report,
    /// and the indices of relabeled rows.
    pub fn clean(&self, table: &Table, seed: u64) -> Result<(Table, TableReport, Vec<usize>)> {
        let n = table.n_rows();
        if n < self.folds.max(2) {
            // Too small to cross-validate: leave unchanged.
            return Ok((
                table.clone(),
                TableReport { rows_before: n, rows_after: n, detected: 0, repaired: 0 },
                Vec::new(),
            ));
        }

        let encoder = Encoder::fit(table)?;
        let data = encoder.transform(table)?;
        let k = data.n_classes();
        let probs = out_of_fold_probs(&data, self.probe, self.folds, seed)?;

        // Confident thresholds t_j.
        let mut t = vec![0.0; k];
        let mut count = vec![0usize; k];
        for i in 0..n {
            let y = data.labels()[i];
            t[y] += probs[i * k + y];
            count[y] += 1;
        }
        for j in 0..k {
            t[j] = if count[j] > 0 { t[j] / count[j] as f64 } else { f64::INFINITY };
        }

        // Confident joint: example -> confident class (if any).
        let mut joint = vec![vec![0usize; k]; k];
        let mut confident_class = vec![None::<usize>; n];
        for i in 0..n {
            let y = data.labels()[i];
            let mut best: Option<(usize, f64)> = None;
            for j in 0..k {
                let p = probs[i * k + j];
                if p >= t[j] && best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((j, p));
                }
            }
            if let Some((j, _)) = best {
                joint[y][j] += 1;
                confident_class[i] = Some(j);
            }
        }

        // Prune by noise rate: per (i, j) off-diagonal cell, relabel the
        // joint[i][j] examples labeled i with the largest p_j.
        let mut to_fix: Vec<(usize, usize)> = Vec::new(); // (row, new class)
        for (y, joint_y) in joint.iter().enumerate() {
            for (j, &cell_count) in joint_y.iter().enumerate() {
                if y == j || cell_count == 0 {
                    continue;
                }
                let mut candidates: Vec<(usize, f64)> = (0..n)
                    .filter(|&i| data.labels()[i] == y && confident_class[i] == Some(j))
                    .map(|i| (i, probs[i * k + j]))
                    .collect();
                candidates.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1).expect("finite probs").then(a.0.cmp(&b.0))
                });
                candidates.truncate(cell_count);
                for (i, _) in candidates {
                    to_fix.push((i, j));
                }
            }
        }
        to_fix.sort_unstable();

        let label_col = table.label_index()?;
        let classes = encoder.label_classes();
        let mut out = table.clone();
        for &(row, class) in &to_fix {
            out.set(row, label_col, Value::Str(classes[class].clone()))?;
        }
        let fixed_rows: Vec<usize> = to_fix.iter().map(|&(r, _)| r).collect();
        let report = TableReport {
            rows_before: n,
            rows_after: n,
            detected: to_fix.len(),
            repaired: to_fix.len(),
        };
        Ok((out, report, fixed_rows))
    }
}

/// Out-of-fold class probabilities (flat `n × k`).
fn out_of_fold_probs(
    data: &cleanml_dataset::FeatureMatrix,
    probe: ModelKind,
    folds: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    let n = data.n_rows();
    let k = data.n_classes();
    let folds = folds.clamp(2, n);
    let mut probs = vec![0.0; n * k];
    let assignments = cleanml_dataset::split::kfold_indices(n, folds, seed);
    // Budget referenced only to keep probe settings aligned with the study.
    let _ = SearchBudget::none();
    for (f, (train_idx, val_idx)) in assignments.iter().enumerate() {
        if train_idx.is_empty() || val_idx.is_empty() {
            continue;
        }
        let train = data.select_rows(train_idx);
        let val = data.select_rows(val_idx);
        let model = ModelSpec::default_for(probe)
            .fit(&train, seed.wrapping_add(f as u64))
            .map_err(|e| CleaningError::Ml(e.to_string()))?;
        let p = model.predict_proba(&val).map_err(|e| CleaningError::Ml(e.to_string()))?;
        for (vi, &row) in val_idx.iter().enumerate() {
            probs[row * k..(row + 1) * k].copy_from_slice(&p[vi * k..(vi + 1) * k]);
        }
    }
    Ok(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanml_dataset::{FieldMeta, Schema};

    /// Well-separated classes with `n_flips` deliberately wrong labels.
    fn table_with_mislabels(n: usize, n_flips: usize) -> (Table, Vec<usize>) {
        let schema = Schema::new(vec![
            FieldMeta::num_feature("x1"),
            FieldMeta::num_feature("x2"),
            FieldMeta::label("y"),
        ]);
        let mut t = Table::new(schema);
        let mut flipped = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = ((i * 43 % 89) as f64 / 89.0 - 0.5) * 0.8;
            let mut label = if c == 0 { "neg" } else { "pos" };
            if i < 2 * n_flips && i % 2 == 0 {
                // flip every other of the first rows
                label = if c == 0 { "pos" } else { "neg" };
                flipped.push(i);
            }
            t.push_row(vec![
                Value::from(base + noise),
                Value::from(base - noise),
                Value::from(label),
            ])
            .unwrap();
        }
        (t, flipped)
    }

    #[test]
    fn finds_and_fixes_planted_mislabels() {
        let (t, flipped) = table_with_mislabels(120, 6);
        let cleaner = ConfidentLearning::default();
        let (clean, report, fixed) = cleaner.clean(&t, 7).unwrap();
        assert!(report.repaired > 0, "nothing repaired");
        // most planted flips are found
        let found = flipped.iter().filter(|r| fixed.contains(r)).count();
        assert!(
            found * 2 >= flipped.len(),
            "found only {found}/{} planted flips: {fixed:?}",
            flipped.len()
        );
        // and the fixes restore the true label
        for &r in &flipped {
            if fixed.contains(&r) {
                let x = clean.get(r, 0).unwrap().as_num().unwrap();
                let y = clean.get(r, 2).unwrap();
                let want = if x < 0.0 { "neg" } else { "pos" };
                assert_eq!(y, Value::Str(want.into()), "row {r}");
            }
        }
    }

    #[test]
    fn clean_data_mostly_untouched() {
        let (t, _) = table_with_mislabels(100, 0);
        let cleaner = ConfidentLearning::default();
        let (_, report, _) = cleaner.clean(&t, 3).unwrap();
        // Confident learning on clean separable data should flag few rows.
        assert!(report.repaired <= 5, "repaired {} on clean data", report.repaired);
    }

    #[test]
    fn tiny_table_passthrough() {
        let (t, _) = table_with_mislabels(3, 0);
        let cleaner = ConfidentLearning { probe: ModelKind::LogisticRegression, folds: 5 };
        let (clean, report, fixed) = cleaner.clean(&t, 0).unwrap();
        assert_eq!(clean, t);
        assert_eq!(report.repaired, 0);
        assert!(fixed.is_empty());
    }

    #[test]
    fn deterministic() {
        let (t, _) = table_with_mislabels(80, 4);
        let cleaner = ConfidentLearning::default();
        let (c1, r1, f1) = cleaner.clean(&t, 11).unwrap();
        let (c2, r2, f2) = cleaner.clean(&t, 11).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(r1, r2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn works_with_tree_probe() {
        let (t, _) = table_with_mislabels(80, 4);
        let cleaner = ConfidentLearning { probe: ModelKind::DecisionTree, folds: 4 };
        let (_, report, _) = cleaner.clean(&t, 1).unwrap();
        assert!(report.rows_after == 80);
    }
}
