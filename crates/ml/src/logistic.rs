//! Multinomial (softmax) logistic regression.
//!
//! Full-batch gradient descent on the cross-entropy loss with L2
//! regularization. Features arrive standardized from the encoder, so a fixed
//! learning-rate schedule converges reliably; the paper's random search is
//! mirrored by sampling the regularization strength.

use cleanml_dataset::FeatureMatrix;
use rand::Rng;

use crate::error::MlError;
use crate::Result;

/// Hyper-parameters for [`Logistic`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticParams {
    /// L2 penalty weight (λ).
    pub l2: f64,
    /// Initial learning rate; decayed as `lr / (1 + epoch / 50)`.
    pub lr: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams { l2: 1e-3, lr: 0.5, epochs: 120 }
    }
}

impl LogisticParams {
    /// Samples hyper-parameters for random search (λ log-uniform in
    /// [1e-5, 1], the scikit-learn-style `C` sweep).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let log_l2 = rng.random_range(-5.0..0.0);
        LogisticParams { l2: 10f64.powf(log_l2), ..Default::default() }
    }

    fn validate(&self) -> Result<()> {
        if self.l2.is_nan() || self.l2 < 0.0 {
            return Err(MlError::InvalidParam { param: "l2", message: format!("{}", self.l2) });
        }
        if self.lr.is_nan() || self.lr <= 0.0 {
            return Err(MlError::InvalidParam { param: "lr", message: format!("{}", self.lr) });
        }
        if self.epochs == 0 {
            return Err(MlError::InvalidParam { param: "epochs", message: "0".into() });
        }
        Ok(())
    }
}

/// A fitted softmax regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct Logistic {
    /// `n_classes × n_features` weight matrix, row-major by class.
    weights: Vec<f64>,
    /// Per-class intercepts.
    bias: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

/// Numerically stable in-place softmax.
pub(crate) fn softmax(logits: &mut [f64]) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for z in logits.iter_mut() {
        *z = (*z - max).exp();
        sum += *z;
    }
    for z in logits.iter_mut() {
        *z /= sum;
    }
}

impl Logistic {
    /// Trains on `data` (features + labels).
    pub fn fit(params: &LogisticParams, data: &FeatureMatrix) -> Result<Logistic> {
        params.validate()?;
        let n = data.n_rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let d = data.n_cols();
        let k = data.n_classes();
        let mut weights = vec![0.0; k * d];
        let mut bias = vec![0.0; k];

        // Preallocated scratch, reused across epochs: raw per-example
        // logit sums and softmax errors (both `n × k`).
        let mut probs = vec![0.0; k];
        let mut logits = vec![0.0; n * k];
        let mut errs = vec![0.0; n * k];
        let mut grad_w = vec![0.0; k * d];
        let mut grad_b = vec![0.0; k];

        for epoch in 0..params.epochs {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            grad_b.iter_mut().for_each(|g| *g = 0.0);

            // Pass 1 — logits, swept per (class, feature) over contiguous
            // column slices. Each `logits[i,c]` accumulator receives its
            // feature terms in ascending-`j` order starting from zero
            // (matching a row-major dot product term for term), with the
            // bias added afterwards.
            logits.iter_mut().for_each(|z| *z = 0.0);
            for c in 0..k {
                for j in 0..d {
                    let wcj = weights[c * d + j];
                    let col = data.col(j);
                    for (i, &xij) in col.iter().enumerate() {
                        logits[i * k + c] += wcj * xij;
                    }
                }
            }
            // Softmax + error per example (same per-row order as before).
            for i in 0..n {
                for c in 0..k {
                    probs[c] = bias[c] + logits[i * k + c];
                }
                softmax(&mut probs);
                let y = data.labels()[i];
                for c in 0..k {
                    errs[i * k + c] = probs[c] - if c == y { 1.0 } else { 0.0 };
                }
            }
            // Pass 2 — gradients, swept per (class, feature) over column
            // slices; each `grad_w[c,j]` accumulates its examples in
            // ascending-`i` order, exactly as the row-major loop did.
            for c in 0..k {
                for j in 0..d {
                    let g = &mut grad_w[c * d + j];
                    let col = data.col(j);
                    for (i, &xij) in col.iter().enumerate() {
                        *g += errs[i * k + c] * xij;
                    }
                }
                let gb = &mut grad_b[c];
                for i in 0..n {
                    *gb += errs[i * k + c];
                }
            }

            let lr = params.lr / (1.0 + epoch as f64 / 50.0);
            let scale = lr / n as f64;
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= scale * g + lr * params.l2 * *w;
            }
            for (b, g) in bias.iter_mut().zip(&grad_b) {
                *b -= scale * g;
            }
        }

        Ok(Logistic { weights, bias, n_features: d, n_classes: k })
    }

    /// Per-class probabilities for each row (row-major `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let n = data.n_rows();
        let k = self.n_classes;
        let d = self.n_features;
        let mut out = vec![0.0; n * k];
        let mut x = vec![0.0; d];
        for i in 0..n {
            data.read_row(i, &mut x);
            let row = &mut out[i * k..(i + 1) * k];
            for (c, out_c) in row.iter_mut().enumerate() {
                *out_c = self.bias[c] + dot(&self.weights[c * d..(c + 1) * d], &x);
            }
            softmax(row);
        }
        Ok(out)
    }

    /// Most probable class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(argmax_rows(&probs, self.n_classes))
    }

    /// Weight vector for `class` (exposed for NaCL and tests).
    pub fn class_weights(&self, class: usize) -> &[f64] {
        &self.weights[class * self.n_features..(class + 1) * self.n_features]
    }
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Row-wise argmax over a flat `n × k` probability matrix. `total_cmp`
/// orders identically to `partial_cmp` for real probability rows (softmax
/// outputs are non-negative) and stays total — no panic — when scores
/// overflowed to NaN, which adversarially corrupted-but-finite decoded
/// weights can produce.
pub(crate) fn argmax_rows(probs: &[f64], k: usize) -> Vec<usize> {
    probs
        .chunks_exact(k)
        .map(|row| {
            row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).expect("k > 0")
        })
        .collect()
}

impl Logistic {
    /// Appends the fitted weights to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::push_usize;
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        crate::codec::push_f64_vec(out, &self.weights);
        crate::codec::push_f64_vec(out, &self.bias);
    }

    /// Reads a model written by [`Logistic::encode_into`].
    pub(crate) fn decode_from(parts: &mut cleanml_dataset::codec::Reader<'_>) -> Option<Logistic> {
        use cleanml_dataset::codec::take_usize;
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let weights = crate::codec::take_f64_vec(parts)?;
        let bias = crate::codec::take_f64_vec(parts)?;
        (weights.len() == n_classes.checked_mul(n_features)? && bias.len() == n_classes)
            .then_some(Logistic { weights, bias, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    /// Linearly separable two-class blob.
    pub(crate) fn blobs(n_per: usize, sep: f64) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let mut s = 1u64;
        let mut next = || {
            // xorshift for test determinism without pulling rand here
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 1000.0 - 0.5
        };
        for i in 0..2 * n_per {
            let c = i % 2;
            let offset = if c == 0 { -sep } else { sep };
            data.push(offset + next());
            data.push(offset + next());
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, 2 * n_per, 2, labels, 2)
    }

    #[test]
    fn separable_data_learned() {
        let data = blobs(50, 2.0);
        let model = Logistic::fit(&LogisticParams::default(), &data).unwrap();
        let preds = model.predict(&data).unwrap();
        assert!(accuracy(data.labels(), &preds) > 0.95);
    }

    #[test]
    fn probabilities_normalized() {
        let data = blobs(20, 1.0);
        let model = Logistic::fit(&LogisticParams::default(), &data).unwrap();
        let probs = model.predict_proba(&data).unwrap();
        for row in probs.chunks_exact(2) {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn l2_shrinks_weights() {
        let data = blobs(50, 2.0);
        let loose =
            Logistic::fit(&LogisticParams { l2: 1e-6, ..Default::default() }, &data).unwrap();
        let tight =
            Logistic::fit(&LogisticParams { l2: 0.5, ..Default::default() }, &data).unwrap();
        let norm = |m: &Logistic| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let data = blobs(10, 1.0);
        let model = Logistic::fit(&LogisticParams::default(), &data).unwrap();
        let other = FeatureMatrix::from_parts(vec![0.0; 5 * 3], 5, 3, vec![0; 5], 2);
        assert!(matches!(
            model.predict(&other),
            Err(MlError::DimensionMismatch { expected: 2, got: 3 })
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        let data = blobs(5, 1.0);
        assert!(Logistic::fit(&LogisticParams { l2: -1.0, ..Default::default() }, &data).is_err());
        assert!(Logistic::fit(&LogisticParams { lr: 0.0, ..Default::default() }, &data).is_err());
        assert!(Logistic::fit(&LogisticParams { epochs: 0, ..Default::default() }, &data).is_err());
    }

    #[test]
    fn empty_training_rejected() {
        let data = FeatureMatrix::from_parts(vec![], 0, 0, vec![], 2);
        assert!(matches!(
            Logistic::fit(&LogisticParams::default(), &data),
            Err(MlError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn softmax_stability() {
        let mut big = [1000.0, 1001.0];
        softmax(&mut big);
        assert!(big.iter().all(|p| p.is_finite()));
        assert!((big.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn param_sampling_in_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let p = LogisticParams::sample(&mut rng);
            assert!(p.l2 > 0.0 && p.l2 <= 1.0);
        }
    }
}
