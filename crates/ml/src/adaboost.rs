//! AdaBoost (SAMME) over shallow weighted CART trees.
//!
//! Boosting reweights training examples toward those the current ensemble
//! misclassifies — which is exactly why the paper finds boosting models the
//! most reactive to mislabels (Table 13 Q3): mislabeled examples keep
//! getting up-weighted. SAMME is the multi-class generalization used by
//! scikit-learn's `AdaBoostClassifier`.

use cleanml_dataset::FeatureMatrix;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::error::MlError;
use crate::tree::{DecisionTree, TreeParams};
use crate::Result;

/// Hyper-parameters for [`AdaBoost`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoostParams {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Depth of each weak learner (1 = decision stumps).
    pub base_depth: usize,
    /// Shrinkage applied to each learner's vote.
    pub learning_rate: f64,
}

impl Default for AdaBoostParams {
    fn default() -> Self {
        AdaBoostParams { n_rounds: 40, base_depth: 1, learning_rate: 1.0 }
    }
}

impl AdaBoostParams {
    /// Samples hyper-parameters for random search.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        AdaBoostParams {
            n_rounds: *[20usize, 40, 80].choose(rng).expect("non-empty"),
            base_depth: *[1usize, 2, 3].choose(rng).expect("non-empty"),
            learning_rate: *[0.5f64, 1.0].choose(rng).expect("non-empty"),
        }
    }
}

/// A fitted SAMME ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoost {
    learners: Vec<(f64, DecisionTree)>,
    n_features: usize,
    n_classes: usize,
}

impl AdaBoost {
    /// Runs SAMME boosting.
    pub fn fit(params: &AdaBoostParams, data: &FeatureMatrix, seed: u64) -> Result<AdaBoost> {
        if params.n_rounds == 0 {
            return Err(MlError::InvalidParam { param: "n_rounds", message: "0".into() });
        }
        if params.learning_rate.is_nan() || params.learning_rate <= 0.0 {
            return Err(MlError::InvalidParam {
                param: "learning_rate",
                message: format!("{}", params.learning_rate),
            });
        }
        let n = data.n_rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let k = data.n_classes().max(2);
        let tree_params = TreeParams {
            max_depth: params.base_depth,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        };

        let mut weights = vec![1.0 / n as f64; n];
        let mut learners = Vec::with_capacity(params.n_rounds);

        for round in 0..params.n_rounds {
            let tree_seed = seed.wrapping_add(round as u64);
            let tree = DecisionTree::fit_weighted(&tree_params, data, &weights, tree_seed)?;
            let preds = tree.predict(data)?;

            let err: f64 = preds
                .iter()
                .zip(data.labels())
                .zip(&weights)
                .filter(|((p, y), _)| p != y)
                .map(|(_, w)| w)
                .sum();

            if err <= 1e-12 {
                // Perfect learner: give it a large (finite) vote and stop.
                learners.push((params.learning_rate * 10.0, tree));
                break;
            }
            // SAMME requires better-than-random: err < 1 - 1/K.
            if err >= 1.0 - 1.0 / k as f64 {
                if learners.is_empty() {
                    // Keep one learner so the ensemble can still predict.
                    learners.push((1.0, tree));
                }
                break;
            }

            let alpha = params.learning_rate * (((1.0 - err) / err).ln() + (k as f64 - 1.0).ln());
            for ((w, p), y) in weights.iter_mut().zip(&preds).zip(data.labels()) {
                if p != y {
                    *w *= alpha.exp();
                }
            }
            let total: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= total);

            learners.push((alpha, tree));
        }

        Ok(AdaBoost { learners, n_features: data.n_cols(), n_classes: data.n_classes() })
    }

    /// Normalized per-class weighted votes (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        if data.n_cols() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: data.n_cols(),
            });
        }
        let k = self.n_classes;
        let mut votes = vec![0.0; data.n_rows() * k];
        for (alpha, tree) in &self.learners {
            let preds = tree.predict(data)?;
            for (i, &p) in preds.iter().enumerate() {
                votes[i * k + p] += alpha;
            }
        }
        for row in votes.chunks_exact_mut(k) {
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                row.iter_mut().for_each(|v| *v /= total);
            } else {
                row.iter_mut().for_each(|v| *v = 1.0 / k as f64);
            }
        }
        Ok(votes)
    }

    /// Most voted class per row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        let probs = self.predict_proba(data)?;
        Ok(crate::logistic::argmax_rows(&probs, self.n_classes))
    }

    /// Number of fitted weak learners (may stop early).
    pub fn n_learners(&self) -> usize {
        self.learners.len()
    }
}

impl AdaBoost {
    /// Appends the weighted learner ensemble to an artifact byte stream.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        use cleanml_dataset::codec::{push_f64, push_usize};
        push_usize(out, self.n_features);
        push_usize(out, self.n_classes);
        push_usize(out, self.learners.len());
        for (alpha, tree) in &self.learners {
            push_f64(out, *alpha);
            tree.encode_into(out);
        }
    }

    /// Reads an ensemble written by [`AdaBoost::encode_into`].
    pub(crate) fn decode_from(parts: &mut cleanml_dataset::codec::Reader<'_>) -> Option<AdaBoost> {
        use cleanml_dataset::codec::{take_f64, take_usize};
        let n_features = take_usize(parts)?;
        let n_classes = take_usize(parts)?;
        let n_learners = take_usize(parts)?;
        if n_learners == 0 {
            return None;
        }
        let mut learners = Vec::with_capacity(n_learners.min(1 << 16));
        for _ in 0..n_learners {
            let alpha = take_f64(parts)?;
            let tree = DecisionTree::decode_from(parts)?;
            learners.push((alpha, tree));
        }
        Some(AdaBoost { learners, n_features, n_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn diagonal_classes(n: usize) -> FeatureMatrix {
        // Boundary x0 + x1 > 1: stumps must be combined to approximate it.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let x = (i as f64 * 0.618) % 1.0;
            let y = (i as f64 * 0.414) % 1.0;
            data.push(x);
            data.push(y);
            labels.push(usize::from(x + y > 1.0));
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn boosting_beats_single_stump() {
        let data = diagonal_classes(200);
        let stump =
            AdaBoost::fit(&AdaBoostParams { n_rounds: 1, ..Default::default() }, &data, 0).unwrap();
        let boosted =
            AdaBoost::fit(&AdaBoostParams { n_rounds: 60, ..Default::default() }, &data, 0)
                .unwrap();
        let acc_stump = accuracy(data.labels(), &stump.predict(&data).unwrap());
        let acc_boost = accuracy(data.labels(), &boosted.predict(&data).unwrap());
        assert!(acc_boost > acc_stump, "{acc_boost} <= {acc_stump}");
        assert!(acc_boost > 0.9);
    }

    #[test]
    fn perfect_learner_short_circuits() {
        let data = FeatureMatrix::from_parts(vec![0.0, 1.0, 10.0, 11.0], 4, 1, vec![0, 0, 1, 1], 2);
        let model = AdaBoost::fit(&AdaBoostParams::default(), &data, 0).unwrap();
        assert_eq!(model.n_learners(), 1);
        assert_eq!(model.predict(&data).unwrap(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn probabilities_normalized() {
        let data = diagonal_classes(100);
        let model = AdaBoost::fit(&AdaBoostParams::default(), &data, 1).unwrap();
        for row in model.predict_proba(&data).unwrap().chunks_exact(2) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let data = diagonal_classes(80);
        let m1 = AdaBoost::fit(&AdaBoostParams::default(), &data, 3).unwrap();
        let m2 = AdaBoost::fit(&AdaBoostParams::default(), &data, 3).unwrap();
        assert_eq!(m1.predict(&data).unwrap(), m2.predict(&data).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        let data = diagonal_classes(10);
        assert!(
            AdaBoost::fit(&AdaBoostParams { n_rounds: 0, ..Default::default() }, &data, 0).is_err()
        );
        assert!(AdaBoost::fit(
            &AdaBoostParams { learning_rate: 0.0, ..Default::default() },
            &data,
            0
        )
        .is_err());
    }
}
