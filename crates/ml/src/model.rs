//! Unified model interface: hyper-parameter specs and fitted models.
//!
//! [`ModelKind`] names a model family (the paper's seven, plus the two
//! robust-ML baselines from §VII-B); [`ModelSpec`] carries its
//! hyper-parameters; [`ModelSpec::fit`] produces a [`FittedModel`] that can
//! predict. Degenerate training sets with a single observed class fit to a
//! constant predictor rather than erroring — small cross-validation folds on
//! imbalanced data hit this case routinely.

use cleanml_dataset::FeatureMatrix;
use rand::Rng;
use std::fmt;

use crate::adaboost::{AdaBoost, AdaBoostParams};
use crate::forest::{ForestParams, RandomForest};
use crate::gbdt::{Gbdt, GbdtParams};
use crate::knn::{Knn, KnnParams};
use crate::logistic::{Logistic, LogisticParams};
use crate::mlp::{Mlp, MlpParams};
use crate::nacl::{Nacl, NaclParams};
use crate::naive_bayes::{GaussianNb, NbParams};
use crate::tree::{DecisionTree, TreeParams};
use crate::Result;

/// Model families available in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    LogisticRegression,
    Knn,
    DecisionTree,
    RandomForest,
    AdaBoost,
    /// The XGBoost stand-in (second-order gradient boosting).
    XGBoost,
    NaiveBayes,
    /// Robust-ML baseline (paper §VII-B), not part of the seven.
    Mlp,
    /// Robust-ML baseline for missing values (paper §VII-B).
    Nacl,
}

/// The seven classifiers of the paper's §III-D, in its listing order.
pub const PAPER_MODELS: [ModelKind; 7] = [
    ModelKind::LogisticRegression,
    ModelKind::Knn,
    ModelKind::DecisionTree,
    ModelKind::RandomForest,
    ModelKind::AdaBoost,
    ModelKind::NaiveBayes,
    ModelKind::XGBoost,
];

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::LogisticRegression => "Logistic Regression",
            ModelKind::Knn => "KNN",
            ModelKind::DecisionTree => "Decision Tree",
            ModelKind::RandomForest => "Random Forest",
            ModelKind::AdaBoost => "AdaBoost",
            ModelKind::XGBoost => "XGBoost",
            ModelKind::NaiveBayes => "Naive Bayes",
            ModelKind::Mlp => "MLP",
            ModelKind::Nacl => "NaCL",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Hyper-parameters for one model family.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    Logistic(LogisticParams),
    Knn(KnnParams),
    Tree(TreeParams),
    Forest(ForestParams),
    AdaBoost(AdaBoostParams),
    Gbdt(GbdtParams),
    NaiveBayes(NbParams),
    Mlp(MlpParams),
    Nacl(NaclParams),
}

impl ModelSpec {
    /// The family this spec belongs to.
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelSpec::Logistic(_) => ModelKind::LogisticRegression,
            ModelSpec::Knn(_) => ModelKind::Knn,
            ModelSpec::Tree(_) => ModelKind::DecisionTree,
            ModelSpec::Forest(_) => ModelKind::RandomForest,
            ModelSpec::AdaBoost(_) => ModelKind::AdaBoost,
            ModelSpec::Gbdt(_) => ModelKind::XGBoost,
            ModelSpec::NaiveBayes(_) => ModelKind::NaiveBayes,
            ModelSpec::Mlp(_) => ModelKind::Mlp,
            ModelSpec::Nacl(_) => ModelKind::Nacl,
        }
    }

    /// Default hyper-parameters for a family.
    pub fn default_for(kind: ModelKind) -> ModelSpec {
        match kind {
            ModelKind::LogisticRegression => ModelSpec::Logistic(LogisticParams::default()),
            ModelKind::Knn => ModelSpec::Knn(KnnParams::default()),
            ModelKind::DecisionTree => ModelSpec::Tree(TreeParams::default()),
            ModelKind::RandomForest => ModelSpec::Forest(ForestParams::default()),
            ModelKind::AdaBoost => ModelSpec::AdaBoost(AdaBoostParams::default()),
            ModelKind::XGBoost => ModelSpec::Gbdt(GbdtParams::default()),
            ModelKind::NaiveBayes => ModelSpec::NaiveBayes(NbParams::default()),
            ModelKind::Mlp => ModelSpec::Mlp(MlpParams::default()),
            ModelKind::Nacl => ModelSpec::Nacl(NaclParams::default()),
        }
    }

    /// Samples a random hyper-parameter configuration for a family
    /// (the paper's "standard random search").
    pub fn sample<R: Rng + ?Sized>(kind: ModelKind, rng: &mut R) -> ModelSpec {
        match kind {
            ModelKind::LogisticRegression => ModelSpec::Logistic(LogisticParams::sample(rng)),
            ModelKind::Knn => ModelSpec::Knn(KnnParams::sample(rng)),
            ModelKind::DecisionTree => ModelSpec::Tree(TreeParams::sample(rng)),
            ModelKind::RandomForest => ModelSpec::Forest(ForestParams::sample(rng)),
            ModelKind::AdaBoost => ModelSpec::AdaBoost(AdaBoostParams::sample(rng)),
            ModelKind::XGBoost => ModelSpec::Gbdt(GbdtParams::sample(rng)),
            ModelKind::NaiveBayes => ModelSpec::NaiveBayes(NbParams::sample(rng)),
            ModelKind::Mlp => ModelSpec::Mlp(MlpParams::sample(rng)),
            ModelKind::Nacl => ModelSpec::Nacl(NaclParams::sample(rng)),
        }
    }

    /// Trains the model. Training data with fewer than two observed classes
    /// yields a constant predictor.
    pub fn fit(&self, data: &FeatureMatrix, seed: u64) -> Result<FittedModel> {
        if data.n_rows() == 0 {
            return Err(crate::MlError::EmptyTrainingSet);
        }
        let first = data.labels()[0];
        if data.labels().iter().all(|&l| l == first) {
            return Ok(FittedModel::Constant { class: first, n_classes: data.n_classes() });
        }
        Ok(match self {
            ModelSpec::Logistic(p) => FittedModel::Logistic(Logistic::fit(p, data)?),
            ModelSpec::Knn(p) => FittedModel::Knn(Knn::fit(p, data)?),
            ModelSpec::Tree(p) => FittedModel::Tree(DecisionTree::fit(p, data, seed)?),
            ModelSpec::Forest(p) => FittedModel::Forest(RandomForest::fit(p, data, seed)?),
            ModelSpec::AdaBoost(p) => FittedModel::AdaBoost(AdaBoost::fit(p, data, seed)?),
            ModelSpec::Gbdt(p) => FittedModel::Gbdt(Gbdt::fit(p, data, seed)?),
            ModelSpec::NaiveBayes(p) => FittedModel::NaiveBayes(GaussianNb::fit(p, data)?),
            ModelSpec::Mlp(p) => FittedModel::Mlp(Mlp::fit(p, data, seed)?),
            ModelSpec::Nacl(p) => FittedModel::Nacl(Nacl::fit(p, data, seed)?),
        })
    }
}

/// A trained model ready to predict.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// Fallback for single-class training data.
    Constant {
        class: usize,
        n_classes: usize,
    },
    Logistic(Logistic),
    Knn(Knn),
    Tree(DecisionTree),
    Forest(RandomForest),
    AdaBoost(AdaBoost),
    Gbdt(Gbdt),
    NaiveBayes(GaussianNb),
    Mlp(Mlp),
    Nacl(Nacl),
}

impl FittedModel {
    /// Class predictions for each row.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<usize>> {
        match self {
            FittedModel::Constant { class, .. } => Ok(vec![*class; data.n_rows()]),
            FittedModel::Logistic(m) => m.predict(data),
            FittedModel::Knn(m) => m.predict(data),
            FittedModel::Tree(m) => m.predict(data),
            FittedModel::Forest(m) => m.predict(data),
            FittedModel::AdaBoost(m) => m.predict(data),
            FittedModel::Gbdt(m) => m.predict(data),
            FittedModel::NaiveBayes(m) => m.predict(data),
            FittedModel::Mlp(m) => m.predict(data),
            FittedModel::Nacl(m) => m.predict(data),
        }
    }

    /// Class probabilities (flat `n × k`).
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>> {
        match self {
            FittedModel::Constant { class, n_classes } => {
                let mut out = vec![0.0; data.n_rows() * n_classes];
                for row in out.chunks_exact_mut(*n_classes) {
                    row[*class] = 1.0;
                }
                Ok(out)
            }
            FittedModel::Logistic(m) => m.predict_proba(data),
            FittedModel::Knn(m) => m.predict_proba(data),
            FittedModel::Tree(m) => m.predict_proba(data),
            FittedModel::Forest(m) => m.predict_proba(data),
            FittedModel::AdaBoost(m) => m.predict_proba(data),
            FittedModel::Gbdt(m) => m.predict_proba(data),
            FittedModel::NaiveBayes(m) => m.predict_proba(data),
            FittedModel::Mlp(m) => m.predict_proba(data),
            FittedModel::Nacl(m) => m.predict_proba(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n: usize) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = ((i * 31 % 67) as f64 / 67.0 - 0.5) * 0.8;
            data.push(base + noise);
            data.push(base - noise);
            labels.push(c);
        }
        FeatureMatrix::from_parts(data, n, 2, labels, 2)
    }

    #[test]
    fn all_seven_paper_models_learn_blobs() {
        let data = blobs(100);
        for kind in PAPER_MODELS {
            let spec = ModelSpec::default_for(kind);
            assert_eq!(spec.kind(), kind);
            let model = spec.fit(&data, 42).unwrap();
            let preds = model.predict(&data).unwrap();
            let acc = accuracy(data.labels(), &preds);
            assert!(acc > 0.9, "{kind} accuracy {acc}");
            let probs = model.predict_proba(&data).unwrap();
            assert_eq!(probs.len(), data.n_rows() * 2);
            for row in probs.chunks_exact(2) {
                assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{kind} probs");
            }
        }
    }

    #[test]
    fn robust_models_learn_blobs() {
        let data = blobs(100);
        for kind in [ModelKind::Mlp, ModelKind::Nacl] {
            let model = ModelSpec::default_for(kind).fit(&data, 1).unwrap();
            let acc = accuracy(data.labels(), &model.predict(&data).unwrap());
            assert!(acc > 0.85, "{kind} accuracy {acc}");
        }
    }

    #[test]
    fn single_class_falls_back_to_constant() {
        let data = FeatureMatrix::from_parts(vec![1.0, 2.0, 3.0], 3, 1, vec![1, 1, 1], 2);
        for kind in PAPER_MODELS {
            let model = ModelSpec::default_for(kind).fit(&data, 0).unwrap();
            assert!(matches!(model, FittedModel::Constant { class: 1, .. }), "{kind}");
            assert_eq!(model.predict(&data).unwrap(), vec![1, 1, 1]);
            let probs = model.predict_proba(&data).unwrap();
            assert_eq!(&probs[..2], &[0.0, 1.0]);
        }
    }

    #[test]
    fn sampling_produces_valid_specs() {
        let data = blobs(60);
        let mut rng = StdRng::seed_from_u64(7);
        for kind in PAPER_MODELS {
            for _ in 0..3 {
                let spec = ModelSpec::sample(kind, &mut rng);
                assert_eq!(spec.kind(), kind);
                let model = spec.fit(&data, 0).unwrap();
                assert_eq!(model.predict(&data).unwrap().len(), 60);
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ModelKind::XGBoost.name(), "XGBoost");
        assert_eq!(ModelKind::LogisticRegression.to_string(), "Logistic Regression");
        assert_eq!(PAPER_MODELS.len(), 7);
    }

    #[test]
    fn empty_training_rejected() {
        let data = FeatureMatrix::from_parts(vec![], 0, 0, vec![], 2);
        assert!(ModelSpec::default_for(ModelKind::DecisionTree).fit(&data, 0).is_err());
    }
}
